"""Job lifecycle and the bounded job store."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.jobs import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    STATUS_SHED,
    TERMINAL_STATES,
    Job,
    JobStore,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_job(clock=None, deadline=10.0) -> Job:
    return Job("job-000001", "covid", deadline_seconds=deadline,
               clock=clock or FakeClock())


def test_lifecycle_and_timings():
    clock = FakeClock()
    job = make_job(clock)
    assert job.status == STATUS_QUEUED
    assert not job.terminal

    clock.now = 2.0
    job.mark_running()
    assert job.status == STATUS_RUNNING
    assert job.queue_seconds == pytest.approx(2.0)

    clock.now = 5.0
    job.finish(STATUS_COMPLETED)
    assert job.terminal
    assert job.total_seconds == pytest.approx(5.0)
    assert job.queue_seconds == pytest.approx(2.0)
    assert job.wait(timeout=0)


def test_remaining_budget_counts_down_and_goes_negative():
    clock = FakeClock()
    job = make_job(clock, deadline=3.0)
    assert job.remaining_budget() == pytest.approx(3.0)
    clock.now = 2.0
    assert job.remaining_budget() == pytest.approx(1.0)
    clock.now = 5.0
    assert job.remaining_budget() < 0


def test_finish_is_idempotent_first_verdict_wins():
    job = make_job()
    job.finish(STATUS_FAILED, error="boom")
    job.finish(STATUS_COMPLETED, notebook={"cells": []})
    assert job.status == STATUS_FAILED
    assert job.error == "boom"
    assert job.notebook is None


def test_finish_rejects_non_terminal_states():
    job = make_job()
    with pytest.raises(ServeError, match="not a terminal"):
        job.finish(STATUS_RUNNING)
    assert STATUS_RUNNING not in TERMINAL_STATES


def test_to_dict_is_the_polling_view():
    job = make_job()
    job.add_progress("hello")
    job.finish(STATUS_SHED, shed_reason="queue-full")
    view = job.to_dict()
    assert view["status"] == STATUS_SHED
    assert view["terminal"] is True
    assert view["shed_reason"] == "queue-full"
    assert view["progress"] == ["hello"]
    assert view["has_notebook"] is False
    assert "notebook" not in view  # the body never rides along on polls


def test_store_ids_are_sequential_and_gettable():
    store = JobStore()
    a = store.create("covid", deadline_seconds=5.0)
    b = store.create("covid", deadline_seconds=5.0)
    assert (a.id, b.id) == ("job-000001", "job-000002")
    assert store.get(a.id) is a
    assert store.get("job-999999") is None


def test_store_prunes_only_terminal_jobs():
    store = JobStore(max_finished=2)
    jobs = [store.create("covid", deadline_seconds=5.0) for _ in range(4)]
    for job in jobs[:3]:
        job.finish(STATUS_COMPLETED)
    # Creating one more prunes the oldest *finished* job only.
    store.create("covid", deadline_seconds=5.0)
    assert store.get(jobs[0].id) is None
    assert store.get(jobs[1].id) is jobs[1]
    assert store.get(jobs[3].id) is jobs[3]  # still queued: never pruned
