"""The per-dataset circuit breaker state machine, on a fake clock."""

from __future__ import annotations

import pytest

from repro.serve.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_seconds=30.0,
                          clock=clock, name="t")


def test_closed_allows_everything(breaker):
    assert breaker.state == STATE_CLOSED
    for _ in range(10):
        assert breaker.allow()


def test_failures_below_threshold_stay_closed(breaker):
    assert not breaker.record_failure()
    assert not breaker.record_failure()
    assert breaker.state == STATE_CLOSED
    assert breaker.allow()


def test_success_resets_the_failure_count(breaker):
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    # Two more failures would have opened it without the reset.
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED


def test_threshold_opens_and_blocks(breaker):
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.record_failure()  # this one opened it
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()
    # Further failures while open do not "re-open" it.
    assert not breaker.record_failure()


def test_cooldown_admits_exactly_one_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(30.0)
    assert breaker.state == STATE_HALF_OPEN
    assert breaker.allow()       # the probe
    assert not breaker.allow()   # everyone else still waits
    assert not breaker.allow()


def test_probe_success_closes(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_for_a_full_cooldown(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31.0)
    assert breaker.allow()
    assert breaker.record_failure()  # probe failed: newly open again
    assert breaker.state == STATE_OPEN
    clock.advance(29.0)  # not a full cool-down yet
    assert breaker.state == STATE_OPEN
    clock.advance(2.0)
    assert breaker.state == STATE_HALF_OPEN


def test_snapshot_shape(breaker):
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap == {
        "state": STATE_CLOSED,
        "consecutive_failures": 1,
        "failure_threshold": 3,
        "reset_seconds": 30.0,
    }
