"""The HTTP surface, end to end over real sockets on an ephemeral port."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig
from repro.serve.jobs import TERMINAL_STATES

from tests.serve.conftest import http_request


@pytest.fixture()
def server(make_server):
    return make_server(ServeConfig(port=0, default_deadline_seconds=30.0))


def submit_and_wait(server, dataset="covid", body=None, wait=25):
    payload = {"dataset": dataset, **(body or {})}
    code, out = http_request(f"{server.url}/generate", "POST", payload)
    assert code == 202, out
    job_id = out["job"]
    code, job = http_request(f"{server.url}/jobs/{job_id}?wait={wait}")
    assert code == 200
    return job_id, job


def test_healthz(server):
    code, body = http_request(f"{server.url}/healthz")
    assert code == 200
    assert body["ok"] is True


def test_generate_round_trip_produces_a_notebook(server):
    job_id, job = submit_and_wait(server)
    assert job["terminal"] is True
    assert job["status"] == "completed"
    assert job["has_notebook"] is True
    assert job["report"]["stages"]  # the run report rode along
    assert job["progress"]  # pipeline progress strings surfaced

    code, notebook = http_request(f"{server.url}/jobs/{job_id}/result")
    assert code == 200
    assert notebook["nbformat"] == 4
    assert any(c["cell_type"] == "code" for c in notebook["cells"])


def test_warm_session_hits_the_aggregate_cache_across_requests(server):
    submit_and_wait(server)
    submit_and_wait(server)
    code, body = http_request(f"{server.url}/datasets")
    assert code == 200
    (entry,) = body["datasets"]
    assert entry["runs"] == 2
    assert entry["cache"]["aggregate_hits"] > 0


def test_register_list_evict_cycle(server, serve_csv):
    code, body = http_request(f"{server.url}/datasets", "POST",
                              {"name": "second", "path": str(serve_csv)})
    assert code == 201
    assert body["name"] == "second"

    code, body = http_request(f"{server.url}/datasets", "POST",
                              {"name": "second", "path": str(serve_csv)})
    assert code == 409

    code, body = http_request(f"{server.url}/datasets", "POST",
                              {"name": "ghostly", "path": "/no/such/file.csv"})
    assert code == 400

    code, body = http_request(f"{server.url}/datasets/second", "DELETE")
    assert code == 200
    code, body = http_request(f"{server.url}/datasets/second", "DELETE")
    assert code == 404


def test_unknown_dataset_is_404(server):
    code, body = http_request(f"{server.url}/generate", "POST",
                              {"dataset": "ghost"})
    assert code == 404


def test_bad_requests_are_400(server):
    code, _ = http_request(f"{server.url}/generate", "POST", {})
    assert code == 400  # no dataset name
    code, _ = http_request(f"{server.url}/generate", "POST",
                           {"dataset": "covid", "deadline_seconds": "soon"})
    assert code == 400
    code, _ = http_request(f"{server.url}/generate", "POST",
                           {"dataset": "covid", "deadline_seconds": -1})
    assert code == 400


def test_unknown_routes_and_jobs_are_404(server):
    assert http_request(f"{server.url}/nope")[0] == 404
    assert http_request(f"{server.url}/jobs/job-999999")[0] == 404
    assert http_request(f"{server.url}/nope", "POST", {})[0] == 404


def test_metrics_exposition(server):
    submit_and_wait(server)
    code, text = http_request(f"{server.url}/metrics")
    assert code == 200
    assert "repro_serve_requests" in text
    assert "repro_serve_job_latency_seconds" in text


def test_deadline_is_capped_to_the_configured_maximum(make_server):
    server = make_server(ServeConfig(port=0, max_deadline_seconds=40.0))
    code, body = http_request(f"{server.url}/generate", "POST",
                              {"dataset": "covid", "deadline_seconds": 9999})
    assert code == 202
    assert body["deadline_seconds"] == 40.0
    code, job = http_request(f"{server.url}/jobs/{body['job']}?wait=25")
    assert job["status"] in TERMINAL_STATES


def test_result_of_a_shed_job_is_410(make_server, serve_csv):
    # No executor contention needed: shed at admission via injected fault.
    from repro.runtime.faults import parse_fault_plan

    server = make_server(ServeConfig(port=0),
                         faults=parse_fault_plan("serve.admission:kill"))
    code, body = http_request(f"{server.url}/generate", "POST",
                              {"dataset": "covid"})
    assert code == 429
    code, job = http_request(f"{server.url}/jobs/{body['job']}/result")
    assert code == 410
