"""Shared fixtures for the serving-layer tests.

Serve tests run against real servers on ephemeral ports with a small,
fast ``ReproConfig`` so a full generate takes well under a second.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.config import ReproConfig
from repro.datasets import covid_table
from repro.relational import write_csv
from repro.relational.store import leaked_segments
from repro.serve import ReproServer, ServeConfig

__all__ = ["http_request"]


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Serve tests must leave /dev/shm as they found it (data-plane audit)."""
    before = set(leaked_segments())
    yield
    leaked = sorted(set(leaked_segments()) - before)
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="session")
def serve_csv(tmp_path_factory):
    """A small covid CSV shared by every serve test."""
    path = tmp_path_factory.mktemp("serve") / "covid.csv"
    write_csv(covid_table(200), path)
    return path


@pytest.fixture()
def fast_config():
    """A ReproConfig that keeps each generate under ~0.3 s."""
    return ReproConfig(budget=3.0).with_significance(n_permutations=30)


@pytest.fixture()
def make_server(serve_csv, fast_config):
    """Factory for started servers on ephemeral ports; auto-shutdown."""
    servers = []

    def factory(config: ServeConfig | None = None, *, faults=None,
                register: str | None = "covid") -> ReproServer:
        server = ReproServer(
            config or ServeConfig(port=0),
            repro_config=fast_config,
            faults=faults,
        )
        server.start()
        servers.append(server)
        if register:
            server.registry.register(register, serve_csv)
        return server

    yield factory
    for server in servers:
        server.shutdown()


def http_request(url: str, method: str = "GET", body: dict | None = None,
                 timeout: float = 30.0) -> tuple[int, dict | str]:
    """One HTTP round-trip; returns (status, parsed-JSON-or-text)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read().decode()
            code = response.status
    except urllib.error.HTTPError as exc:  # 4xx/5xx still carry a JSON body
        raw = exc.read().decode()
        code = exc.code
    try:
        return code, json.loads(raw)
    except json.JSONDecodeError:
        return code, raw
