"""The flight recorder: ring semantics, crash dumps, and the chaos path.

The acceptance scenario from the chaos suite: kill every attempt of a
job with ``serve.job:kill``, then prove the failed job's post-mortem is
reachable three ways — ``GET /debug/flight``, the on-disk dump, and the
``repro flight`` CLI reader — with terminal state, fault reason, and a
partial span summary intact.
"""

from __future__ import annotations

import json
import signal
import sys

import pytest

from repro.cli import main
from repro.runtime.faults import parse_fault_plan
from repro.serve import ServeConfig
from repro.serve.flight import FlightRecorder, config_fingerprint, load_dump
from repro.serve.jobs import Job

from tests.serve.conftest import http_request


def _finished_job(n: int = 1, status: str = "failed",
                  error: str | None = "boom") -> Job:
    job = Job(f"job-{n:06d}", "covid", deadline_seconds=5.0)
    job.finish(status, error=error)
    return job


class TestRing:
    def test_ring_is_bounded_and_oldest_drop_first(self):
        recorder = FlightRecorder(capacity=3)
        for n in range(5):
            recorder.record(_finished_job(n))
        records = recorder.snapshot()
        assert len(records) == 3
        assert [r["job"] for r in records] == [
            "job-000002", "job-000003", "job-000004"
        ]

    def test_record_carries_the_post_mortem_fields(self):
        job = Job("job-000009", "covid", deadline_seconds=7.0,
                  params={"budget": 5})
        job.attempts = 2
        job.finish("failed", error="InjectedFault: boom")
        record = FlightRecorder().record(job)
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert record["error"] == "InjectedFault: boom"
        assert record["config_fingerprint"] == config_fingerprint(
            "covid", {"budget": 5}, 7.0
        )
        # The compact span summary: at least the request root, with its
        # error counted.
        names = {s["name"]: s for s in record["spans"]}
        assert names["serve.request"]["count"] == 1
        assert names["serve.request"]["errors"] == 1

    def test_fingerprint_groups_identical_request_shapes(self):
        a = config_fingerprint("covid", {"budget": 5}, 30.0)
        b = config_fingerprint("covid", {"budget": 5}, 30.0)
        c = config_fingerprint("covid", {"budget": 6}, 30.0)
        assert a == b != c


class TestDump:
    def test_dump_and_load_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(_finished_job())
        path = recorder.dump(tmp_path / "flight.json", reason="test")
        doc = load_dump(path)
        assert doc["version"] == 1
        assert doc["reason"] == "test"
        assert doc["records"][0]["job"] == "job-000001"

    def test_load_rejects_non_dump_files(self, tmp_path):
        path = tmp_path / "not-a-dump.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a flight-recorder dump"):
            load_dump(path)

    def test_install_dumps_on_unhandled_exception_and_chains(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(_finished_job())
        path = tmp_path / "crash.json"
        seen = []
        previous = sys.excepthook
        sys.excepthook = lambda *exc: seen.append(exc[0])
        try:
            uninstall = recorder.install(path)
            try:
                sys.excepthook(RuntimeError, RuntimeError("kaput"), None)
            finally:
                uninstall()
            assert sys.excepthook is not previous  # our sentinel, restored next
        finally:
            sys.excepthook = previous
        assert seen == [RuntimeError]  # the previous hook still ran
        doc = load_dump(path)
        assert doc["reason"] == "crash:RuntimeError"
        assert doc["records"]

    def test_install_dumps_on_sigterm(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(_finished_job())
        path = tmp_path / "term.json"
        uninstall = recorder.install(path)
        try:
            handler = signal.getsignal(signal.SIGTERM)
            with pytest.raises(SystemExit):
                handler(signal.SIGTERM, None)
        finally:
            uninstall()
        assert load_dump(path)["reason"] == "sigterm"

    def test_uninstall_restores_previous_hooks(self, tmp_path):
        recorder = FlightRecorder()
        previous_hook = sys.excepthook
        previous_signal = signal.getsignal(signal.SIGTERM)
        uninstall = recorder.install(tmp_path / "x.json")
        uninstall()
        assert sys.excepthook is previous_hook
        assert signal.getsignal(signal.SIGTERM) is previous_signal


class TestChaosFlightPath:
    def test_killed_job_is_recoverable_from_all_three_surfaces(
        self, make_server, tmp_path, capsys
    ):
        # Kill every attempt: retries exhaust and the job fails terminally.
        server = make_server(
            ServeConfig(port=0, job_attempts=2, retry_base_delay=0.01),
            faults=parse_fault_plan("serve.job:kill:xall"),
        )
        code, out = http_request(f"{server.url}/generate", "POST",
                                 {"dataset": "covid"})
        assert code == 202
        code, job = http_request(f"{server.url}/jobs/{out['job']}?wait=30")
        assert job["status"] == "failed"
        assert "InjectedFault" in job["error"]

        # Surface 1: the live ring over HTTP.
        code, body = http_request(f"{server.url}/debug/flight")
        assert code == 200
        (record,) = [r for r in body["records"] if r["job"] == out["job"]]
        assert record["status"] == "failed"
        assert "InjectedFault" in record["error"]
        assert record["attempts"] == 2
        span_names = {s["name"] for s in record["spans"]}
        assert "serve.request" in span_names
        assert "serve.attempt" in span_names  # partial trace survived

        # Surface 2: the on-disk dump.
        path = server.flight.dump(tmp_path / "flight.json", reason="chaos")
        doc = load_dump(path)
        assert any(r["job"] == out["job"] and r["status"] == "failed"
                   for r in doc["records"])

        # Surface 3: the CLI reader.
        assert main(["flight", str(path)]) == 0
        printed = capsys.readouterr().out
        assert out["job"] in printed
        assert "failed" in printed

    def test_shed_jobs_reach_the_ring_too(self, make_server):
        server = make_server(
            ServeConfig(port=0),
            faults=parse_fault_plan("serve.admission:kill"),
        )
        code, out = http_request(f"{server.url}/generate", "POST",
                                 {"dataset": "covid"})
        assert code == 429
        code, body = http_request(f"{server.url}/debug/flight")
        (record,) = [r for r in body["records"] if r["job"] == out["job"]]
        assert record["status"] == "shed"
        assert record["shed_reason"]


class TestFlightCli:
    def test_missing_or_malformed_dump_exits_2(self, tmp_path, capsys):
        assert main(["flight", str(tmp_path / "absent.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["flight", str(bad)]) == 2
        capsys.readouterr()

    def test_json_mode_emits_the_raw_records(self, tmp_path, capsys):
        recorder = FlightRecorder()
        recorder.record(_finished_job())
        path = recorder.dump(tmp_path / "flight.json")
        assert main(["flight", str(path), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records[0]["job"] == "job-000001"
