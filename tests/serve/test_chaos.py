"""The chaos suite: injected faults at every server fault point.

The invariant under test, from the serving layer's contract: **every
request reaches exactly one terminal state** — completed, degraded, shed
(with a reason), or failed (with an error report) — *never hung*, no
matter which fault fires.  Each test injects a deterministic
``REPRO_FAULTS`` plan at one fault point; the final test fires several at
once under concurrent load.
"""

from __future__ import annotations

import threading
import time

from repro.runtime.faults import parse_fault_plan
from repro.serve import ServeConfig
from repro.serve.breaker import STATE_OPEN
from repro.serve.jobs import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_SHED,
    TERMINAL_STATES,
)

from tests.serve.conftest import http_request

#: Generous wall-clock bound on "terminal within the deadline budget".
WAIT = 30.0


def run_one(server, dataset="covid", params=None):
    """Submit through the component API and wait for the terminal state."""
    code, body = server.submit(dataset, params or {})
    job = server.jobs.get(body["job"])
    assert job.wait(timeout=WAIT), f"job hung (HTTP {code}): {job.to_dict()}"
    return code, job


# -- one fault point at a time -------------------------------------------------


def test_admission_fault_sheds_cleanly(make_server):
    server = make_server(faults=parse_fault_plan("serve.admission:kill"))
    code, job = run_one(server)
    assert code == 429
    assert job.status == STATUS_SHED
    assert job.shed_reason == "injected-queue-full"
    # The fault was one-shot; service recovers on the next request.
    code, job = run_one(server)
    assert code == 202
    assert job.status == STATUS_COMPLETED


def test_handler_kill_is_a_clean_500_not_a_dead_server(make_server):
    server = make_server(faults=parse_fault_plan("serve.handler:kill"))
    code, body = http_request(f"{server.url}/healthz")
    assert code == 500
    assert body["error"] == "injected handler fault"
    # The process survived; the next request is served normally.
    code, body = http_request(f"{server.url}/healthz")
    assert code == 200


def test_slow_handler_delays_but_answers(make_server):
    server = make_server(faults=parse_fault_plan("serve.handler:stall:0.3"))
    start = time.monotonic()
    code, _ = http_request(f"{server.url}/healthz")
    assert code == 200
    assert time.monotonic() - start >= 0.25


def test_mid_job_crash_is_retried_to_success(make_server):
    server = make_server(ServeConfig(port=0, job_attempts=2),
                         faults=parse_fault_plan("serve.job:kill"))
    code, job = run_one(server)
    assert job.status == STATUS_COMPLETED
    assert job.attempts == 2  # first attempt died, the retry landed
    assert any("retrying" in line for line in job.to_dict()["progress"])


def test_persistent_crash_fails_with_a_report_after_retries(make_server):
    server = make_server(ServeConfig(port=0, job_attempts=2,
                                     breaker_failures=5),
                         faults=parse_fault_plan("serve.job:kill:xall"))
    code, job = run_one(server)
    assert job.status == STATUS_FAILED
    assert job.attempts == 2
    assert "InjectedFault" in job.error
    assert "2 attempt(s)" in job.error


def test_repeated_failures_trip_the_breaker_and_a_probe_recovers(make_server):
    server = make_server(
        ServeConfig(port=0, job_attempts=1, breaker_failures=2,
                    breaker_reset_seconds=0.3),
        faults=parse_fault_plan("serve.job:kill:x2"),
    )
    for _ in range(2):
        code, job = run_one(server)
        assert job.status == STATUS_FAILED

    entry = server.registry.get("covid")
    assert entry.breaker.state == STATE_OPEN
    # While open, submission is answered 503 without creating a job.
    code, body = server.submit("covid", {})
    assert code == 503
    assert body["breaker"]["state"] == STATE_OPEN

    time.sleep(0.4)  # cool-down elapses; next job is the half-open probe
    code, job = run_one(server)
    assert job.status == STATUS_COMPLETED
    assert entry.breaker.state == "closed"


def test_mid_job_eviction_race_is_harmless(make_server):
    server = make_server(faults=parse_fault_plan("serve.evict:kill"))
    code, job = run_one(server)
    # The racing job finished on its leased session...
    assert job.status == STATUS_COMPLETED
    assert job.notebook is not None
    # ...and the *next* request sees a clean 404.
    code, body = server.submit("covid", {})
    assert code == 404
    assert server.registry.names() == []


def test_stage_fault_degrades_through_the_ladder(make_server):
    # A stage-level fault plan passes through the server into the run's
    # degradation ladders: the notebook still arrives, marked degraded.
    server = make_server(faults=parse_fault_plan("tap:kill"))
    code, job = run_one(server)
    assert job.status == STATUS_DEGRADED
    assert job.notebook is not None
    assert job.degradations
    assert any("tap" in d for d in job.degradations)


def test_queue_full_sheds_when_executors_never_drain(make_server, serve_csv,
                                                     fast_config):
    from repro.serve import ReproServer

    # No started executor: the queue only fills.
    server = ReproServer(ServeConfig(port=0, max_queue_depth=1),
                         repro_config=fast_config)
    server.registry.register("covid", serve_csv)
    try:
        code_a, body_a = server.submit("covid", {})
        code_b, body_b = server.submit("covid", {})
        assert (code_a, code_b) == (202, 429)
        shed = server.jobs.get(body_b["job"])
        assert shed.terminal and shed.status == STATUS_SHED
        assert shed.shed_reason == "queue-full"
    finally:
        server.shutdown()  # sheds the still-queued job too
    queued = server.jobs.get(body_a["job"])
    assert queued.terminal
    assert queued.shed_reason == "server-shutdown"


def test_budget_drained_in_queue_sheds_before_running(make_server):
    server = make_server()
    # A deadline so small it is spent before the executor picks it up.
    code, job = run_one(server, params={"deadline_seconds": 0.051})
    assert job.status in (STATUS_SHED, STATUS_DEGRADED, STATUS_COMPLETED,
                          STATUS_FAILED)
    if job.status == STATUS_SHED:
        assert job.shed_reason == "deadline-exhausted-in-queue"


# -- everything at once --------------------------------------------------------


def test_concurrent_load_under_combined_faults_all_terminal(make_server):
    """Satellite invariant: worker crashes + slow handlers + a forced
    queue-full shed, eight concurrent HTTP clients — every request ends
    in a terminal state within its budget; none hang; the server lives."""
    server = make_server(
        ServeConfig(port=0, job_attempts=2, max_queue_depth=4,
                    breaker_failures=50, default_deadline_seconds=25.0),
        faults=parse_fault_plan(
            "serve.job:kill:x2,serve.handler:stall:0.1:x3,serve.admission:kill"
        ),
    )
    results: list[tuple[int, dict]] = [None] * 8

    def client(index: int) -> None:
        code, body = http_request(f"{server.url}/generate", "POST",
                                  {"dataset": "covid"}, timeout=WAIT)
        results[index] = (code, body)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=WAIT)
    assert not any(t.is_alive() for t in threads), "an HTTP client hung"

    statuses = []
    for code, body in results:
        assert code in (202, 429), body
        job = server.jobs.get(body["job"])
        assert job.wait(timeout=WAIT), f"job never terminal: {job.to_dict()}"
        view = job.to_dict()
        assert view["status"] in TERMINAL_STATES
        if view["status"] == STATUS_SHED:
            assert view["shed_reason"]
        if view["status"] == STATUS_FAILED:
            assert view["error"]
        statuses.append(view["status"])

    # The injected admission kill shed at least one request; the rest ran.
    assert STATUS_SHED in statuses
    assert STATUS_COMPLETED in statuses or STATUS_DEGRADED in statuses
    # And the server is still healthy afterwards.
    assert http_request(f"{server.url}/healthz")[0] == 200
