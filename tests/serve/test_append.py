"""Dataset versions over HTTP: append route, optimistic concurrency, stamping."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from tests.serve.conftest import http_request

ROWS = [
    {"month": "4", "continent": "EU", "country": "FR",
     "cases": 123.0, "deaths": 3.0},
    {"month": "5", "continent": "ZZ", "country": "QQ",
     "cases": 7.0, "deaths": 0.0},
]


def http_with_headers(url, method="GET", body=None, timeout=30.0):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


@pytest.fixture()
def server(make_server):
    return make_server()


def wait_done(base, job):
    code, body = http_request(f"{base}/jobs/{job}?wait=30")
    assert code == 200 and body["status"] in ("completed", "degraded"), body
    return body


class TestDatasetSnapshot:
    def test_get_dataset_reports_version(self, server):
        code, body = http_request(f"{server.url}/datasets/covid")
        assert code == 200
        assert body["rows"] == 200
        assert body["version"] and "-" in body["version"]

    def test_unknown_dataset_404(self, server):
        code, _ = http_request(f"{server.url}/datasets/nope")
        assert code == 404


class TestAppendRoute:
    def test_append_advances_version_and_counts(self, server):
        base = server.url
        _, before = http_request(f"{base}/datasets/covid")
        code, body = http_request(
            f"{base}/datasets/covid/rows", "POST", {"rows": ROWS}
        )
        assert code == 200, body
        assert body["appended"] == 2 and body["rows"] == 202
        assert body["version"] != before["version"]
        _, after = http_request(f"{base}/datasets/covid")
        assert after["version"] == body["version"] and after["rows"] == 202

    def test_column_mapping_form(self, server):
        code, body = http_request(
            f"{server.url}/datasets/covid/rows", "POST",
            {"rows": {"month": ["6"], "continent": ["EU"], "country": ["FR"],
                      "cases": [1.0], "deaths": [0.0]}},
        )
        assert code == 200 and body["appended"] == 1, body

    def test_bad_appends_are_400(self, server):
        base = server.url
        for rows in ([], [{"month": "4"}], "not-rows",
                     [{"month": "4"}, {"continent": "EU"}]):
            code, body = http_request(
                f"{base}/datasets/covid/rows", "POST", {"rows": rows}
            )
            assert code == 400, (rows, code, body)

    def test_append_to_unknown_dataset_404(self, server):
        code, _ = http_request(
            f"{server.url}/datasets/nope/rows", "POST", {"rows": ROWS}
        )
        assert code == 404


class TestOptimisticConcurrency:
    def test_stale_if_version_is_machine_readable_409(self, server):
        base = server.url
        _, info = http_request(f"{base}/datasets/covid")
        code, body = http_request(
            f"{base}/generate", "POST",
            {"dataset": "covid", "if_version": "bogus"},
        )
        assert code == 409
        assert body["code"] == "stale_version"
        assert body["version"] == info["version"]
        assert body["requested"] == "bogus"

    def test_matching_if_version_admits_and_stamps(self, server):
        base = server.url
        _, info = http_request(f"{base}/datasets/covid")
        v0 = info["version"]
        code, body = http_request(
            f"{base}/generate", "POST", {"dataset": "covid", "if_version": v0}
        )
        assert code == 202, body
        done = wait_done(base, body["job"])
        assert done["dataset_version"] == v0
        code, _, headers = http_with_headers(f"{base}/jobs/{body['job']}/result")
        assert code == 200
        assert headers.get("X-Dataset-Version") == v0

    def test_append_staleness_rejects_old_version(self, server):
        base = server.url
        _, info = http_request(f"{base}/datasets/covid")
        v0 = info["version"]
        http_request(f"{base}/datasets/covid/rows", "POST", {"rows": ROWS})
        code, body = http_request(
            f"{base}/generate", "POST", {"dataset": "covid", "if_version": v0}
        )
        assert code == 409 and body["code"] == "stale_version"


class TestAppendDuringJob:
    def test_running_job_keeps_its_snapshot(self, server):
        base = server.url
        _, info = http_request(f"{base}/datasets/covid")
        v0 = info["version"]
        code, body = http_request(
            f"{base}/generate", "POST", {"dataset": "covid"}
        )
        assert code == 202
        job = body["job"]
        # Append races the running job: the mutation must neither fail nor
        # corrupt the job, which reports the version it actually ran at.
        code, appended = http_request(
            f"{base}/datasets/covid/rows", "POST", {"rows": ROWS}
        )
        assert code == 200, appended
        v1 = appended["version"]
        done = wait_done(base, job)
        assert done["dataset_version"] in (v0, v1)

    def test_generate_after_append_runs_on_grown_table(self, server):
        base = server.url
        code, appended = http_request(
            f"{base}/datasets/covid/rows", "POST", {"rows": ROWS}
        )
        assert code == 200
        code, body = http_request(
            f"{base}/generate", "POST", {"dataset": "covid"}
        )
        assert code == 202
        done = wait_done(base, body["job"])
        assert done["dataset_version"] == appended["version"]
