"""Request-scoped tracing and labeled metrics, end to end over HTTP.

The contract under test: every served job owns exactly one connected
span tree — HTTP submit path, admission, executor, the Session run's
pipeline stages, and the shard-pool worker subtrees shipped back across
the process boundary — retrievable as Chrome-trace JSON while the
server's ``/metrics`` exposition carries per-dataset labeled Prometheus
histograms with real bucket counts.  And nothing leaks between jobs:
each job's tracer/registry pair is born and dies with the job.
"""

from __future__ import annotations

import re

import pytest

from repro.config import ReproConfig
from repro.serve import ReproServer, ServeConfig

from tests.serve.conftest import http_request


@pytest.fixture()
def parallel_server(serve_csv):
    """A server whose runs fan out to a 2-worker shard pool."""
    config = (
        ReproConfig(budget=3.0)
        .with_significance(n_permutations=30)
        .with_parallel(workers=2)
    )
    server = ReproServer(ServeConfig(port=0), repro_config=config)
    server.start()
    server.registry.register("covid", serve_csv)
    yield server
    server.shutdown()


def _submit_and_wait(server, dataset="covid"):
    code, out = http_request(f"{server.url}/generate", "POST",
                             {"dataset": dataset})
    assert code == 202, out
    code, job = http_request(f"{server.url}/jobs/{out['job']}?wait=60")
    assert code == 200
    assert job["terminal"], job
    return out["job"], job


def _span_index(trace: dict) -> tuple[dict[int, dict], dict[str, int]]:
    """(span_id -> event, name -> count) for a Chrome-trace document."""
    by_id, by_name = {}, {}
    for event in trace["traceEvents"]:
        if event.get("ph") != "X":
            continue
        by_id[event["args"]["span_id"]] = event
        by_name[event["name"]] = by_name.get(event["name"], 0) + 1
    return by_id, by_name


class TestEndToEndTrace:
    def test_job_trace_is_one_connected_tree_across_all_layers(
        self, parallel_server
    ):
        job_id, job = _submit_and_wait(parallel_server)
        assert job["status"] == "completed"

        code, trace = http_request(
            f"{parallel_server.url}/jobs/{job_id}/trace"
        )
        assert code == 200
        by_id, by_name = _span_index(trace)

        # Exactly one root, and it is the request span.
        roots = [e for e in by_id.values()
                 if "parent_id" not in e["args"]]
        assert len(roots) == 1
        assert roots[0]["name"] == "serve.request"
        assert roots[0]["args"]["job"] == job_id

        # Every non-root span's parent exists in the same document:
        # one connected tree, nothing orphaned by the IPC hop.
        for event in by_id.values():
            parent = event["args"].get("parent_id")
            if parent is not None:
                assert parent in by_id, event["name"]

        # The tree covers every layer: submit path, executor, the run,
        # all four pipeline stages, and the worker subtrees.
        for name in ("serve.submit", "serve.admission", "serve.execute",
                     "serve.attempt", "run", "stage.stats",
                     "stage.generation", "stage.tap", "stage.render"):
            assert by_name.get(name, 0) >= 1, f"missing span {name!r}"
        assert by_name.get("parallel.task", 0) >= 1, (
            "no worker subtree was adopted across the process boundary"
        )

    def test_trace_of_an_unknown_suffix_is_404(self, parallel_server):
        job_id, _ = _submit_and_wait(parallel_server)
        code, _ = http_request(
            f"{parallel_server.url}/jobs/{job_id}/nonsense"
        )
        assert code == 404

    def test_metrics_expose_labeled_histograms_with_real_buckets(
        self, parallel_server
    ):
        _submit_and_wait(parallel_server)
        code, text = http_request(f"{parallel_server.url}/metrics")
        assert code == 200

        # The per-dataset latency histogram: cumulative le buckets, +Inf,
        # _sum and _count, all carrying the dataset label.
        assert re.search(
            r'repro_serve_job_latency_seconds_bucket\{dataset="covid",le="\+Inf"\} [1-9]',
            text,
        ), text
        assert re.search(
            r'repro_serve_job_latency_seconds_count\{dataset="covid"\} [1-9]',
            text,
        )
        assert re.search(
            r'repro_serve_queue_wait_seconds_bucket\{dataset="covid",le="0\.001"\} \d+',
            text,
        )
        # Outcome-labeled job counter rendered as a Prometheus series.
        assert re.search(
            r'repro_serve_jobs_total\{dataset="covid",outcome="completed"\} [1-9]',
            text,
        )
        assert "# TYPE repro_serve_job_latency_seconds histogram" in text

    def test_metrics_expose_operational_gauges(self, parallel_server):
        _submit_and_wait(parallel_server)
        code, text = http_request(f"{parallel_server.url}/metrics")
        assert code == 200
        assert re.search(r"repro_serve_queue_depth 0", text)
        assert re.search(r"repro_serve_datasets_resident 1", text)
        assert re.search(r"repro_serve_inflight_utilization 0", text)
        assert re.search(
            r'repro_serve_breaker_state\{dataset="covid"\} 0', text
        )


class TestPerJobIsolation:
    def test_sequential_jobs_get_fresh_registries(self, make_server):
        """The leak regression: job 2's registry must not contain job 1's.

        Both jobs run the same request shape, so if the executor reused
        one registry the second job's counters would be roughly double
        the first's.  Fresh-per-job means statistically identical.
        """
        server = make_server(ServeConfig(port=0))
        id1, _ = _submit_and_wait(server)
        id2, _ = _submit_and_wait(server)
        job1 = server.jobs.get(id1)
        job2 = server.jobs.get(id2)
        assert job1.metrics is not job2.metrics
        assert job1.tracer is not job2.tracer

        c1 = job1.metrics.snapshot()["counters"]
        c2 = job2.metrics.snapshot()["counters"]
        key = "stats.candidates_tested"
        assert c1.get(key, 0) > 0
        assert c2.get(key) == c1.get(key)  # not accumulating across jobs

        # Each tracer holds its own request exactly once.
        for job in (job1, job2):
            roots = [s for s in job.tracer.spans()
                     if s.name == "serve.request"]
            assert len(roots) == 1
            assert roots[0].attrs["job"] == job.id

    def test_job_metrics_fold_into_the_resident_session(self, make_server):
        """Isolation must not break cross-request cache amortization."""
        server = make_server(ServeConfig(port=0))
        _submit_and_wait(server)
        _submit_and_wait(server)
        code, body = http_request(f"{server.url}/datasets")
        assert code == 200
        (entry,) = body["datasets"]
        assert entry["cache"]["aggregate_hits"] > 0
