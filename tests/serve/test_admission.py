"""Admission control: depth and cost budgets shed, the queue hands off."""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry
from repro.runtime.faults import parse_fault_plan
from repro.serve.admission import (
    REASON_COST,
    REASON_INJECTED,
    REASON_QUEUE_FULL,
    AdmissionController,
)
from repro.serve.jobs import JobStore


def make_jobs(n: int, cost: float = 1.0) -> list:
    store = JobStore()
    return [store.create("covid", deadline_seconds=10.0, cost=cost)
            for _ in range(n)]


def test_admits_until_depth_then_sheds_queue_full():
    admission = AdmissionController(2, 100.0)
    a, b, c = make_jobs(3)
    assert admission.try_admit(a) == (True, None)
    assert admission.try_admit(b) == (True, None)
    assert admission.try_admit(c) == (False, REASON_QUEUE_FULL)
    assert admission.depth == 2


def test_cost_budget_sheds_but_never_starves_an_idle_server():
    admission = AdmissionController(10, 5.0)
    big, second = make_jobs(2, cost=8.0)
    # A job costlier than the whole budget still admits when idle...
    assert admission.try_admit(big) == (True, None)
    # ...but a second one is shed while the first is in flight.
    assert admission.try_admit(second) == (False, REASON_COST)
    assert admission.inflight_cost == 8.0


def test_release_returns_cost_only_after_terminal():
    admission = AdmissionController(10, 10.0)
    a, b = make_jobs(2, cost=6.0)
    assert admission.try_admit(a)[0]
    taken = admission.take(timeout=0)
    assert taken is a
    # Cost stays charged while the job runs (taken but not released).
    assert admission.try_admit(b) == (False, REASON_COST)
    admission.release(a)
    assert admission.try_admit(b) == (True, None)


def test_take_is_fifo_and_times_out_empty():
    admission = AdmissionController(10, 100.0)
    a, b = make_jobs(2)
    admission.try_admit(a)
    admission.try_admit(b)
    assert admission.take(timeout=0) is a
    assert admission.take(timeout=0) is b
    assert admission.take(timeout=0.01) is None


def test_close_wakes_blocked_takers():
    admission = AdmissionController(10, 100.0)
    results = []

    def taker():
        results.append(admission.take(timeout=10.0))

    thread = threading.Thread(target=taker)
    thread.start()
    admission.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert results == [None]


def test_injected_fault_forces_a_shed():
    faults = parse_fault_plan("serve.admission:kill")
    admission = AdmissionController(10, 100.0, faults=faults)
    a, b = make_jobs(2)
    assert admission.try_admit(a) == (False, REASON_INJECTED)
    # One-shot by default: the next request admits normally.
    assert admission.try_admit(b) == (True, None)


def test_metrics_account_requests_admissions_and_sheds():
    metrics = MetricsRegistry()
    admission = AdmissionController(1, 100.0, metrics=metrics)
    a, b = make_jobs(2)
    admission.try_admit(a)
    admission.try_admit(b)
    counters = metrics.snapshot()["counters"]
    assert counters["serve.requests"] == 2.0
    assert counters["serve.admitted"] == 1.0
    assert counters["serve.shed"] == 1.0
    assert counters["serve.shed_queue_full"] == 1.0
    assert metrics.snapshot()["gauges"]["serve.queue_depth"] == 1.0
