"""The dataset registry: warm sessions, lease-safe eviction, breakers."""

from __future__ import annotations

import pytest

from repro.errors import ServeError, UnknownDatasetError
from repro.serve.registry import DatasetRegistry


@pytest.fixture()
def registry(fast_config):
    reg = DatasetRegistry(config=fast_config)
    yield reg
    reg.close()


def test_register_get_and_names(registry, serve_csv):
    entry = registry.register("covid", serve_csv)
    assert registry.get("covid") is entry
    assert registry.names() == ["covid"]
    assert entry.session.table.n_rows == 200
    # 200 rows is below one cost unit; the floor is 1.
    assert entry.cost_units == 1.0


def test_duplicate_and_invalid_names_are_rejected(registry, serve_csv):
    registry.register("covid", serve_csv)
    with pytest.raises(ServeError, match="already registered"):
        registry.register("covid", serve_csv)
    with pytest.raises(ServeError, match="invalid dataset name"):
        registry.register("a/b", serve_csv)


def test_get_unknown_raises(registry):
    with pytest.raises(UnknownDatasetError, match="ghost"):
        registry.get("ghost")


def test_evict_without_leases_closes_immediately(registry, serve_csv):
    entry = registry.register("covid", serve_csv)
    assert registry.evict("covid") is True
    assert registry.evict("covid") is False  # already gone
    with pytest.raises(UnknownDatasetError):
        registry.get("covid")
    assert entry.session._closed


def test_evict_with_a_lease_defers_the_close(registry, serve_csv):
    entry = registry.register("covid", serve_csv)
    session = entry.acquire()
    assert registry.evict("covid") is True
    # The registry forgot it, but the leased session stays open...
    with pytest.raises(UnknownDatasetError):
        registry.get("covid")
    assert not session._closed
    # ...until the last lease drops.
    entry.release()
    assert session._closed


def test_acquire_after_eviction_raises(registry, serve_csv):
    entry = registry.register("covid", serve_csv)
    registry.evict("covid")
    with pytest.raises(UnknownDatasetError, match="evicted"):
        entry.acquire()


def test_reregistration_after_eviction_is_a_fresh_entry(registry, serve_csv):
    first = registry.register("covid", serve_csv)
    registry.evict("covid")
    second = registry.register("covid", serve_csv)
    assert second is not first
    assert registry.get("covid") is second


def test_snapshot_reports_cache_counters(registry, serve_csv):
    entry = registry.register("covid", serve_csv)
    entry.session.generate()
    snap = entry.snapshot()
    assert snap["name"] == "covid"
    assert snap["rows"] == 200
    assert snap["storage"] == entry.session.storage  # heap, or shm under REPRO_SHM=1
    assert snap["breaker"]["state"] == "closed"
    assert snap["cache"]["aggregate_misses"] > 0
    # A second identical run hits the warm aggregate cache.
    entry.session.generate()
    assert entry.snapshot()["cache"]["aggregate_hits"] > 0


def test_close_evicts_everything(registry, serve_csv, tmp_path):
    registry.register("covid", serve_csv)
    registry.close()
    assert registry.names() == []


def test_parallel_dataset_is_resident_in_shared_memory(fast_config, serve_csv):
    """With a subprocess pool configured, the warm table lives in shm once.

    Every job against the dataset then ships the compact handle to the
    (session-owned, amortized) worker fleet instead of re-pickling 200
    rows per job — eviction releases the segment.
    """
    from repro.relational.store import shm_available

    if not shm_available():
        pytest.skip("shared memory unavailable on this platform")
    reg = DatasetRegistry(
        config=fast_config.with_parallel(workers=2, store="shm")
    )
    try:
        entry = reg.register("covid", serve_csv)
        assert entry.snapshot()["storage"] == "shm"
        entry.session.generate()
        entry.session.generate()
        counters = entry.session.metrics.snapshot()["counters"]
        assert counters["parallel.shm_attach"] > 0
        assert counters["parallel.worker_spawns"] == 2  # one fleet, two runs
    finally:
        reg.close()
