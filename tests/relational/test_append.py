"""Appended row blocks: dictionary-extending growth, version tokens, moments.

The whole incremental-recompute subsystem rests on one invariant: a grown
table is indistinguishable from a cold load of the concatenated data —
same dictionary codes for old rows, same streamed version token, same
per-partition moment sums.  These tests pin that invariant down at the
relational layer.
"""

import numpy as np
import pytest

from repro.errors import ReproError, SchemaError
from repro.relational import table_from_arrays
from repro.relational.columns import NULL_LABEL
from repro.relational.moments import MomentStore, touched_labels
from repro.relational.table import TableVersioner, content_token
from repro.stats import derive_rng


@pytest.fixture
def base():
    rng = derive_rng(11, "append-base")
    n = 80
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2"], n),
            "b": rng.choice(["b0", "b1"], n),
        },
        {"m": rng.normal(0, 1, n)},
    )


BLOCK = {
    "a": ["a1", "a9", None, "a0"],
    "b": ["b0", "b1", "b0", "b1"],
    "m": [1.5, None, -2.0, 0.25],
}


def cold_concat(base, block):
    """The table a cold load of base+block would produce."""

    def decoded(table, name):
        col = table.categorical_column(name)
        return [
            col.categories[c] if c >= 0 else None for c in col.codes
        ]

    cats = {
        name: decoded(base, name) + list(block[name])
        for name in base.schema.categorical_names
    }
    meas = {
        name: list(base.measure_column(name).data) + list(block[name])
        for name in base.schema.measure_names
    }
    return table_from_arrays(cats, meas)


class TestAppendBlock:
    def test_returns_new_table_matching_cold_load(self, base):
        grown = base.append_block(BLOCK)
        assert grown is not base
        assert base.n_rows == 80  # the original is untouched
        cold = cold_concat(base, BLOCK)
        assert grown.n_rows == cold.n_rows == 84
        for name in base.schema.categorical_names:
            g, c = grown.categorical_column(name), cold.categorical_column(name)
            assert tuple(g.categories) == tuple(c.categories)
            assert np.array_equal(g.codes, c.codes)
        g = np.asarray(grown.measure_column("m").data, dtype=float)
        c = np.asarray(cold.measure_column("m").data, dtype=float)
        assert np.array_equal(g, c, equal_nan=True)

    def test_old_rows_keep_their_codes(self, base):
        grown = base.append_block(BLOCK)
        for name in base.schema.categorical_names:
            assert np.array_equal(
                grown.categorical_column(name).codes[: base.n_rows],
                base.categorical_column(name).codes,
            )

    def test_new_labels_extend_dictionary_in_first_appearance_order(self, base):
        grown = base.append_block(BLOCK)
        cats = grown.categorical_column("a").categories
        assert tuple(cats[: len(base.categorical_column("a").categories)]) == tuple(
            base.categorical_column("a").categories
        )
        assert cats[-1] == "a9"

    def test_row_tuple_form(self, base):
        names = base.schema.names
        tuples = [tuple(BLOCK[n][i] for n in names) for i in range(4)]
        from_tuples = base.append_block(tuples)
        from_mapping = base.append_block(BLOCK)
        for name in base.schema.categorical_names:
            assert np.array_equal(
                from_tuples.categorical_column(name).codes,
                from_mapping.categorical_column(name).codes,
            )

    def test_schema_mismatch_rejected(self, base):
        with pytest.raises(SchemaError):
            base.append_block({"a": ["a0"], "m": [1.0]})
        with pytest.raises(SchemaError):
            base.append_block({"a": ["a0"], "b": ["b0", "b1"], "m": [1.0]})
        with pytest.raises(SchemaError):
            base.append_block([("a0", "b0")])


class TestVersionToken:
    def test_advance_matches_cold_token(self, base):
        versioner = TableVersioner(base)
        grown = base.append_block(BLOCK)
        versioner.advance(grown, base.n_rows)
        assert versioner.token == content_token(grown)

    def test_prefix_property(self, base):
        grown = base.append_block(BLOCK)
        assert content_token(grown, base.n_rows) == content_token(base)
        assert content_token(grown) != content_token(base)

    def test_token_is_content_addressed_not_layout_addressed(self, base):
        # A cold load of the concatenated rows has a different dictionary
        # construction history but identical contents -> identical token.
        grown = base.append_block(BLOCK)
        cold = cold_concat(base, BLOCK)
        assert content_token(grown) == content_token(cold)

    def test_token_changes_with_content(self, base):
        other = dict(BLOCK)
        other["m"] = [1.5, None, -2.0, 0.26]
        assert content_token(base.append_block(BLOCK)) != content_token(
            base.append_block(other)
        )

    def test_chained_appends(self, base):
        versioner = TableVersioner(base)
        t = base
        for start in range(3):
            prev_rows = t.n_rows
            t = t.append_block(BLOCK)
            versioner.advance(t, prev_rows)
        assert versioner.token == content_token(t)


def assert_same_aggregate(one, two):
    assert one.attributes == two.attributes
    assert one.categories == two.categories
    for k1, k2 in zip(one.keys, two.keys):
        assert np.array_equal(k1, k2)
    assert set(one.summaries) == set(two.summaries)
    for name in one.summaries:
        s1, s2 = one.summaries[name], two.summaries[name]
        for field in ("count", "total", "total_sq", "minimum", "maximum"):
            assert np.array_equal(
                getattr(s1, field), getattr(s2, field), equal_nan=True
            ), f"{name}.{field} diverged"


class TestMomentStore:
    def test_advance_bitwise_equals_cold_build(self, base):
        store = MomentStore.build(base, content_token(base))
        grown = base.append_block(BLOCK)
        token = content_token(grown)
        advanced = store.advance(grown, base.n_rows, token)
        cold = MomentStore.build(grown, token)
        assert advanced.version == token and advanced.n_rows == grown.n_rows
        for attr in cold.attributes:
            assert_same_aggregate(advanced.moments(attr), cold.moments(attr))

    def test_dirty_values_are_the_touched_labels(self, base):
        store = MomentStore.build(base, content_token(base))
        grown = base.append_block(BLOCK)
        advanced = store.advance(grown, base.n_rows, content_token(grown))
        assert advanced.dirty_values("a") == frozenset(
            {"a1", "a9", NULL_LABEL, "a0"}
        )
        assert advanced.dirty_values("b") == frozenset({"b0", "b1"})

    def test_advance_requires_contiguous_delta(self, base):
        store = MomentStore.build(base, content_token(base))
        grown = base.append_block(BLOCK)
        with pytest.raises(ReproError):
            store.advance(grown, base.n_rows - 1, content_token(grown))

    def test_json_round_trip(self, base):
        grown = base.append_block(BLOCK)
        store = MomentStore.build(base, content_token(base)).advance(
            grown, base.n_rows, content_token(grown)
        )
        clone = MomentStore.from_dict(store.to_dict())
        assert clone.version == store.version
        assert clone.n_rows == store.n_rows
        assert clone.attributes == store.attributes
        for attr in store.attributes:
            assert_same_aggregate(clone.moments(attr), store.moments(attr))
            assert clone.dirty_values(attr) == store.dirty_values(attr)


class TestTouchedLabels:
    def test_only_block_labels_reported(self, base):
        grown = base.append_block(BLOCK)
        assert touched_labels(grown, "a", base.n_rows) == frozenset(
            {"a0", "a1", "a9", NULL_LABEL}
        )

    def test_empty_delta(self, base):
        assert touched_labels(base, "a", base.n_rows) == frozenset()
