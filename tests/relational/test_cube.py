"""Unit + property tests for repro.relational.cube (Algorithm 2 substrate)."""

import pytest

from repro.errors import QueryError
from repro.relational import (
    MaterializedAggregate,
    PairAggregate,
    PartialAggregateCache,
    aggregate_all,
    pair_group_by_sets,
    powerset_group_by_sets,
    table_from_arrays,
)


@pytest.fixture
def table(rng):
    n = 400
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2"], n),
            "b": rng.choice(["b0", "b1", "b2", "b3"], n),
            "c": rng.choice(["c0", "c1"], n),
        },
        {"m1": rng.normal(10, 3, n), "m2": rng.gamma(2.0, 5.0, n)},
    )


class TestLatticeEnumeration:
    def test_powerset_excludes_singletons(self):
        sets = powerset_group_by_sets(["a", "b", "c"])
        assert frozenset(("a",)) not in sets
        assert frozenset(("a", "b", "c")) in sets
        assert len(sets) == 4  # 3 pairs + 1 triple

    def test_pair_sets(self):
        pairs = pair_group_by_sets(["a", "b", "c"])
        assert len(pairs) == 3
        assert all(len(p) == 2 for p in pairs)


class TestMaterializedAggregate:
    def test_build_group_count(self, table):
        agg = MaterializedAggregate.build(table, ["a", "b"])
        assert agg.n_groups == table.group_by_codes(["a", "b"]).n_groups

    def test_rollup_matches_direct_build(self, table):
        fine = MaterializedAggregate.build(table, ["a", "b", "c"])
        rolled = fine.rollup_to(["a", "b"])
        direct = MaterializedAggregate.build(table, ["a", "b"])
        assert rolled.n_groups == direct.n_groups
        # Compare the summaries group-by-group through a PairAggregate view.
        rolled_view = PairAggregate(rolled, "a", "b")
        direct_view = PairAggregate(direct, "a", "b")
        for agg_name in ("sum", "avg", "count", "min", "max", "var"):
            got = rolled_view.series("a", "b", "b1", "m1", agg_name)
            expected = direct_view.series("a", "b", "b1", "m1", agg_name)
            assert set(got) == set(expected)
            for key in got:
                assert got[key] == pytest.approx(expected[key], rel=1e-9, nan_ok=True)

    def test_rollup_to_non_subset_rejected(self, table):
        agg = MaterializedAggregate.build(table, ["a", "b"])
        with pytest.raises(QueryError, match="non-subset"):
            agg.rollup_to(["a", "c"])

    def test_rollup_identity(self, table):
        agg = MaterializedAggregate.build(table, ["a", "b"])
        assert agg.rollup_to(["a", "b"]) is agg

    def test_actual_bytes_positive(self, table):
        agg = MaterializedAggregate.build(table, ["a"])
        assert agg.actual_bytes() > 0


class TestPairAggregate:
    def test_series_matches_manual_aggregation(self, table):
        agg = MaterializedAggregate.build(table, ["a", "b"])
        view = PairAggregate(agg, "a", "b")
        series = view.series("a", "b", "b0", "m1", "avg")
        mask_b = table.categorical_column("b").equals_mask("b0")
        for label, value in series.items():
            mask_a = table.categorical_column("a").equals_mask(label)
            expected = aggregate_all("avg", table.measure_values("m1")[mask_a & mask_b])
            assert value == pytest.approx(expected, rel=1e-9)

    def test_unknown_selection_label_empty(self, table):
        agg = MaterializedAggregate.build(table, ["a", "b"])
        view = PairAggregate(agg, "a", "b")
        assert view.series("a", "b", "nothere", "m1", "sum") == {}

    def test_series_is_read_only(self, table):
        """The memoized series is shared across pipeline stages through the
        cross-stage aggregate cache; mutating it must raise, not silently
        corrupt every later consumer."""
        agg = MaterializedAggregate.build(table, ["a", "b"])
        view = agg.pair_view("a", "b")
        series = view.series("a", "b", "b0", "m1", "avg")
        with pytest.raises(TypeError):
            series["a0"] = -1.0  # type: ignore[index]
        with pytest.raises(TypeError):
            view.series("a", "b", "nothere", "m1", "sum")["x"] = 0.0  # type: ignore[index]
        # The shared view still serves the untouched memo.
        assert agg.pair_view("a", "b").series("a", "b", "b0", "m1", "avg") == dict(series)

    def test_unknown_measure_raises(self, table):
        agg = MaterializedAggregate.build(table, ["a", "b"], measures=["m1"])
        view = PairAggregate(agg, "a", "b")
        with pytest.raises(QueryError, match="not materialized"):
            view.series("a", "b", "b0", "m2", "sum")

    def test_aligned_series_inner_join_semantics(self):
        # b1 only co-occurs with a0; the join must keep only common groups.
        t = table_from_arrays(
            {"a": ["a0", "a0", "a1"], "b": ["b0", "b1", "b0"]},
            {"m": [1.0, 2.0, 3.0]},
        )
        agg = MaterializedAggregate.build(t, ["a", "b"])
        view = PairAggregate(agg, "a", "b")
        groups, x, y = view.aligned_series("a", "b", "b0", "b1", "m", "sum")
        assert groups == ["a0"]
        assert x.tolist() == [1.0] and y.tolist() == [2.0]

    def test_wrong_pair_rejected(self, table):
        agg = MaterializedAggregate.build(table, ["a", "b"])
        with pytest.raises(QueryError):
            PairAggregate(agg, "a", "c")


class TestPartialAggregateCache:
    def test_pair_lookup_from_cover(self, table):
        cache = PartialAggregateCache()
        cache.add(MaterializedAggregate.build(table, ["a", "b", "c"]))
        assert cache.covers("a", "c")
        view = cache.pair("a", "c")
        assert set(view.aggregate.attributes) == {"a", "c"}

    def test_pair_lookup_memoized(self, table):
        cache = PartialAggregateCache()
        cache.add(MaterializedAggregate.build(table, ["a", "b", "c"]))
        assert cache.pair("a", "b") is cache.pair("a", "b")

    def test_missing_cover_raises(self, table):
        cache = PartialAggregateCache()
        cache.add(MaterializedAggregate.build(table, ["a", "b"]))
        with pytest.raises(QueryError, match="covers"):
            cache.pair("a", "c")

    def test_smallest_cover_preferred(self, table):
        cache = PartialAggregateCache()
        big = MaterializedAggregate.build(table, ["a", "b", "c"])
        small = MaterializedAggregate.build(table, ["a", "b"])
        cache.add(big)
        cache.add(small)
        view = cache.pair("a", "b")
        assert view.aggregate.n_groups == small.n_groups

    def test_total_bytes(self, table):
        cache = PartialAggregateCache()
        cache.add(MaterializedAggregate.build(table, ["a", "b"]))
        assert cache.total_bytes() > 0
