"""Partition-granular cache migration across an append.

``MaterializedAggregate.patched`` must be bit-identical to a cold rebuild
while touching only the groups the appended block contains, and
``AggregateCache.adopt`` must carry patchable entries (columnar) across a
table version while dropping non-incremental ones (sqlite) — so untouched
partitions keep producing ``cache.aggregate_hits`` after an append.
"""

import numpy as np
import pytest

from repro import obs
from repro.backend import incremental_backend_names
from repro.relational import table_from_arrays
from repro.relational.aggcache import AggregateCache
from repro.relational.cube import MaterializedAggregate
from repro.stats import derive_rng


@pytest.fixture
def base():
    rng = derive_rng(23, "aggcache-delta")
    n = 150
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2", "a3"], n),
            "b": rng.choice(["b0", "b1"], n),
        },
        {"m1": rng.normal(0, 1, n), "m2": rng.normal(5, 2, n)},
    )


BLOCK = {
    "a": ["a1", "a1", "a4"],
    "b": ["b0", "b0", "b0"],
    "m1": [0.5, -0.5, 2.5],
    "m2": [4.0, 6.0, 5.0],
}


def assert_bitwise(one, two):
    assert one.attributes == two.attributes
    assert one.categories == two.categories
    for k1, k2 in zip(one.keys, two.keys):
        assert np.array_equal(k1, k2)
    for name in two.summaries:
        s1, s2 = one.summaries[name], two.summaries[name]
        for field in ("count", "total", "total_sq", "minimum", "maximum"):
            assert np.array_equal(
                getattr(s1, field), getattr(s2, field), equal_nan=True
            ), f"{name}.{field}"


class TestPatched:
    @pytest.mark.parametrize("attrs", [("a",), ("b",), ("a", "b")])
    def test_bitwise_equal_to_cold_rebuild(self, base, attrs):
        old = MaterializedAggregate.build(base, attrs)
        grown = base.append_block(BLOCK)
        patched = old.patched(grown, base.n_rows)
        cold = MaterializedAggregate.build(grown, attrs)
        assert_bitwise(patched, cold)

    def test_only_touched_groups_recomputed(self, base):
        old = MaterializedAggregate.build(base, ("a",))
        grown = base.append_block(BLOCK)
        stats: dict = {}
        old.patched(grown, base.n_rows, stats)
        # The block contains values a1 and (new) a4: 2 touched partitions,
        # every other 'a' partition carried verbatim.
        assert stats["touched_groups"] == 2
        assert stats["total_groups"] >= 4
        assert stats["touched_groups"] < stats["total_groups"]

    def test_measure_subset_preserved(self, base):
        old = MaterializedAggregate.build(base, ("a",), ["m1"])
        grown = base.append_block(BLOCK)
        patched = old.patched(grown, base.n_rows)
        cold = MaterializedAggregate.build(grown, ("a",), ["m1"])
        assert set(patched.summaries) == {"m1"}
        assert_bitwise(patched, cold)


class TestAdopt:
    def test_incremental_backends_capability(self):
        assert "columnar" in incremental_backend_names()
        assert "sqlite" not in incremental_backend_names()

    def test_patchable_entries_migrate_others_drop(self, base):
        previous = AggregateCache()
        previous.seed("columnar", ("a",), None,
                      MaterializedAggregate.build(base, ("a",)))
        previous.seed("columnar", ("a", "b"), None,
                      MaterializedAggregate.build(base, ("a", "b")))
        previous.seed("sqlite", ("a",), None,
                      MaterializedAggregate.build(base, ("a",)))
        grown = base.append_block(BLOCK)
        fresh = AggregateCache()
        outcome = fresh.adopt(previous, grown, base.n_rows,
                              incremental_backend_names())
        assert outcome["migrated"] == 2
        assert outcome["dropped"] == 1
        assert outcome["groups_carried"] > 0
        assert outcome["groups_touched"] > 0
        assert len(fresh) == 2

    def test_migrated_entry_serves_hits_without_rebuild(self, base):
        previous = AggregateCache()
        previous.seed("columnar", ("a",), None,
                      MaterializedAggregate.build(base, ("a",)))
        grown = base.append_block(BLOCK)
        fresh = AggregateCache()
        fresh.adopt(previous, grown, base.n_rows, incremental_backend_names())

        calls = []

        def build():
            calls.append(1)
            return MaterializedAggregate.build(grown, ("a",))

        with obs.capture() as (_, metrics):
            served = fresh.get_or_build("columnar", ("a",), ["m1"], build)
            snap = metrics.snapshot()
        assert not calls, "migrated entry should be a hit, not a rebuild"
        assert snap["counters"]["cache.aggregate_hits"] == 1
        assert_bitwise(served, MaterializedAggregate.build(grown, ("a",)))

    def test_dropped_backend_rebuilds_on_demand(self, base):
        previous = AggregateCache()
        previous.seed("sqlite", ("a",), None,
                      MaterializedAggregate.build(base, ("a",)))
        grown = base.append_block(BLOCK)
        fresh = AggregateCache()
        fresh.adopt(previous, grown, base.n_rows, incremental_backend_names())

        calls = []

        def build():
            calls.append(1)
            return MaterializedAggregate.build(grown, ("a",))

        with obs.capture() as (_, metrics):
            fresh.get_or_build("sqlite", ("a",), None, build)
            snap = metrics.snapshot()
        assert calls, "dropped entry must rebuild from the grown table"
        assert snap["counters"]["cache.aggregate_misses"] == 1


class TestSeed:
    def test_seed_replaces_and_counts_bytes(self, base):
        cache = AggregateCache()
        agg = MaterializedAggregate.build(base, ("a",))
        cache.seed("columnar", ("a",), None, agg)
        cache.seed("columnar", ("a",), None, agg)
        assert len(cache) == 1
        assert cache.total_bytes() == agg.actual_bytes()

    def test_seeded_all_measures_serves_any_subset(self, base):
        cache = AggregateCache()
        cache.seed("columnar", ("a",), None,
                   MaterializedAggregate.build(base, ("a",)))
        with obs.capture() as (_, metrics):
            cache.get_or_build("columnar", ("a",), ["m2"],
                               lambda: pytest.fail("must not build"))
            snap = metrics.snapshot()
        assert snap["counters"]["cache.aggregate_hits"] == 1
