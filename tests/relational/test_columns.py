"""Unit tests for repro.relational.columns."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.columns import (
    CategoricalColumn,
    MeasureColumn,
    column_from_values,
)


class TestCategoricalColumn:
    def test_from_values_round_trip(self):
        col = CategoricalColumn.from_values(["x", "y", "x", "z"])
        assert col.to_list() == ["x", "y", "x", "z"]
        assert len(col) == 4

    def test_none_becomes_null_label(self):
        col = CategoricalColumn.from_values(["x", None, "y"])
        assert col.to_list() == ["x", "", "y"]

    def test_non_string_values_stringified(self):
        col = CategoricalColumn.from_values([4, 5, 4])
        assert col.to_list() == ["4", "5", "4"]

    def test_n_distinct_ignores_null_codes(self):
        col = CategoricalColumn(np.array([0, 1, -1, 0], dtype=np.int32), ["a", "b"])
        assert col.n_distinct() == 2

    def test_code_of_known_and_unknown(self):
        col = CategoricalColumn.from_values(["a", "b"])
        assert col.code_of("a") == 0
        assert col.code_of("b") == 1
        assert col.code_of("zzz") == -1

    def test_equals_mask(self):
        col = CategoricalColumn.from_values(["a", "b", "a"])
        assert col.equals_mask("a").tolist() == [True, False, True]
        assert col.equals_mask("nope").tolist() == [False, False, False]

    def test_take_preserves_dictionary(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        sub = col.take(np.array([2, 0]))
        assert sub.to_list() == ["c", "a"]
        assert sub.categories == col.categories

    def test_compact_drops_unused_categories(self):
        col = CategoricalColumn.from_values(["a", "b", "c"]).take(np.array([0, 2]))
        compacted = col.compact()
        assert set(compacted.categories) == {"a", "c"}
        assert compacted.to_list() == ["a", "c"]

    def test_compact_preserves_nulls(self):
        col = CategoricalColumn(np.array([0, -1, 1], dtype=np.int32), ["a", "b"])
        compacted = col.take(np.array([0, 1])).compact()
        assert compacted.to_list() == ["a", ""]

    def test_duplicate_categories_rejected(self):
        with pytest.raises(SchemaError, match="unique"):
            CategoricalColumn(np.array([0], dtype=np.int32), ["a", "a"])

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(SchemaError, match="out of range"):
            CategoricalColumn(np.array([5], dtype=np.int32), ["a"])

    def test_estimated_bytes_positive(self):
        col = CategoricalColumn.from_values(["a"] * 100)
        assert col.estimated_bytes() > 100 * 4

    def test_equality_is_value_based(self):
        one = CategoricalColumn.from_values(["a", "b"])
        two = CategoricalColumn(np.array([1, 0], dtype=np.int32), ["b", "a"])
        assert one == two  # same labels, different dictionaries

    @given(st.lists(st.sampled_from(["x", "y", "z", None]), max_size=50))
    def test_round_trip_property(self, values):
        col = CategoricalColumn.from_values(values)
        expected = ["" if v is None else v for v in values]
        assert col.to_list() == expected


class TestMeasureColumn:
    def test_from_values_with_nulls(self):
        col = MeasureColumn.from_values([1, None, "", 2.5])
        assert np.isnan(col.data[1]) and np.isnan(col.data[2])
        assert col.data[0] == 1.0 and col.data[3] == 2.5

    def test_string_numbers_parse(self):
        col = MeasureColumn.from_values(["3.5", " 2 "])
        assert col.to_list() == [3.5, 2.0]

    def test_non_null_strips_nans(self):
        col = MeasureColumn.from_values([1.0, None, 3.0])
        assert col.non_null().tolist() == [1.0, 3.0]

    def test_n_distinct_ignores_nan(self):
        col = MeasureColumn.from_values([1, 1, 2, None])
        assert col.n_distinct() == 2

    def test_take(self):
        col = MeasureColumn.from_values([1.0, 2.0, 3.0])
        assert col.take(np.array([2, 1])).to_list() == [3.0, 2.0]

    def test_equality_treats_nans_equal(self):
        one = MeasureColumn.from_values([1.0, None])
        two = MeasureColumn.from_values([1.0, None])
        assert one == two

    def test_equality_length_mismatch(self):
        assert MeasureColumn.from_values([1.0]) != MeasureColumn.from_values([1.0, 2.0])

    def test_is_categorical_flags(self):
        assert not MeasureColumn.from_values([1]).is_categorical
        assert CategoricalColumn.from_values(["a"]).is_categorical


class TestColumnFactory:
    def test_dispatch(self):
        assert isinstance(column_from_values([1], is_measure=True), MeasureColumn)
        assert isinstance(column_from_values(["a"], is_measure=False), CategoricalColumn)
