"""Unit tests for the cross-stage aggregate cache."""

import pickle
import threading

import pytest

from repro import obs
from repro.relational import table_from_arrays
from repro.relational.aggcache import AggregateCache
from repro.relational.cube import MaterializedAggregate
from repro.stats import derive_rng


@pytest.fixture
def table():
    rng = derive_rng(7, "aggcache")
    n = 120
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2"], n),
            "b": rng.choice(["b0", "b1"], n),
        },
        {"m1": rng.normal(0, 1, n), "m2": rng.normal(5, 2, n)},
    )


def builder(table, calls, attrs, measures):
    def build():
        calls.append((attrs, measures))
        return MaterializedAggregate.build(table, attrs, measures)

    return build


class TestGetOrBuild:
    def test_build_once_then_hit(self, table):
        cache = AggregateCache()
        calls = []
        with obs.capture() as (_, metrics):
            first = cache.get_or_build(
                "columnar", ("a", "b"), ["m1"], builder(table, calls, ("a", "b"), ["m1"])
            )
            second = cache.get_or_build(
                "columnar", ("a", "b"), ["m1"], builder(table, calls, ("a", "b"), ["m1"])
            )
            snap = metrics.snapshot()
        assert first is second
        assert len(calls) == 1
        assert snap["counters"]["cache.aggregate_misses"] == 1
        assert snap["counters"]["cache.aggregate_hits"] == 1

    def test_attribute_order_is_canonical(self, table):
        cache = AggregateCache()
        calls = []
        one = cache.get_or_build(
            "columnar", ("b", "a"), ["m1"], builder(table, calls, ("a", "b"), ["m1"])
        )
        two = cache.get_or_build(
            "columnar", ("a", "b"), ["m1"], builder(table, calls, ("a", "b"), ["m1"])
        )
        assert one is two and len(calls) == 1

    def test_superset_measures_serve_subset(self, table):
        cache = AggregateCache()
        calls = []
        full = cache.get_or_build(
            "columnar", ("a", "b"), None, builder(table, calls, ("a", "b"), None)
        )
        sub = cache.get_or_build(
            "columnar", ("a", "b"), ["m1"], builder(table, calls, ("a", "b"), ["m1"])
        )
        assert sub is full and len(calls) == 1

    def test_subset_does_not_serve_superset(self, table):
        cache = AggregateCache()
        calls = []
        cache.get_or_build(
            "columnar", ("a", "b"), ["m1"], builder(table, calls, ("a", "b"), ["m1"])
        )
        cache.get_or_build(
            "columnar", ("a", "b"), ["m1", "m2"],
            builder(table, calls, ("a", "b"), ["m1", "m2"]),
        )
        assert len(calls) == 2
        assert len(cache) == 2

    def test_backends_partition_the_cache(self, table):
        """FP parity is per-engine: sqlite entries never serve columnar."""
        cache = AggregateCache()
        calls = []
        one = cache.get_or_build(
            "columnar", ("a",), ["m1"], builder(table, calls, ("a",), ["m1"])
        )
        two = cache.get_or_build(
            "sqlite", ("a",), ["m1"], builder(table, calls, ("a",), ["m1"])
        )
        assert one is not two and len(calls) == 2

    def test_failed_build_releases_reservation(self, table):
        cache = AggregateCache()

        def boom():
            raise RuntimeError("synthetic build failure")

        with pytest.raises(RuntimeError):
            cache.get_or_build("columnar", ("a",), ["m1"], boom)
        calls = []
        rebuilt = cache.get_or_build(
            "columnar", ("a",), ["m1"], builder(table, calls, ("a",), ["m1"])
        )
        assert rebuilt.n_groups > 0 and len(calls) == 1

    def test_single_flight_under_concurrency(self, table):
        """Many threads, same key: exactly one build; all share the result."""
        cache = AggregateCache()
        build_count = []
        build_gate = threading.Event()

        def slow_build():
            build_gate.wait(timeout=5)
            build_count.append(1)
            return MaterializedAggregate.build(table, ("a", "b"), ["m1"])

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_build("columnar", ("a", "b"), ["m1"], slow_build)
                )
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        build_gate.set()
        for t in threads:
            t.join(timeout=10)
        assert len(build_count) == 1
        assert len(results) == 8
        assert all(r is results[0] for r in results)

    def test_accounting_helpers(self, table):
        cache = AggregateCache()
        assert len(cache) == 0 and cache.total_bytes() == 0
        cache.get_or_build("columnar", ("a",), ["m1"],
                           lambda: MaterializedAggregate.build(table, ("a",), ["m1"]))
        assert len(cache) == 1
        assert cache.total_bytes() > 0
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes() == 0


def _fill(cache, table, attrs_list):
    for attrs in attrs_list:
        cache.get_or_build(
            "columnar", attrs, ["m1"],
            lambda attrs=attrs: MaterializedAggregate.build(table, attrs, ["m1"]),
        )


class TestByteBudgetEviction:
    def test_default_budget_is_bounded(self):
        from repro.relational.aggcache import DEFAULT_MAX_BYTES

        assert AggregateCache().max_bytes == DEFAULT_MAX_BYTES

    def test_unbounded_cache_retains_everything(self, table):
        cache = AggregateCache(max_bytes=None)
        _fill(cache, table, [("a",), ("b",), ("a", "b")])
        assert len(cache) == 3

    def test_over_budget_evicts_least_recently_used(self, table):
        a_bytes = MaterializedAggregate.build(table, ("a",), ["m1"]).actual_bytes()
        ab_bytes = MaterializedAggregate.build(table, ("a", "b"), ["m1"]).actual_bytes()
        # Exactly enough for the ("a",) and ("a", "b") aggregates together:
        # adding ("a", "b") must push one single-attribute entry out.
        cache = AggregateCache(max_bytes=a_bytes + ab_bytes)
        with obs.capture() as (_, metrics):
            _fill(cache, table, [("a",), ("b",)])
            assert len(cache) == 2
            # Touch ("a",) so ("b",) becomes the LRU victim.
            cache.get_or_build("columnar", ("a",), ["m1"], lambda: 1 / 0)
            _fill(cache, table, [("a", "b")])
            snap = metrics.snapshot()
        assert snap["counters"]["cache.aggregate_evictions"] >= 1
        assert cache.total_bytes() <= cache.max_bytes
        # The refreshed entry survived; the stale one was evicted.
        calls = []
        cache.get_or_build(
            "columnar", ("a",), ["m1"], builder(table, calls, ("a",), ["m1"])
        )
        assert calls == []
        cache.get_or_build(
            "columnar", ("b",), ["m1"], builder(table, calls, ("b",), ["m1"])
        )
        assert len(calls) == 1

    def test_entry_larger_than_budget_is_not_retained(self, table):
        cache = AggregateCache(max_bytes=1)
        built = cache.get_or_build(
            "columnar", ("a", "b"), ["m1"],
            lambda: MaterializedAggregate.build(table, ("a", "b"), ["m1"]),
        )
        # The caller still gets the aggregate; the cache declines to keep it.
        assert built.n_groups > 0
        assert len(cache) == 0 and cache.total_bytes() == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            AggregateCache(max_bytes=-1)


class TestTableAttachment:
    def test_lazy_singleton_per_table(self, table):
        cache = table.aggregate_cache()
        assert table.aggregate_cache() is cache

    def test_pickle_round_trip_drops_cache(self, table):
        table.aggregate_cache().get_or_build(
            "columnar", ("a",), ["m1"],
            lambda: MaterializedAggregate.build(table, ("a",), ["m1"]),
        )
        clone = pickle.loads(pickle.dumps(table))
        assert clone._aggregate_cache is None
        assert clone.n_rows == table.n_rows
        # The clone grows a fresh, empty cache on demand.
        assert len(clone.aggregate_cache()) == 0
