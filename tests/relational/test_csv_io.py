"""Unit tests for repro.relational.csv_io."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeInferenceError
from repro.relational import (
    AttributeKind,
    infer_kinds,
    read_csv,
    read_csv_text,
    validate_for_analysis,
    write_csv,
)
from repro.relational.csv_io import MEASURE_MIN_DISTINCT


def _numeric_rows(n):
    return [[f"v{i % 3}", str(float(i))] for i in range(n)]


class TestInference:
    def test_numeric_high_cardinality_is_measure(self):
        kinds = infer_kinds(["cat", "num"], _numeric_rows(MEASURE_MIN_DISTINCT + 5))
        assert kinds["num"] is AttributeKind.MEASURE
        assert kinds["cat"] is AttributeKind.CATEGORICAL

    def test_numeric_low_cardinality_is_categorical(self):
        rows = [["a", str(i % 4)] for i in range(40)]
        kinds = infer_kinds(["cat", "num"], rows)
        assert kinds["num"] is AttributeKind.CATEGORICAL

    def test_mixed_column_is_categorical(self):
        rows = [["a", "1"], ["b", "two"]] * 20
        kinds = infer_kinds(["cat", "mix"], rows)
        assert kinds["mix"] is AttributeKind.CATEGORICAL

    def test_override_wins(self):
        rows = [["a", str(i % 4)] for i in range(40)]
        kinds = infer_kinds(["cat", "num"], rows, {"num": AttributeKind.MEASURE})
        assert kinds["num"] is AttributeKind.MEASURE

    def test_override_unknown_column_raises(self):
        with pytest.raises(TypeInferenceError, match="unknown columns"):
            infer_kinds(["a"], [], {"zzz": AttributeKind.MEASURE})

    def test_all_empty_column_is_categorical(self):
        kinds = infer_kinds(["a", "b"], [["x", ""], ["y", ""]])
        assert kinds["b"] is AttributeKind.CATEGORICAL


class TestReadWrite:
    def test_read_csv_text(self):
        n = MEASURE_MIN_DISTINCT + 2
        text = "cat,num\n" + "\n".join(f"v{i % 3},{i}.5" for i in range(n))
        table = read_csv_text(text)
        assert table.n_rows == n
        assert table.schema["num"].is_measure
        assert table.measure_values("num")[0] == 0.5

    def test_empty_input_raises(self):
        with pytest.raises(TypeInferenceError, match="empty"):
            read_csv_text("")

    def test_blank_lines_skipped(self):
        table = read_csv_text("a,b\nx,1\n\n \ny,2\n")
        assert table.n_rows == 2

    def test_missing_cells_become_null(self):
        text = "cat,num\n" + "\n".join(f"v,{i}" for i in range(20)) + "\nw\n"
        table = read_csv_text(text)
        assert np.isnan(table.measure_values("num")[-1])

    def test_round_trip_via_files(self, tmp_path):
        n = MEASURE_MIN_DISTINCT + 2
        text = "cat,num\n" + "\n".join(f"v{i % 3},{i}" for i in range(n))
        source = tmp_path / "in.csv"
        source.write_text(text)
        table = read_csv(source)
        target = tmp_path / "out.csv"
        write_csv(table, target)
        table2 = read_csv(target)
        assert table.to_dict() == table2.to_dict()

    def test_write_nulls_as_empty(self, tmp_path):
        table = read_csv_text("cat,num\n" + "\n".join(f"v,{i}" for i in range(20)) + "\nw,\n")
        target = tmp_path / "nulls.csv"
        write_csv(table, target)
        last_line = target.read_text().strip().splitlines()[-1]
        assert last_line == "w,"

    def test_custom_delimiter(self):
        table = read_csv_text("a;b\nx;y\n", delimiter=";")
        assert table.schema.names == ("a", "b")

    def test_header_whitespace_stripped(self):
        table = read_csv_text(" a , b \nx,y\n")
        assert table.schema.names == ("a", "b")


class TestStrictValidation:
    """``strict=True`` rejects tables the pipeline cannot analyse."""

    GOOD = "cat,num\n" + "\n".join(f"v{i % 3},{i}" for i in range(20))

    def test_good_table_passes(self):
        table = read_csv_text(self.GOOD, strict=True)
        validate_for_analysis(table)  # idempotent, no raise

    def test_header_only_rejected(self):
        with pytest.raises(SchemaError, match="no data rows"):
            read_csv_text("cat,num\n", strict=True)

    def test_nan_only_measure_rejected(self):
        text = "cat,num\n" + "\n".join(f"v{i % 3}," for i in range(20))
        table = read_csv_text(text, overrides={"num": AttributeKind.MEASURE})
        with pytest.raises(SchemaError, match="non-NaN"):
            validate_for_analysis(table)

    def test_single_value_categorical_rejected(self):
        text = "cat,num\n" + "\n".join(f"same,{i}" for i in range(20))
        with pytest.raises(SchemaError, match="fewer than two distinct"):
            read_csv_text(text, strict=True)

    def test_duplicate_header_rejected_even_lenient(self):
        with pytest.raises(SchemaError, match="duplicate column names"):
            read_csv_text("a,a\n1,2\n")

    def test_lenient_mode_still_permissive(self):
        # The seed behaviour: single-row / single-value tables load fine
        # when strict validation is not requested.
        table = read_csv_text("cat,num\nsame,1\n")
        assert table.n_rows == 1

    def test_strict_file_loading(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("cat,num\n")
        with pytest.raises(SchemaError):
            read_csv(path, strict=True)
