"""Property-based tests: roll-up correctness on random tables.

The Algorithm 2 cache is only sound if rolling any materialized aggregate
up to any subset matches aggregating the base data directly — for every
aggregate function, on arbitrary data (including NULLs).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import MaterializedAggregate, PairAggregate, aggregate_all, table_from_arrays

ATTRS = ("a", "b", "c")


@st.composite
def tables(draw):
    n = draw(st.integers(4, 50))
    seed = draw(st.integers(0, 100_000))
    rng = np.random.default_rng(seed)
    data = {
        "a": rng.choice(["a0", "a1", "a2"], n),
        "b": rng.choice(["b0", "b1"], n),
        "c": rng.choice(["c0", "c1", "c2", "c3"], n),
    }
    m = rng.normal(0, 5, n)
    m[rng.random(n) < 0.15] = np.nan
    return table_from_arrays(data, {"m": m})


@settings(max_examples=40, deadline=None)
@given(tables(), st.sampled_from(["sum", "avg", "count", "min", "max", "var"]),
       st.sampled_from([("a", "b"), ("a", "c"), ("b", "c")]))
def test_rollup_from_full_cube_matches_base(table, agg, pair):
    """Materialize all three attributes, roll up to each pair, compare with
    direct aggregation of the base rows."""
    first, second = pair
    full = MaterializedAggregate.build(table, ATTRS)
    rolled = PairAggregate(full.rollup_to(pair), first, second)
    col_second = table.categorical_column(second)
    for label in set(col_second.values()) - {""}:
        series = rolled.series(first, second, label, "m", agg)
        mask_second = col_second.equals_mask(label)
        col_first = table.categorical_column(first)
        for group_label, value in series.items():
            mask = mask_second & col_first.equals_mask(group_label)
            expected = aggregate_all(agg, table.measure_values("m")[mask])
            if np.isnan(expected):
                assert np.isnan(value)
            else:
                assert abs(value - expected) <= 1e-9 * max(1.0, abs(expected))


@settings(max_examples=30, deadline=None)
@given(tables())
def test_rollup_chain_associative(table):
    """Rolling a->ab->a must equal rolling a directly (chain soundness)."""
    full = MaterializedAggregate.build(table, ATTRS)
    via_pair = full.rollup_to(("a", "b")).rollup_to(("a",))
    direct = full.rollup_to(("a",))
    assert via_pair.n_groups == direct.n_groups
    for agg in ("sum", "count", "var"):
        np.testing.assert_allclose(
            via_pair.summaries["m"].finalize(agg),
            direct.summaries["m"].finalize(agg),
            rtol=1e-9, equal_nan=True,
        )
