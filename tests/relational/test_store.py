"""Column stores: the shared-memory data plane's lifecycle contract.

Everything here runs in one process; the cross-process behaviour (worker
attach, crash cleanup, restart re-attach) is covered by the parallel and
fleet suites.  These tests pin the local invariants the rest of the data
plane builds on: value-identical sharing, compact picklable handles,
fingerprint verification, refcounted unlink-on-last-release, and the
heap degradation rules.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro import obs
from repro.errors import ReproError
from repro.parallel.config import ParallelConfig, resolve_store_kind
from repro.relational import table_from_arrays
from repro.relational.store import (
    SEGMENT_PREFIX,
    TableHandle,
    attach_table,
    export_table,
    leaked_segments,
    resolve_table,
    share_table,
    shm_available,
    shm_resident_bytes,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


@pytest.fixture(autouse=True)
def no_leaks():
    before = set(leaked_segments())
    yield
    leaked = sorted(set(leaked_segments()) - before)
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


@pytest.fixture()
def table():
    return table_from_arrays(
        {"city": ["paris", "lyon", "paris", "nice"] * 8,
         "year": ["20", "20", "21", "21"] * 8},
        {"sales": [float(i % 5) for i in range(32)],
         "units": [float(i) for i in range(32)]},
    )


class TestShare:
    def test_shared_table_is_value_identical(self, table):
        shared = share_table(table)
        try:
            assert shared.storage == "shm"
            assert table.storage == "heap"
            assert shared.schema == table.schema
            assert shared.to_dict() == table.to_dict()
            np.testing.assert_array_equal(
                shared.measure_column("sales").data,
                table.measure_column("sales").data,
            )
        finally:
            shared._store.release()

    def test_segment_is_named_and_unlinked_on_release(self, table):
        shared = share_table(table)
        segment = shared.handle().segment
        assert segment.startswith(SEGMENT_PREFIX)
        assert segment in leaked_segments()
        shared._store.release()
        assert segment not in leaked_segments()

    def test_resident_bytes_gauge_tracks_ownership(self, table):
        base = shm_resident_bytes()
        shared = share_table(table)
        assert shm_resident_bytes() >= base + 32 * 8  # at least the measures
        shared._store.release()
        assert shm_resident_bytes() == base

    def test_refcount_defers_unlink_to_last_release(self, table):
        shared = share_table(table)
        store = shared._store
        store.retain()
        store.release()
        assert not store.closed  # one reference still out
        store.release()
        assert store.closed
        with pytest.raises(ReproError, match="already released"):
            store.retain()

    def test_release_is_idempotent(self, table):
        store = share_table(table)._store
        store.release()
        store.release()  # no error, no double unlink


class TestHandle:
    def test_handle_is_compact_and_picklable(self, table):
        shared = share_table(table)
        try:
            handle = shared.handle()
            wire = pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL)
            table_wire = pickle.dumps(table, protocol=pickle.HIGHEST_PROTOCOL)
            assert len(wire) < len(table_wire) / 2
            assert pickle.loads(wire) == handle
        finally:
            shared._store.release()

    def test_heap_table_has_no_handle(self, table):
        assert table.handle() is None
        assert table.storage == "heap"

    def test_pickled_shm_table_degrades_to_heap(self, table):
        shared = share_table(table)
        try:
            copy = pickle.loads(pickle.dumps(shared))
            assert copy.storage == "heap"
            assert copy.to_dict() == table.to_dict()
        finally:
            shared._store.release()

    def test_derived_tables_are_heap(self, table):
        shared = share_table(table)
        try:
            sub = shared.filter(np.arange(shared.n_rows) < 8)
            assert sub.storage == "heap"
        finally:
            shared._store.release()


class TestAttach:
    def test_creator_attach_returns_the_original(self, table):
        shared = share_table(table)
        try:
            with obs.capture() as (_, metrics):
                assert attach_table(shared.handle()) is shared
                assert metrics.counter("parallel.shm_attach").value == 1
        finally:
            shared._store.release()

    def test_tampered_fingerprint_is_rejected(self, table):
        shared = share_table(table)
        try:
            bad = dataclasses.replace(shared.handle(), fingerprint="0" * 16)
            with pytest.raises(ReproError, match="fingerprint"):
                attach_table(bad)
        finally:
            shared._store.release()

    def test_attach_of_released_segment_raises(self, table):
        shared = share_table(table)
        handle = shared.handle()
        shared._store.release()
        with pytest.raises(ReproError, match="gone"):
            attach_table(handle)

    def test_resolve_table_is_polymorphic(self, table):
        shared = share_table(table)
        try:
            assert resolve_table(table) is table
            assert resolve_table(shared.handle()) is shared
        finally:
            shared._store.release()


class TestExport:
    def test_heap_plane_ships_the_table_itself(self, table):
        payload, owned = export_table(table, "heap")
        assert payload is table
        assert owned is None

    def test_shm_plane_shares_once_and_reuses_existing_segments(self, table):
        payload, owned = export_table(table, "shm")
        try:
            assert isinstance(payload, TableHandle)
            assert owned is not None  # this call created the segment
            again, second = export_table(owned.table, "shm")
            assert again is payload  # already shared: same handle...
            assert second is None  # ...and no new ownership
        finally:
            owned.release()


class TestStoreKindResolution:
    def test_explicit_kinds(self):
        assert resolve_store_kind(ParallelConfig(workers=2, store="heap")) == "heap"
        assert resolve_store_kind(ParallelConfig(workers=2, store="shm")) == "shm"

    def test_auto_follows_the_pool(self):
        assert resolve_store_kind(ParallelConfig(workers=2)) == "shm"
        assert resolve_store_kind(ParallelConfig(workers=1)) == "heap"
        assert (
            resolve_store_kind(ParallelConfig(workers=2, backend="threads"))
            == "heap"
        )
