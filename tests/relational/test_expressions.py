"""Unit tests for repro.relational.expressions."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.relational import table_from_arrays
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    ScalarFunction,
    conjunction,
)


@pytest.fixture
def table():
    return table_from_arrays(
        {"cat": ["a", "b", "a", None]},
        {"m": [1.0, 2.0, None, 4.0]},
    )


class TestLiteralsAndRefs:
    def test_numeric_literal_broadcasts(self, table):
        out = Literal(3).evaluate(table)
        assert out.tolist() == [3.0] * 4

    def test_string_literal_is_object(self, table):
        out = Literal("x").evaluate(table)
        assert out.dtype == object

    def test_bool_literal(self, table):
        assert Literal(True).evaluate(table).dtype == bool

    def test_column_ref(self, table):
        assert ColumnRef("cat").evaluate(table).tolist() == ["a", "b", "a", ""]

    def test_references(self, table):
        expr = Comparison("=", ColumnRef("cat"), Literal("a"))
        assert expr.references() == {"cat"}
        assert Literal(1).references() == frozenset()


class TestComparison:
    def test_categorical_equality_uses_codes(self, table):
        mask = Comparison("=", ColumnRef("cat"), Literal("a")).evaluate(table)
        assert mask.tolist() == [True, False, True, False]

    def test_categorical_inequality(self, table):
        mask = Comparison("<>", ColumnRef("cat"), Literal("a")).evaluate(table)
        assert mask.tolist() == [False, True, False, True]

    def test_unknown_label_matches_nothing(self, table):
        mask = Comparison("=", ColumnRef("cat"), Literal("zzz")).evaluate(table)
        assert not mask.any()

    def test_numeric_comparisons(self, table):
        gt = Comparison(">", ColumnRef("m"), Literal(1.5)).evaluate(table)
        assert gt.tolist() == [False, True, False, True]
        # NaN compares false
        ge = Comparison(">=", ColumnRef("m"), Literal(0)).evaluate(table)
        assert ge.tolist() == [True, True, False, True]

    def test_literal_on_left(self, table):
        mask = Comparison("=", Literal("b"), ColumnRef("cat")).evaluate(table)
        assert mask.tolist() == [False, True, False, False]

    def test_invalid_operator_rejected(self):
        with pytest.raises(ExecutionError):
            Comparison("~", Literal(1), Literal(2))


class TestBoolean:
    def test_and_or_not(self, table):
        a = Comparison("=", ColumnRef("cat"), Literal("a"))
        b = Comparison(">", ColumnRef("m"), Literal(0.5))
        assert And((a, b)).evaluate(table).tolist() == [True, False, False, False]
        assert Or((a, b)).evaluate(table).tolist() == [True, True, True, True]
        assert Not(a).evaluate(table).tolist() == [False, True, False, True]

    def test_conjunction_empty_is_true(self, table):
        assert conjunction([]).evaluate(table).all()

    def test_conjunction_single_passthrough(self, table):
        a = Comparison("=", ColumnRef("cat"), Literal("a"))
        assert conjunction([a]) is a


class TestArithmetic:
    def test_operations(self, table):
        out = Arithmetic("+", ColumnRef("m"), Literal(1)).evaluate(table)
        assert out[0] == 2.0 and np.isnan(out[2])
        out = Arithmetic("*", ColumnRef("m"), Literal(2)).evaluate(table)
        assert out[1] == 4.0

    def test_division_by_zero_is_nan(self, table):
        out = Arithmetic("/", ColumnRef("m"), Literal(0)).evaluate(table)
        assert np.isnan(out).all()

    def test_negate(self, table):
        assert Negate(Literal(3)).evaluate(table)[0] == -3.0

    def test_invalid_op(self):
        with pytest.raises(ExecutionError):
            Arithmetic("%", Literal(1), Literal(2))


class TestFunctionsAndPredicates:
    def test_scalar_function(self, table):
        out = ScalarFunction("abs", (Negate(ColumnRef("m")),)).evaluate(table)
        assert out[0] == 1.0

    def test_unknown_scalar_function(self, table):
        with pytest.raises(ExecutionError, match="unknown scalar"):
            ScalarFunction("nope", (Literal(1),)).evaluate(table)

    def test_is_null_on_measure(self, table):
        assert IsNull(ColumnRef("m")).evaluate(table).tolist() == [False, False, True, False]
        assert IsNull(ColumnRef("m"), negated=True).evaluate(table).tolist() == [
            True,
            True,
            False,
            True,
        ]

    def test_is_null_on_categorical(self, table):
        assert IsNull(ColumnRef("cat")).evaluate(table).tolist() == [False, False, False, True]

    def test_in_list(self, table):
        mask = InList(ColumnRef("cat"), ("a", "b")).evaluate(table)
        assert mask.tolist() == [True, True, True, False]
        mask = InList(ColumnRef("cat"), ("a",), negated=True).evaluate(table)
        assert mask.tolist() == [False, True, False, True]


class TestCaseExpression:
    def test_numeric_priority(self, table):
        from repro.relational.expressions import Case

        expr = Case(
            branches=(
                (Comparison(">", ColumnRef("m"), Literal(1.5)), Literal(10)),
                (Comparison(">", ColumnRef("m"), Literal(0.5)), Literal(1)),
            ),
            default=Literal(0),
        )
        out = expr.evaluate(table)
        assert out[0] == 1.0 and out[1] == 10.0
        assert out[2] == 0.0  # NULL m: no branch matches -> default

    def test_no_default_yields_nan(self, table):
        from repro.relational.expressions import Case

        expr = Case(branches=((Comparison(">", ColumnRef("m"), Literal(100)), Literal(1)),))
        assert np.isnan(expr.evaluate(table)).all()

    def test_string_branches(self, table):
        from repro.relational.expressions import Case

        expr = Case(
            branches=((Comparison("=", ColumnRef("cat"), Literal("a")), Literal("yes")),),
            default=Literal("no"),
        )
        assert expr.evaluate(table).tolist() == ["yes", "no", "yes", "no"]

    def test_references(self, table):
        from repro.relational.expressions import Case

        expr = Case(
            branches=((Comparison("=", ColumnRef("cat"), Literal("a")), ColumnRef("m")),),
            default=Literal(0),
        )
        assert expr.references() == {"cat", "m"}
