"""Unit tests for repro.relational.functional_deps."""

from repro.relational import (
    detect_functional_dependencies,
    related_attributes,
    table_from_arrays,
)
from repro.relational.functional_deps import FunctionalDependency, holds


def _table():
    # country -> continent holds; month is independent.
    return table_from_arrays(
        {
            "country": ["fr", "fr", "de", "it", "it", "jp"],
            "continent": ["eu", "eu", "eu", "eu", "eu", "as"],
            "month": ["1", "2", "1", "2", "1", "2"],
        },
        {"m": [1, 2, 3, 4, 5, 6]},
    )


class TestHolds:
    def test_fd_holds(self):
        assert holds(_table(), "country", "continent")

    def test_fd_does_not_hold(self):
        assert not holds(_table(), "continent", "country")
        assert not holds(_table(), "month", "country")

    def test_fd_trivially_holds_for_keylike_attribute(self):
        t = table_from_arrays(
            {"id": ["a", "b", "c"], "x": ["1", "1", "2"]}, {"m": [1, 2, 3]}
        )
        assert holds(t, "id", "x")


class TestDetection:
    def test_detects_country_continent(self):
        fds = detect_functional_dependencies(_table())
        assert FunctionalDependency("country", "continent") in fds

    def test_no_trivial_dependencies(self):
        fds = detect_functional_dependencies(_table())
        assert all(fd.determinant != fd.dependent for fd in fds)

    def test_no_reverse_direction(self):
        fds = detect_functional_dependencies(_table())
        assert FunctionalDependency("continent", "country") not in fds

    def test_str_rendering(self):
        assert str(FunctionalDependency("a", "b")) == "a -> b"


class TestRelatedAttributes:
    def test_pairs_are_unordered(self):
        fds = [FunctionalDependency("a", "b"), FunctionalDependency("b", "a")]
        assert related_attributes(fds) == {frozenset(("a", "b"))}

    def test_empty(self):
        assert related_attributes([]) == set()

    def test_excludes_nothing_extra(self):
        pairs = related_attributes(detect_functional_dependencies(_table()))
        assert frozenset(("country", "continent")) in pairs
        assert frozenset(("month", "continent")) not in pairs
