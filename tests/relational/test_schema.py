"""Unit tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, AttributeKind, Schema, categorical, measure


class TestAttribute:
    def test_categorical_constructor(self):
        attr = categorical("city")
        assert attr.name == "city"
        assert attr.is_categorical
        assert not attr.is_measure

    def test_measure_constructor(self):
        attr = measure("sales")
        assert attr.is_measure
        assert attr.kind is AttributeKind.MEASURE

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeKind.MEASURE)

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute(3, AttributeKind.MEASURE)  # type: ignore[arg-type]

    def test_attributes_are_hashable_value_objects(self):
        assert categorical("x") == categorical("x")
        assert len({categorical("x"), categorical("x"), measure("x")}) == 2


class TestSchema:
    def test_iteration_preserves_order(self):
        schema = Schema([categorical("a"), measure("m"), categorical("b")])
        assert [a.name for a in schema] == ["a", "m", "b"]

    def test_len_and_contains(self):
        schema = Schema([categorical("a"), measure("m")])
        assert len(schema) == 2
        assert "a" in schema
        assert "zzz" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([categorical("a"), measure("a")])

    def test_lookup_unknown_raises_with_candidates(self):
        schema = Schema([categorical("a")])
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema["nope"]

    def test_names_split_by_kind(self):
        schema = Schema([categorical("a"), measure("m1"), categorical("b"), measure("m2")])
        assert schema.categorical_names == ("a", "b")
        assert schema.measure_names == ("m1", "m2")
        assert schema.names == ("a", "m1", "b", "m2")

    def test_require_categorical_rejects_measure(self):
        schema = Schema([measure("m")])
        with pytest.raises(SchemaError, match="expected categorical"):
            schema.require_categorical("m")

    def test_require_measure_rejects_categorical(self):
        schema = Schema([categorical("a")])
        with pytest.raises(SchemaError, match="expected a measure"):
            schema.require_measure("a")

    def test_subset_keeps_given_order(self):
        schema = Schema([categorical("a"), categorical("b"), measure("m")])
        sub = schema.subset(["m", "a"])
        assert sub.names == ("m", "a")

    def test_subset_unknown_raises(self):
        schema = Schema([categorical("a")])
        with pytest.raises(SchemaError):
            schema.subset(["a", "q"])

    def test_equality_and_hash(self):
        one = Schema([categorical("a"), measure("m")])
        two = Schema([categorical("a"), measure("m")])
        assert one == two
        assert hash(one) == hash(two)
        assert one != Schema([measure("m"), categorical("a")])

    def test_kind_of(self):
        schema = Schema([categorical("a"), measure("m")])
        assert schema.kind_of("a") is AttributeKind.CATEGORICAL
        assert schema.kind_of("m") is AttributeKind.MEASURE

    def test_repr_is_compact(self):
        schema = Schema([categorical("a"), measure("m")])
        assert repr(schema) == "Schema(a:C, m:M)"
