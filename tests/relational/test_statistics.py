"""Unit tests for repro.relational.statistics (size estimation)."""

import pytest

from repro.relational import (
    collect_statistics,
    estimate_aggregate_bytes,
    estimate_group_count,
    exact_group_count,
    table_from_arrays,
)
from repro.relational.statistics import cardenas


class TestCardenas:
    def test_zero_rows(self):
        assert cardenas(0, 100) == 0.0

    def test_saturation(self):
        # Far more balls than cells: every cell occupied.
        assert cardenas(100000, 10) == pytest.approx(10.0)

    def test_sparse_regime(self):
        # Few balls, many cells: nearly every ball its own cell.
        assert cardenas(10, 1_000_000) == pytest.approx(10.0, rel=1e-3)

    def test_single_cell(self):
        assert cardenas(50, 1) == 1.0

    def test_monotone_in_rows(self):
        values = [cardenas(n, 100) for n in (1, 10, 100, 1000)]
        assert values == sorted(values)


class TestGroupCountEstimate:
    @pytest.fixture
    def table(self, rng):
        n = 2000
        return table_from_arrays(
            {
                "a": rng.choice([f"a{i}" for i in range(10)], n),
                "b": rng.choice([f"b{i}" for i in range(20)], n),
            },
            {"m": rng.normal(0, 1, n)},
        )

    def test_single_attribute_estimate_is_exact(self, table):
        assert estimate_group_count(table, ["a"]) == pytest.approx(
            exact_group_count(table, ["a"]), rel=0.05
        )

    def test_pair_estimate_close_to_exact(self, table):
        estimated = estimate_group_count(table, ["a", "b"])
        exact = exact_group_count(table, ["a", "b"])
        # Independence holds by construction, so the estimate is good.
        assert estimated == pytest.approx(exact, rel=0.15)

    def test_never_exceeds_rows(self, table):
        assert estimate_group_count(table, ["a", "b"]) <= table.n_rows

    def test_empty_attribute_list(self, table):
        assert estimate_group_count(table, []) == 1.0

    def test_bytes_scale_with_groups_and_measures(self, table):
        small = estimate_aggregate_bytes(table, ["a"])
        large = estimate_aggregate_bytes(table, ["a", "b"])
        assert large > small
        assert estimate_aggregate_bytes(table, ["a"], n_measures=5) > small


class TestCollectStatistics:
    def test_per_column_stats(self):
        t = table_from_arrays({"a": ["x", "y", None]}, {"m": [1.0, None, 3.0]})
        stats = collect_statistics(t)
        assert stats["a"].n_distinct == 2
        assert stats["a"].n_null == 1
        assert stats["m"].n_distinct == 2
        assert stats["m"].n_null == 1
