"""Unit tests for repro.relational.operators."""

import numpy as np
import pytest

from repro.errors import ExecutionError, SchemaError
from repro.relational import (
    AggregateSpec,
    distinct,
    group_by_aggregate,
    hash_join,
    limit,
    select,
    sort,
    table_from_arrays,
    union_all,
)
from repro.relational.expressions import ColumnRef, Comparison, Literal


@pytest.fixture
def sales():
    return table_from_arrays(
        {"city": ["paris", "lyon", "paris", "nice", "lyon"]},
        {"amount": [10.0, 5.0, 20.0, None, 7.0]},
    )


class TestSelect:
    def test_filters_rows(self, sales):
        out = select(sales, Comparison("=", ColumnRef("city"), Literal("paris")))
        assert out.n_rows == 2

    def test_non_boolean_predicate_rejected(self, sales):
        with pytest.raises(ExecutionError, match="boolean"):
            select(sales, Literal(1.0))


class TestGroupByAggregate:
    def test_multiple_aggregates_one_pass(self, sales):
        out = group_by_aggregate(
            sales,
            ["city"],
            [
                AggregateSpec("sum", "amount", "total"),
                AggregateSpec("avg", "amount", "mean"),
                AggregateSpec("count", None, "n"),
            ],
        )
        d = dict(zip(out.to_dict()["city"], out.to_dict()["total"]))
        assert d["paris"] == 30.0 and d["lyon"] == 12.0
        n = dict(zip(out.to_dict()["city"], out.to_dict()["n"]))
        assert n["nice"] == 1.0  # count(*) counts the NULL row

    def test_count_star_vs_count_column(self, sales):
        out = group_by_aggregate(
            sales,
            ["city"],
            [AggregateSpec("count", None, "rows"), AggregateSpec("count", "amount", "vals")],
        )
        row = {c: (r, v) for c, r, v in zip(*out.to_dict().values())}
        assert row["nice"] == (1.0, 0.0)  # NULL measure not counted

    def test_empty_key_list_global_aggregate(self, sales):
        out = group_by_aggregate(sales, [], [AggregateSpec("sum", "amount", "s")])
        assert out.n_rows == 1
        assert out.to_dict()["s"] == [42.0]

    def test_empty_table(self, sales):
        empty = sales.filter(np.zeros(5, dtype=bool))
        out = group_by_aggregate(empty, ["city"], [AggregateSpec("sum", "amount", "s")])
        assert out.n_rows == 0

    def test_invalid_aggregate_spec(self):
        with pytest.raises(ExecutionError):
            AggregateSpec("nope", "amount", "x")
        with pytest.raises(ExecutionError, match="requires a measure"):
            AggregateSpec("sum", None, "x")


class TestSort:
    def test_ascending(self, sales):
        out = sort(sales, ["amount"])
        amounts = out.to_dict()["amount"]
        assert amounts[:4] == [5.0, 7.0, 10.0, 20.0]
        assert np.isnan(amounts[4])  # NULLs last

    def test_descending_nulls_still_last(self, sales):
        out = sort(sales, ["amount"], [False])
        amounts = out.to_dict()["amount"]
        assert amounts[:4] == [20.0, 10.0, 7.0, 5.0]
        assert np.isnan(amounts[4])

    def test_multi_key_stability(self):
        t = table_from_arrays(
            {"g": ["b", "a", "b", "a"], "tag": ["1", "2", "3", "4"]},
            {"m": [1.0, 1.0, 1.0, 1.0]},
        )
        out = sort(t, ["m", "g"], [True, True])
        assert out.to_dict()["tag"] == ["2", "4", "1", "3"]  # stable within groups

    def test_categorical_sort(self, sales):
        out = sort(sales, ["city"])
        assert out.to_dict()["city"][0] == "lyon"

    def test_empty_keys_identity(self, sales):
        assert sort(sales, []) == sales

    def test_mismatched_flags(self, sales):
        with pytest.raises(ExecutionError):
            sort(sales, ["city"], [True, False])


class TestHashJoin:
    def test_inner_join(self):
        left = table_from_arrays({"k": ["a", "b", "c"]}, {"x": [1, 2, 3]})
        right = table_from_arrays({"k": ["b", "c", "d"]}, {"y": [20, 30, 40]})
        out = hash_join(left, right, [("k", "k")])
        assert out.n_rows == 2
        assert out.schema.names == ("k", "x", "k_r", "y")
        assert out.to_dict()["y"] == [20.0, 30.0]

    def test_duplicate_keys_produce_products(self):
        left = table_from_arrays({"k": ["a", "a"]}, {"x": [1, 2]})
        right = table_from_arrays({"k": ["a", "a"]}, {"y": [10, 20]})
        out = hash_join(left, right, [("k", "k")])
        assert out.n_rows == 4

    def test_multi_key_join(self):
        left = table_from_arrays({"k": ["a", "a"], "j": ["1", "2"]}, {"x": [1, 2]})
        right = table_from_arrays({"k": ["a", "a"], "j": ["2", "3"]}, {"y": [5, 6]})
        out = hash_join(left, right, [("k", "k"), ("j", "j")])
        assert out.n_rows == 1
        assert out.to_dict()["x"] == [2.0]

    def test_requires_keys(self):
        t = table_from_arrays({"k": ["a"]}, {"x": [1]})
        with pytest.raises(ExecutionError):
            hash_join(t, t, [])


class TestLimitDistinctUnion:
    def test_limit(self, sales):
        assert limit(sales, 2).n_rows == 2
        with pytest.raises(ExecutionError):
            limit(sales, -1)

    def test_distinct(self):
        t = table_from_arrays({"a": ["x", "x", "y"]}, {"m": [1, 1, 1]})
        assert distinct(t).n_rows == 2

    def test_union_all(self, sales):
        out = union_all(sales, sales)
        assert out.n_rows == 10

    def test_union_all_schema_mismatch(self, sales):
        other = sales.rename({"city": "town"})
        with pytest.raises(SchemaError):
            union_all(sales, other)


class TestDistinctCount:
    def test_grouped_distinct_count(self):
        from repro.relational import grouped_distinct_count

        gid = np.array([0, 0, 0, 1, 1, 1])
        vals = np.array([1.0, 1.0, 2.0, 5.0, np.nan, 5.0])
        out = grouped_distinct_count(gid, vals, 3)
        assert out.tolist() == [2.0, 1.0, 0.0]

    def test_all_nan_group(self):
        from repro.relational import grouped_distinct_count

        out = grouped_distinct_count(np.array([0, 0]), np.array([np.nan, np.nan]), 1)
        assert out.tolist() == [0.0]

    def test_spec_validation(self):
        with pytest.raises(ExecutionError, match="DISTINCT"):
            AggregateSpec("sum", "m", "x", distinct=True)
        with pytest.raises(ExecutionError, match="DISTINCT"):
            AggregateSpec("count", None, "x", distinct=True)

    def test_group_by_with_distinct_spec(self, sales):
        out = group_by_aggregate(
            sales, ["city"], [AggregateSpec("count", "amount", "d", distinct=True)]
        )
        rows = dict(zip(out.to_dict()["city"], out.to_dict()["d"]))
        assert rows == {"paris": 2.0, "lyon": 2.0, "nice": 0.0}
