"""Unit tests for repro.relational.table."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import Schema, Table, categorical, measure, table_from_arrays


@pytest.fixture
def table() -> Table:
    return table_from_arrays(
        {"city": ["paris", "lyon", "paris", "nice"], "year": ["20", "20", "21", "21"]},
        {"sales": [10.0, 20.0, 30.0, None]},
    )


class TestConstruction:
    def test_from_rows(self):
        schema = Schema([categorical("a"), measure("m")])
        t = Table.from_rows(schema, [("x", 1.0), ("y", 2.0)])
        assert t.n_rows == 2
        assert t.to_dict() == {"a": ["x", "y"], "m": [1.0, 2.0]}

    def test_from_rows_arity_mismatch(self):
        schema = Schema([categorical("a"), measure("m")])
        with pytest.raises(SchemaError, match="arity"):
            Table.from_rows(schema, [("x",)])

    def test_empty(self):
        schema = Schema([categorical("a"), measure("m")])
        t = Table.empty(schema)
        assert t.n_rows == 0
        assert len(t) == 0

    def test_missing_column_rejected(self):
        schema = Schema([categorical("a"), measure("m")])
        with pytest.raises(SchemaError, match="do not match"):
            Table.from_columns(schema, {"a": ["x"]})

    def test_ragged_columns_rejected(self):
        schema = Schema([categorical("a"), measure("m")])
        with pytest.raises(SchemaError, match="ragged"):
            Table.from_columns(schema, {"a": ["x"], "m": [1.0, 2.0]})

    def test_kind_storage_mismatch_rejected(self, table):
        # Try to smuggle a measure column in as a categorical attribute.
        schema = Schema([measure("city")])
        with pytest.raises(SchemaError, match="kind"):
            Table(schema, {"city": table.column("city")})


class TestRowOps:
    def test_take_reorders(self, table):
        sub = table.take(np.array([3, 0]))
        assert sub.to_dict()["city"] == ["nice", "paris"]

    def test_filter_mask(self, table):
        sub = table.filter(np.array([True, False, True, False]))
        assert sub.n_rows == 2
        assert sub.to_dict()["city"] == ["paris", "paris"]

    def test_filter_wrong_length(self, table):
        with pytest.raises(SchemaError, match="mask"):
            table.filter(np.array([True]))

    def test_where_equal(self, table):
        assert table.where_equal("city", "paris").n_rows == 2
        assert table.where_equal("city", "ghost").n_rows == 0

    def test_project_order(self, table):
        p = table.project(["sales", "city"])
        assert p.schema.names == ("sales", "city")

    def test_rename(self, table):
        renamed = table.rename({"city": "ville"})
        assert "ville" in renamed.schema
        assert "city" not in renamed.schema
        assert renamed.schema["ville"].is_categorical

    def test_with_column(self, table):
        from repro.relational.columns import MeasureColumn

        extended = table.with_column(measure("extra"), MeasureColumn(np.ones(4)))
        assert extended.schema.names[-1] == "extra"
        assert extended.measure_values("extra").tolist() == [1.0] * 4

    def test_head(self, table):
        assert table.head(2).n_rows == 2
        assert table.head(100).n_rows == 4

    def test_to_rows_materializes_labels(self, table):
        rows = table.to_rows()
        assert rows[0][0] == "paris"
        assert rows[0][2] == 10.0


class TestGrouping:
    def test_single_attribute_groups(self, table):
        g = table.group_by_codes(["city"])
        assert g.n_groups == 3
        assert g.group_ids.shape == (4,)

    def test_two_attribute_groups(self, table):
        g = table.group_by_codes(["city", "year"])
        assert g.n_groups == 4  # all rows distinct on (city, year)

    def test_empty_attribute_list_one_group(self, table):
        g = table.group_by_codes([])
        assert g.n_groups == 1
        assert set(g.group_ids.tolist()) == {0}

    def test_empty_table_zero_groups(self):
        t = Table.empty(Schema([categorical("a"), measure("m")]))
        assert t.group_by_codes([]).n_groups == 0

    def test_group_keys_table(self, table):
        g = table.group_by_codes(["city"])
        keys = table.group_keys_table(["city"], g)
        assert sorted(keys.to_dict()["city"]) == ["lyon", "nice", "paris"]

    def test_group_ids_are_dense(self, table):
        g = table.group_by_codes(["city", "year"])
        assert set(g.group_ids.tolist()) == set(range(g.n_groups))

    def test_null_values_form_their_own_group(self):
        t = table_from_arrays({"a": ["x", None, None]}, {"m": [1, 2, 3]})
        g = t.group_by_codes(["a"])
        assert g.n_groups == 2


class TestMisc:
    def test_measure_values_returns_floats(self, table):
        values = table.measure_values("sales")
        assert values.dtype == np.float64
        assert np.isnan(values[3])

    def test_measure_access_on_categorical_raises(self, table):
        with pytest.raises(SchemaError):
            table.measure_values("city")

    def test_estimated_bytes_positive(self, table):
        assert table.estimated_bytes() > 0

    def test_pretty_contains_header_and_rows(self, table):
        text = table.pretty(limit=2)
        assert "city" in text and "paris" in text and "more rows" in text

    def test_equality(self, table):
        same = table_from_arrays(
            {"city": ["paris", "lyon", "paris", "nice"], "year": ["20", "20", "21", "21"]},
            {"sales": [10.0, 20.0, 30.0, None]},
        )
        assert table == same
        assert table != same.take(np.array([0, 1, 2]))


class TestGroupingOverflowSafety:
    def test_many_wide_attributes_no_overflow(self, rng):
        """Mixed-radix grouping must stay exact when the naive radix product
        would overflow int64 (8 attributes x ~1500 values each)."""
        n = 1500
        data = {f"a{i}": [str(v) for v in rng.integers(0, 1400, n)] for i in range(8)}
        t = table_from_arrays(data, {"m": list(rng.normal(0, 1, n))})
        g = t.group_by_codes(list(data))
        expected = len(set(zip(*[data[k] for k in data])))
        assert g.n_groups == expected
        keys = t.group_keys_table(list(data), g)
        assert keys.n_rows == g.n_groups

    def test_key_decode_matches_row_values(self, rng):
        n = 300
        data = {
            "a": [str(v) for v in rng.integers(0, 10, n)],
            "b": [str(v) for v in rng.integers(0, 20, n)],
            "c": [str(v) for v in rng.integers(0, 5, n)],
        }
        t = table_from_arrays(data, {"m": list(rng.normal(0, 1, n))})
        g = t.group_by_codes(["a", "b", "c"])
        keys = t.group_keys_table(["a", "b", "c"], g)
        decoded = set(map(tuple, zip(*[keys.to_dict()[k] for k in ("a", "b", "c")])))
        expected = set(zip(data["a"], data["b"], data["c"]))
        assert decoded == expected
