"""Unit + property tests for repro.relational.aggregates."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.relational.aggregates import (
    AGGREGATE_NAMES,
    GroupedSummary,
    aggregate_all,
    aggregate_grouped,
    is_aggregate,
)


class TestAggregateAll:
    def test_known_names(self):
        for name in AGGREGATE_NAMES:
            assert is_aggregate(name)
            assert is_aggregate(name.upper())
        assert not is_aggregate("median_absolute_deviation")

    def test_unknown_raises(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            aggregate_all("frobnicate", np.array([1.0]))

    def test_basic_values(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        assert aggregate_all("sum", data) == 10.0
        assert aggregate_all("avg", data) == 2.5
        assert aggregate_all("min", data) == 1.0
        assert aggregate_all("max", data) == 4.0
        assert aggregate_all("count", data) == 4.0
        assert aggregate_all("var", data) == pytest.approx(np.var(data, ddof=1))
        assert aggregate_all("stddev", data) == pytest.approx(np.std(data, ddof=1))

    def test_nan_skipped(self):
        data = np.array([1.0, np.nan, 3.0])
        assert aggregate_all("sum", data) == 4.0
        assert aggregate_all("count", data) == 2.0

    def test_empty_semantics(self):
        empty = np.array([])
        assert aggregate_all("count", empty) == 0.0
        assert np.isnan(aggregate_all("sum", empty))
        assert np.isnan(aggregate_all("avg", empty))

    def test_variance_needs_two_points(self):
        assert np.isnan(aggregate_all("var", np.array([5.0])))


class TestGroupedSummary:
    def test_matches_per_group_numpy(self, rng):
        values = rng.normal(0, 1, 300)
        gids = rng.integers(0, 7, 300)
        summary = GroupedSummary.from_values(gids, values, 7)
        for name in AGGREGATE_NAMES:
            out = summary.finalize(name)
            for g in range(7):
                expected = aggregate_all(name, values[gids == g])
                if np.isnan(expected):
                    assert np.isnan(out[g])
                else:
                    assert out[g] == pytest.approx(expected, rel=1e-9)

    def test_empty_group_yields_nan(self):
        summary = GroupedSummary.from_values(np.array([0, 0]), np.array([1.0, 2.0]), 3)
        assert np.isnan(summary.finalize("sum")[2])
        assert summary.finalize("count")[2] == 0.0

    def test_nan_values_ignored(self):
        summary = GroupedSummary.from_values(
            np.array([0, 0, 1]), np.array([1.0, np.nan, 5.0]), 2
        )
        assert summary.finalize("count").tolist() == [1.0, 1.0]
        assert summary.finalize("sum").tolist() == [1.0, 5.0]

    def test_rollup_equals_direct(self, rng):
        """Rolling a fine summary up must equal summarizing at coarse level."""
        values = rng.normal(5, 2, 500)
        fine = rng.integers(0, 12, 500)
        coarse_of_fine = np.array([g % 4 for g in range(12)])
        fine_summary = GroupedSummary.from_values(fine, values, 12)
        rolled = fine_summary.rollup(coarse_of_fine, 4)
        direct = GroupedSummary.from_values(coarse_of_fine[fine], values, 4)
        for name in AGGREGATE_NAMES:
            np.testing.assert_allclose(
                rolled.finalize(name), direct.finalize(name), rtol=1e-9, equal_nan=True
            )

    def test_rollup_empty_groups(self):
        # Fine group 0 (the only non-empty one) maps to coarse group 1, so
        # coarse group 0 must come out empty.
        summary = GroupedSummary.from_values(np.array([0]), np.array([2.0]), 2)
        rolled = summary.rollup(np.array([1, 0]), 2)
        assert rolled.finalize("count").tolist() == [0.0, 1.0]
        assert np.isnan(rolled.finalize("min")[0])
        assert rolled.finalize("sum")[1] == 2.0

    def test_variance_never_negative(self, rng):
        values = np.full(100, 3.14159)  # constant -> round-off risk
        gids = rng.integers(0, 5, 100)
        summary = GroupedSummary.from_values(gids, values, 5)
        var = summary.finalize("var")
        assert np.all(var[~np.isnan(var)] >= 0.0)

    def test_unknown_finalize_raises(self):
        summary = GroupedSummary.from_values(np.array([0]), np.array([1.0]), 1)
        with pytest.raises(QueryError):
            summary.finalize("nope")


class TestAggregateGrouped:
    def test_wrapper(self):
        out = aggregate_grouped("sum", np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0]), 2)
        assert out.tolist() == [4.0, 2.0]

    def test_unknown_name(self):
        with pytest.raises(QueryError):
            aggregate_grouped("bogus", np.array([0]), np.array([1.0]), 1)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60),
        st.integers(1, 5),
    )
    def test_sum_partition_property(self, values, n_groups):
        """Group sums must add up to the total sum (additivity)."""
        values = np.asarray(values)
        gids = np.arange(len(values)) % n_groups
        out = aggregate_grouped("sum", gids, values, n_groups)
        total = np.nansum(out)
        assert total == pytest.approx(values.sum(), rel=1e-9, abs=1e-6)
