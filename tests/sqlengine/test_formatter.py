"""Unit + round-trip tests for repro.sqlengine.formatter."""

import pytest

from repro.sqlengine import format_expression, format_sql, format_statement, parse_sql


def roundtrip(sql: str) -> str:
    return format_sql(parse_sql(sql))


class TestExpressionFormatting:
    def test_literals(self):
        assert format_expression(parse_sql("select 1 from t").items[0].expression) == "1"
        assert format_expression(parse_sql("select 1.5 from t").items[0].expression) == "1.5"
        assert (
            format_expression(parse_sql("select 'it''s' from t").items[0].expression)
            == "'it''s'"
        )
        assert format_expression(parse_sql("select null from t").items[0].expression) == "null"

    def test_precedence_parens_minimal(self):
        expr = parse_sql("select (a + b) * c from t").items[0].expression
        assert format_expression(expr) == "(a + b) * c"
        expr = parse_sql("select a + b * c from t").items[0].expression
        assert format_expression(expr) == "a + b * c"

    def test_boolean_formatting(self):
        expr = parse_sql("select 1 from t where (a = 1 or b = 2) and c = 3").where
        assert format_expression(expr) == "(a = 1 or b = 2) and c = 3"

    def test_function_and_star(self):
        expr = parse_sql("select count(*) from t").items[0].expression
        assert format_expression(expr) == "count(*)"
        expr = parse_sql("select sum(a + 1) from t").items[0].expression
        assert format_expression(expr) == "sum(a + 1)"

    def test_in_between_isnull(self):
        where = parse_sql("select 1 from t where a in ('x','y')").where
        assert format_expression(where) == "a in ('x', 'y')"
        where = parse_sql("select 1 from t where a between 1 and 2").where
        assert format_expression(where) == "a between 1 and 2"
        where = parse_sql("select 1 from t where a is not null").where
        assert format_expression(where) == "a is not null"


class TestStatementFormatting:
    def test_contains_all_clauses(self):
        sql = (
            "select a, sum(m) as s from t where b = 'x' group by a "
            "having sum(m) > 3 order by s desc limit 5"
        )
        text = format_statement(parse_sql(sql))
        for fragment in ("select", "from t", "where", "group by", "having", "order by", "limit 5"):
            assert fragment in text

    def test_cte_rendering(self):
        sql = "with c as (select a from t) select a from c"
        text = format_statement(parse_sql(sql))
        assert text.startswith("with c as (")

    def test_join_rendering(self):
        sql = "select a from t1 join t2 on t1.k = t2.k"
        assert "join t2 on t1.k = t2.k" in format_statement(parse_sql(sql))


FIXED_POINT_QUERIES = [
    "select a from t;",
    "select distinct a, b from t where a = 'x' or b > 3;",
    "select a, sum(m) as s from t group by a having sum(m) > 1 order by s desc limit 3;",
    "select t1.a, t2.b from t1, t2 where t1.k = t2.k;",
    "with c as (select a from t) select a from c;",
    "select count(*) from t where a in ('x', 'y') and m between 1 and 2;",
    "select a from (select a from t where b is null) s order by a;",
]


@pytest.mark.parametrize("sql", FIXED_POINT_QUERIES)
def test_format_parse_fixed_point(sql):
    """format(parse(x)) must be a fixed point of parse-format."""
    once = roundtrip(sql)
    twice = format_sql(parse_sql(once))
    assert once == twice


@pytest.mark.parametrize("sql", FIXED_POINT_QUERIES)
def test_roundtrip_preserves_ast(sql):
    assert parse_sql(roundtrip(sql)) == parse_sql(sql)
