"""Robustness / failure-injection tests for the SQL engine.

Property: whatever garbage comes in, the engine fails with the library's
typed errors (SQLSyntaxError / PlanningError / ExecutionError), never with
a bare TypeError/IndexError/RecursionError leaking from internals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError, ReproError, SQLSyntaxError
from repro.relational import table_from_arrays
from repro.sqlengine import Catalog, execute_sql, parse_sql


@pytest.fixture(scope="module")
def catalog():
    return Catalog(
        {"t": table_from_arrays({"a": ["x", "y"], "b": ["p", "q"]}, {"m": [1.0, 2.0]})}
    )


# A vocabulary biased toward SQL fragments to reach deep parser states.
_WORDS = st.sampled_from(
    [
        "select", "from", "where", "group", "by", "having", "order", "limit",
        "and", "or", "not", "in", "is", "null", "join", "on", "as", "with",
        "t", "a", "b", "m", "sum", "avg", "count", "(", ")", ",", "*", "=",
        "<", ">", "<=", ">=", "<>", "+", "-", "/", "'x'", "1", "2.5", ";",
        ".", "t1", "distinct", "between", "desc", "asc",
    ]
)


@settings(max_examples=300, deadline=None)
@given(st.lists(_WORDS, min_size=1, max_size=25))
def test_parser_only_raises_typed_errors(tokens):
    sql = " ".join(tokens)
    try:
        parse_sql(sql)
    except SQLSyntaxError:
        pass  # the contract


@settings(max_examples=200, deadline=None)
@given(st.lists(_WORDS, min_size=1, max_size=20))
def test_executor_only_raises_typed_errors(catalog, tokens):
    sql = " ".join(tokens)
    try:
        execute_sql(sql, catalog)
    except ReproError:
        pass  # SQLSyntaxError, PlanningError, ExecutionError are all fine


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=80))
def test_lexer_arbitrary_text(text):
    try:
        parse_sql(text)
    except ReproError:
        pass


class TestSpecificFailures:
    def test_deeply_nested_parens(self, catalog):
        sql = "select " + "(" * 50 + "1" + ")" * 50 + " as x from t"
        out = execute_sql(sql, catalog)
        assert out.to_dict()["x"] == [1.0, 1.0]

    def test_empty_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("")

    def test_statement_is_just_semicolon(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql(";")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(QueryError):
            execute_sql("select a from t where sum(m) > 1", catalog)

    def test_nested_aggregate_rejected(self, catalog):
        with pytest.raises(QueryError):
            execute_sql("select sum(avg(m)) from t", catalog)

    def test_group_by_unknown_column(self, catalog):
        with pytest.raises(QueryError):
            execute_sql("select ghost, sum(m) from t group by ghost", catalog)

    def test_order_by_position_out_of_range(self, catalog):
        with pytest.raises(QueryError):
            execute_sql("select a from t order by 5", catalog)
