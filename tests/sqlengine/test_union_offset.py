"""Tests for UNION [ALL] and LIMIT/OFFSET in the SQL engine."""

import pytest

from repro.errors import PlanningError, SQLSyntaxError
from repro.relational import table_from_arrays
from repro.sqlengine import SQLEngine, UnionStatement, format_sql, parse_sql


@pytest.fixture
def engine():
    eng = SQLEngine()
    eng.register(
        "t",
        table_from_arrays({"a": ["x", "y", "z", "x"]}, {"m": [1.0, 2.0, 3.0, 4.0]}),
    )
    eng.register("u", table_from_arrays({"b": ["x", "w"]}, {"k": [1.0, 9.0]}))
    return eng


class TestUnionParsing:
    def test_union_all_ast(self):
        stmt = parse_sql("select a from t union all select b from u")
        assert isinstance(stmt, UnionStatement)
        assert stmt.all and len(stmt.selects) == 2

    def test_union_dedup_ast(self):
        stmt = parse_sql("select a from t union select b from u")
        assert isinstance(stmt, UnionStatement) and not stmt.all

    def test_chain_of_three(self):
        stmt = parse_sql("select 1 union all select 2 union all select 3")
        assert len(stmt.selects) == 3

    def test_mixed_flavors_rejected(self):
        with pytest.raises(SQLSyntaxError, match="mixing"):
            parse_sql("select 1 union select 2 union all select 3")

    def test_with_clause_attaches_to_union(self):
        stmt = parse_sql("with c as (select a from t) select a from c union select b from u")
        assert isinstance(stmt, UnionStatement)
        assert stmt.ctes and stmt.ctes[0].name == "c"


class TestUnionExecution:
    def test_union_all_concatenates(self, engine):
        out = engine.execute("select a, m from t union all select b, k from u")
        assert out.n_rows == 6
        assert out.schema.names == ("a", "m")  # first branch names win

    def test_union_deduplicates(self, engine):
        out = engine.execute("select a from t union select a from t")
        assert out.n_rows == 3  # x, y, z

    def test_union_across_tables(self, engine):
        out = engine.execute("select a from t union select b from u")
        assert sorted(out.to_dict()["a"]) == ["w", "x", "y", "z"]

    def test_arity_mismatch_rejected(self, engine):
        with pytest.raises(PlanningError, match="arities"):
            engine.execute("select a, m from t union select b from u")

    def test_kind_mismatch_rejected(self, engine):
        with pytest.raises(PlanningError, match="kinds"):
            engine.execute("select a from t union select k from u")

    def test_cte_visible_in_all_branches(self, engine):
        out = engine.execute(
            "with c as (select a from t where a = 'x') "
            "select a from c union all select a from c"
        )
        assert out.n_rows == 4


class TestOffset:
    def test_offset_skips_rows(self, engine):
        out = engine.execute("select m from t order by m offset 2")
        assert out.to_dict()["m"] == [3.0, 4.0]

    def test_limit_with_offset(self, engine):
        out = engine.execute("select m from t order by m limit 2 offset 1")
        assert out.to_dict()["m"] == [2.0, 3.0]

    def test_offset_beyond_end(self, engine):
        out = engine.execute("select m from t offset 100")
        assert out.n_rows == 0


class TestFormatting:
    def test_union_round_trip(self):
        sql = "select a from t union all select b from u;"
        once = format_sql(parse_sql(sql))
        assert format_sql(parse_sql(once)) == once
        assert "union all" in once

    def test_offset_round_trip(self):
        sql = "select a from t limit 5 offset 3;"
        once = format_sql(parse_sql(sql))
        assert "offset 3" in once
        assert format_sql(parse_sql(once)) == once
