"""Unit tests for repro.sqlengine.parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlengine import parse_sql
from repro.sqlengine.ast_nodes import (
    JoinClause,
    SqlBetween,
    SqlBinary,
    SqlFunction,
    SqlIn,
    SqlIsNull,
    SqlLiteral,
    SqlName,
    SqlStar,
    SqlUnary,
    SubqueryRef,
    TableRef,
)


class TestSelectList:
    def test_star(self):
        stmt = parse_sql("select * from t")
        assert isinstance(stmt.items[0].expression, SqlStar)

    def test_qualified_star(self):
        stmt = parse_sql("select t1.* from t t1")
        star = stmt.items[0].expression
        assert isinstance(star, SqlStar) and star.qualifier == "t1"

    def test_alias_with_and_without_as(self):
        stmt = parse_sql("select a as x, b y from t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_qualified_name(self):
        stmt = parse_sql("select t1.col from t t1")
        name = stmt.items[0].expression
        assert isinstance(name, SqlName)
        assert name.qualifier == "t1" and name.column == "col"

    def test_function_calls(self):
        stmt = parse_sql("select sum(m), count(*), avg(a + b) from t")
        sum_call = stmt.items[0].expression
        assert isinstance(sum_call, SqlFunction) and sum_call.name == "sum"
        count = stmt.items[1].expression
        assert count.star
        avg = stmt.items[2].expression
        assert isinstance(avg.arguments[0], SqlBinary)

    def test_string_literal_item(self):
        stmt = parse_sql("select 'mean greater' as hypothesis from t")
        lit = stmt.items[0].expression
        assert isinstance(lit, SqlLiteral) and lit.value == "mean greater"

    def test_distinct_flag(self):
        assert parse_sql("select distinct a from t").distinct
        assert not parse_sql("select a from t").distinct


class TestFromClause:
    def test_table_with_alias(self):
        stmt = parse_sql("select a from covid c")
        ref = stmt.from_items[0]
        assert isinstance(ref, TableRef)
        assert ref.name == "covid" and ref.effective_alias == "c"

    def test_comma_list(self):
        stmt = parse_sql("select a from t1, t2, t3")
        assert len(stmt.from_items) == 3

    def test_subquery_requires_alias(self):
        with pytest.raises(SQLSyntaxError, match="alias"):
            parse_sql("select a from (select b from t)")

    def test_subquery_with_alias(self):
        stmt = parse_sql("select a from (select b from t) s")
        sub = stmt.from_items[0]
        assert isinstance(sub, SubqueryRef) and sub.alias == "s"

    def test_explicit_join(self):
        stmt = parse_sql("select a from t1 join t2 on t1.k = t2.k")
        join = stmt.from_items[0]
        assert isinstance(join, JoinClause)
        assert isinstance(join.condition, SqlBinary)

    def test_inner_join_keyword(self):
        stmt = parse_sql("select a from t1 inner join t2 on t1.k = t2.k")
        assert isinstance(stmt.from_items[0], JoinClause)

    def test_chained_joins(self):
        stmt = parse_sql("select a from t1 join t2 on x = y join t3 on y = z")
        outer = stmt.from_items[0]
        assert isinstance(outer, JoinClause) and isinstance(outer.left, JoinClause)


class TestClauses:
    def test_where_precedence(self):
        stmt = parse_sql("select a from t where x = 1 or y = 2 and z = 3")
        where = stmt.where
        assert where.op == "or"  # AND binds tighter
        assert where.right.op == "and"

    def test_not(self):
        stmt = parse_sql("select a from t where not x = 1")
        assert isinstance(stmt.where, SqlUnary) and stmt.where.op == "not"

    def test_in_and_not_in(self):
        stmt = parse_sql("select a from t where x in ('p', 'q') and y not in (1)")
        left = stmt.where.left
        assert isinstance(left, SqlIn) and not left.negated
        right = stmt.where.right
        assert isinstance(right, SqlIn) and right.negated

    def test_is_null(self):
        stmt = parse_sql("select a from t where x is null and y is not null")
        assert isinstance(stmt.where.left, SqlIsNull) and not stmt.where.left.negated
        assert stmt.where.right.negated

    def test_between(self):
        stmt = parse_sql("select a from t where x between 1 and 5")
        assert isinstance(stmt.where, SqlBetween)

    def test_group_by_and_having(self):
        stmt = parse_sql("select a, sum(m) from t group by a having sum(m) > 10")
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, SqlBinary)

    def test_order_by_directions(self):
        stmt = parse_sql("select a from t order by a desc, b asc, c")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit(self):
        assert parse_sql("select a from t limit 7").limit == 7

    def test_semicolon_optional(self):
        assert parse_sql("select a from t;").items
        assert parse_sql("select a from t").items


class TestCTE:
    def test_single_cte(self):
        stmt = parse_sql("with c as (select a from t) select a from c")
        assert len(stmt.ctes) == 1
        assert stmt.ctes[0].name == "c"

    def test_multiple_ctes(self):
        stmt = parse_sql(
            "with c1 as (select a from t), c2 as (select a from c1) select a from c2"
        )
        assert [c.name for c in stmt.ctes] == ["c1", "c2"]


class TestArithmeticParsing:
    def test_precedence(self):
        stmt = parse_sql("select 1 + 2 * 3 from t")
        expr = stmt.items[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parens_override(self):
        stmt = parse_sql("select (1 + 2) * 3 from t")
        assert stmt.items[0].expression.op == "*"

    def test_unary_minus(self):
        stmt = parse_sql("select -x from t")
        assert isinstance(stmt.items[0].expression, SqlUnary)

    def test_unary_plus_absorbed(self):
        stmt = parse_sql("select +x from t")
        assert isinstance(stmt.items[0].expression, SqlName)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            parse_sql("select a from t where x = 1 2")

    def test_missing_from_item(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("select a from")

    def test_bad_not(self):
        with pytest.raises(SQLSyntaxError, match="IN or BETWEEN"):
            parse_sql("select a from t where x not 5")

    def test_error_position_reported(self):
        with pytest.raises(SQLSyntaxError) as err:
            parse_sql("select a\nfrom t where")
        assert err.value.line == 2
