"""Unit/integration tests for repro.sqlengine.executor."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.relational import table_from_arrays
from repro.sqlengine import Catalog, SQLEngine, execute_sql


@pytest.fixture
def engine():
    covid = table_from_arrays(
        {
            "month": ["4", "4", "4", "5", "5", "5"],
            "continent": ["EU", "AS", "EU", "EU", "AS", "AS"],
        },
        {"cases": [10.0, 20.0, 30.0, 50.0, 60.0, None]},
    )
    people = table_from_arrays(
        {"continent": ["EU", "AS", "OC"]}, {"population": [700.0, 4000.0, 40.0]}
    )
    eng = SQLEngine()
    eng.register("covid", covid)
    eng.register("people", people)
    return eng


class TestBasicSelect:
    def test_star(self, engine):
        out = engine.execute("select * from covid")
        assert out.schema.names == ("month", "continent", "cases")
        assert out.n_rows == 6

    def test_projection_and_alias(self, engine):
        out = engine.execute("select month as m, cases from covid limit 2")
        assert out.schema.names == ("m", "cases")
        assert out.n_rows == 2

    def test_where_equality(self, engine):
        out = engine.execute("select cases from covid where month = '4'")
        assert out.n_rows == 3

    def test_where_numeric(self, engine):
        out = engine.execute("select cases from covid where cases >= 30")
        assert out.n_rows == 3

    def test_where_or_and_not(self, engine):
        out = engine.execute(
            "select * from covid where month = '4' or continent = 'AS'"
        )
        assert out.n_rows == 5

    def test_in_predicate(self, engine):
        out = engine.execute("select * from covid where continent in ('EU')")
        assert out.n_rows == 3

    def test_is_null(self, engine):
        out = engine.execute("select * from covid where cases is null")
        assert out.n_rows == 1

    def test_between(self, engine):
        out = engine.execute("select * from covid where cases between 20 and 50")
        assert out.n_rows == 3

    def test_arithmetic_projection(self, engine):
        out = engine.execute("select cases * 2 as dbl from covid where month = '4'")
        assert sorted(out.to_dict()["dbl"]) == [20.0, 40.0, 60.0]

    def test_distinct(self, engine):
        out = engine.execute("select distinct continent from covid")
        assert out.n_rows == 2

    def test_unknown_table(self, engine):
        with pytest.raises(PlanningError, match="unknown table"):
            engine.execute("select * from ghost")

    def test_unknown_column(self, engine):
        with pytest.raises(PlanningError, match="unknown column"):
            engine.execute("select ghost from covid")

    def test_case_insensitive_table_lookup(self, engine):
        assert engine.execute("select * from COVID").n_rows == 6


class TestAggregation:
    def test_group_by(self, engine):
        out = engine.execute(
            "select continent, sum(cases) as total from covid group by continent"
        )
        totals = dict(zip(out.to_dict()["continent"], out.to_dict()["total"]))
        assert totals == {"EU": 90.0, "AS": 80.0}

    def test_count_star_vs_column(self, engine):
        out = engine.execute(
            "select continent, count(*) as n, count(cases) as k "
            "from covid group by continent"
        )
        rows = {c: (n, k) for c, n, k in zip(*out.to_dict().values())}
        assert rows["AS"] == (3.0, 2.0)  # NULL cases not counted by count(col)

    def test_global_aggregate_without_group_by(self, engine):
        out = engine.execute("select avg(cases) as a from covid")
        assert out.n_rows == 1
        assert out.to_dict()["a"][0] == pytest.approx(34.0)

    def test_having_filters_groups(self, engine):
        out = engine.execute(
            "select continent from covid group by continent having sum(cases) > 85"
        )
        assert out.to_dict()["continent"] == ["EU"]

    def test_having_without_group_by(self, engine):
        one = engine.execute("select 'yes' as flag from covid having avg(cases) > 10")
        assert one.n_rows == 1 and one.to_dict()["flag"] == ["yes"]
        zero = engine.execute("select 'yes' as flag from covid having avg(cases) > 1000")
        assert zero.n_rows == 0

    def test_aggregate_of_expression(self, engine):
        out = engine.execute("select sum(cases * 2) as s from covid")
        assert out.to_dict()["s"][0] == 340.0

    def test_var_and_stddev(self, engine):
        out = engine.execute("select var(cases) as v, stddev(cases) as s from covid")
        values = np.array([10.0, 20.0, 30.0, 50.0, 60.0])
        assert out.to_dict()["v"][0] == pytest.approx(np.var(values, ddof=1))
        assert out.to_dict()["s"][0] == pytest.approx(np.std(values, ddof=1))

    def test_star_with_group_by_rejected(self, engine):
        with pytest.raises(PlanningError, match="not allowed"):
            engine.execute("select * from covid group by continent")

    def test_non_grouped_column_rejected(self, engine):
        with pytest.raises(PlanningError):
            engine.execute("select month, sum(cases) from covid group by continent")


class TestJoins:
    def test_comma_join_with_where(self, engine):
        out = engine.execute(
            "select c.continent, population from covid c, people p "
            "where c.continent = p.continent and c.month = '5'"
        )
        assert out.n_rows == 3
        assert set(out.to_dict()["population"]) == {700.0, 4000.0}

    def test_explicit_join(self, engine):
        out = engine.execute(
            "select c.cases, p.population from covid c "
            "join people p on c.continent = p.continent"
        )
        assert out.n_rows == 6

    def test_join_is_inner(self, engine):
        out = engine.execute(
            "select distinct p.continent from people p join covid c "
            "on p.continent = c.continent"
        )
        assert sorted(out.to_dict()["continent"]) == ["AS", "EU"]  # OC dropped

    def test_derived_tables_joined(self, engine):
        out = engine.execute(
            """
            select t1.continent, April, May
            from
              (select continent, sum(cases) as April from covid
               where month = '4' group by continent) t1,
              (select continent, sum(cases) as May from covid
               where month = '5' group by continent) t2
            where t1.continent = t2.continent
            order by t1.continent
            """
        )
        assert out.to_dict() == {
            "continent": ["AS", "EU"],
            "April": [20.0, 40.0],
            "May": [60.0, 50.0],
        }

    def test_duplicate_alias_rejected(self, engine):
        with pytest.raises(PlanningError, match="duplicate table alias"):
            engine.execute("select 1 from covid c, people c")

    def test_ambiguous_column_rejected(self, engine):
        with pytest.raises(PlanningError, match="ambiguous"):
            engine.execute("select continent from covid, people")


class TestOrderLimitCte:
    def test_order_by_measure_desc(self, engine):
        out = engine.execute("select cases from covid order by cases desc")
        values = out.to_dict()["cases"]
        assert values[:5] == [60.0, 50.0, 30.0, 20.0, 10.0]
        assert np.isnan(values[5])  # NULL last

    def test_order_by_position(self, engine):
        out = engine.execute("select continent, cases from covid order by 2 desc limit 1")
        assert out.to_dict()["continent"] == ["AS"]

    def test_order_by_alias(self, engine):
        out = engine.execute(
            "select continent, sum(cases) as total from covid "
            "group by continent order by total desc"
        )
        assert out.to_dict()["continent"] == ["EU", "AS"]

    def test_order_by_aggregate_expression(self, engine):
        out = engine.execute(
            "select continent from covid group by continent order by sum(cases)"
        )
        assert out.to_dict()["continent"] == ["AS", "EU"]

    def test_cte(self, engine):
        out = engine.execute(
            "with totals as (select continent, sum(cases) as t from covid "
            "group by continent) select * from totals order by t desc"
        )
        assert out.to_dict()["continent"] == ["EU", "AS"]

    def test_cte_chained(self, engine):
        out = engine.execute(
            "with a as (select cases from covid where month = '4'), "
            "b as (select cases from a where cases > 15) "
            "select count(*) as n from b"
        )
        assert out.to_dict()["n"] == [2.0]

    def test_from_less_select(self, engine):
        out = engine.execute("select 1 + 1 as two")
        assert out.to_dict()["two"] == [2.0]

    def test_string_literal_select(self, engine):
        out = engine.execute("select 'hello' as greeting from people")
        assert out.to_dict()["greeting"] == ["hello"] * 3


class TestCatalog:
    def test_register_and_names(self):
        catalog = Catalog()
        catalog.register("t", table_from_arrays({"a": ["x"]}, {"m": [1]}))
        assert catalog.names() == ("t",)
        assert catalog.resolve("T").n_rows == 1

    def test_execute_sql_function(self):
        catalog = Catalog({"t": table_from_arrays({"a": ["x", "y"]}, {"m": [1, 2]})})
        assert execute_sql("select sum(m) as s from t", catalog).to_dict()["s"] == [3.0]
