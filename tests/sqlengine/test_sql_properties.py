"""Property-based cross-validation: SQL engine vs direct operators.

For randomly generated group-by/filter/sort queries, executing the SQL
text must agree with composing the physical operators directly.  This is
the contract the whole reproduction rests on: the emitted SQL means what
the fast evaluation paths compute.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    AggregateSpec,
    group_by_aggregate,
    sort,
    table_from_arrays,
)
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.operators import select as op_select
from repro.sqlengine import Catalog, execute_sql

CATS_A = ["a0", "a1", "a2"]
CATS_B = ["b0", "b1", "b2", "b3"]
AGGS = ["sum", "avg", "min", "max", "count", "var"]


@st.composite
def tables(draw):
    n = draw(st.integers(5, 60))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    a = rng.choice(CATS_A, n)
    b = rng.choice(CATS_B, n)
    m = rng.normal(0, 10, n)
    nulls = rng.random(n) < 0.1
    m[nulls] = np.nan
    return table_from_arrays({"a": a, "b": b}, {"m": m})


@settings(max_examples=40, deadline=None)
@given(tables(), st.sampled_from(AGGS), st.sampled_from(CATS_B))
def test_filtered_group_by_matches_operators(table, agg, b_value):
    catalog = Catalog({"t": table})
    sql = (
        f"select a, {agg}(m) as out from t where b = '{b_value}' "
        f"group by a order by a"
    )
    via_sql = execute_sql(sql, catalog)

    filtered = op_select(table, Comparison("=", ColumnRef("b"), Literal(b_value)))
    direct = group_by_aggregate(filtered, ["a"], [AggregateSpec(agg, "m", "out")])
    direct = sort(direct, ["a"])

    assert via_sql.to_dict()["a"] == direct.to_dict()["a"]
    np.testing.assert_allclose(
        via_sql.measure_values("out"), direct.measure_values("out"), rtol=1e-9, equal_nan=True
    )


@settings(max_examples=30, deadline=None)
@given(tables(), st.floats(-15, 15))
def test_where_threshold_matches_numpy(table, threshold):
    catalog = Catalog({"t": table})
    out = execute_sql(f"select m from t where m > {threshold}", catalog)
    expected = table.measure_values("m")
    expected = expected[~np.isnan(expected)]
    expected = expected[expected > threshold]
    np.testing.assert_allclose(np.sort(out.measure_values("m")), np.sort(expected))


@settings(max_examples=30, deadline=None)
@given(tables())
def test_two_column_group_by_partitions_rows(table):
    """count(*) per (a, b) group must sum to the table's row count."""
    catalog = Catalog({"t": table})
    out = execute_sql("select a, b, count(*) as n from t group by a, b", catalog)
    assert out.measure_values("n").sum() == table.n_rows


@settings(max_examples=30, deadline=None)
@given(tables())
def test_order_by_produces_sorted_output(table):
    catalog = Catalog({"t": table})
    out = execute_sql("select m from t order by m", catalog)
    values = out.measure_values("m")
    finite = values[~np.isnan(values)]
    assert np.all(np.diff(finite) >= 0)
    # NULLs, if any, are at the end.
    if np.isnan(values).any():
        first_nan = int(np.argmax(np.isnan(values)))
        assert np.isnan(values[first_nan:]).all()


@settings(max_examples=25, deadline=None)
@given(tables())
def test_self_join_on_group_key_is_square_free(table):
    """Joining two per-'a' aggregates on 'a' yields one row per common value."""
    catalog = Catalog({"t": table})
    out = execute_sql(
        "select t1.a, s1, s2 from "
        "(select a, sum(m) as s1 from t group by a) t1, "
        "(select a, sum(m) as s2 from t group by a) t2 "
        "where t1.a = t2.a",
        catalog,
    )
    assert out.n_rows == table.group_by_codes(["a"]).n_groups
    np.testing.assert_allclose(
        out.measure_values("s1"), out.measure_values("s2"), equal_nan=True
    )
