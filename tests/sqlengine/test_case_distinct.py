"""Tests for CASE WHEN and COUNT(DISTINCT) support."""

import numpy as np
import pytest

from repro.errors import SQLSyntaxError
from repro.relational import table_from_arrays
from repro.sqlengine import SQLEngine, format_sql, parse_sql


@pytest.fixture
def engine():
    eng = SQLEngine()
    eng.register(
        "t",
        table_from_arrays(
            {"cat": ["a", "a", "b", "b", "b", None]},
            {"m": [1.0, 1.0, 2.0, 3.0, None, 7.0]},
        ),
    )
    return eng


class TestCase:
    def test_numeric_case(self, engine):
        out = engine.execute(
            "select case when m > 2 then 100 when m > 1 then 10 else 0 end as tier from t"
        )
        values = out.to_dict()["tier"]
        assert values[:4] == [0.0, 0.0, 10.0, 100.0]
        assert values[4] == 0.0  # NULL m: both comparisons are false -> ELSE
        assert values[5] == 100.0

    def test_first_branch_wins(self, engine):
        out = engine.execute(
            "select case when m > 0 then 1 when m > 2 then 2 end as x from t where m = 3"
        )
        assert out.to_dict()["x"] == [1.0]

    def test_missing_else_gives_null(self, engine):
        out = engine.execute("select case when m > 100 then 1 end as x from t where m = 1")
        assert all(np.isnan(v) for v in out.to_dict()["x"])

    def test_string_case(self, engine):
        out = engine.execute(
            "select case when cat = 'a' then 'small' else 'large' end as label "
            "from t where m is not null order by m"
        )
        assert out.to_dict()["label"] == ["small", "small", "large", "large", "large"]

    def test_case_in_where(self, engine):
        out = engine.execute(
            "select m from t where case when cat = 'a' then 1 else 0 end = 1"
        )
        assert out.n_rows == 2

    def test_aggregate_of_case(self, engine):
        # Conditional aggregation: sum of m only where cat='b'.
        out = engine.execute(
            "select sum(case when cat = 'b' then m else 0 end) as s from t"
        )
        assert out.to_dict()["s"] == [5.0]

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError, match="WHEN"):
            parse_sql("select case else 1 end from t")

    def test_case_round_trip(self):
        sql = "select case when a = 1 then 2 else 3 end as x from t;"
        once = format_sql(parse_sql(sql))
        assert format_sql(parse_sql(once)) == once


class TestCountDistinct:
    def test_distinct_measure(self, engine):
        out = engine.execute("select count(distinct m) as d, count(m) as c from t")
        assert out.to_dict()["d"] == [4.0]  # 1, 2, 3, 7
        assert out.to_dict()["c"] == [5.0]

    def test_distinct_categorical(self, engine):
        out = engine.execute("select count(distinct cat) as d from t")
        assert out.to_dict()["d"] == [2.0]  # NULL excluded

    def test_distinct_grouped(self, engine):
        out = engine.execute(
            "select cat, count(distinct m) as d from t group by cat order by cat"
        )
        rows = dict(zip(out.to_dict()["cat"], out.to_dict()["d"]))
        assert rows["a"] == 1.0 and rows["b"] == 2.0

    def test_distinct_only_for_count(self):
        with pytest.raises(SQLSyntaxError, match="only supported for count"):
            parse_sql("select sum(distinct m) from t")

    def test_distinct_round_trip(self):
        sql = "select count(distinct m) from t;"
        once = format_sql(parse_sql(sql))
        assert "count(distinct m)" in once
        assert format_sql(parse_sql(once)) == once
