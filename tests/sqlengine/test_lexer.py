"""Unit tests for repro.sqlengine.lexer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlengine import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]  # drop END


class TestBasics:
    def test_keywords_fold_case(self):
        assert kinds("SELECT FROM Where") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.KEYWORD, "from"),
            (TokenType.KEYWORD, "where"),
        ]

    def test_identifiers_preserve_case(self):
        assert kinds("April") == [(TokenType.IDENTIFIER, "April")]

    def test_numbers(self):
        assert kinds("42 3.14 .5 1e5 2.5E-3") == [
            (TokenType.NUMBER, "42"),
            (TokenType.NUMBER, "3.14"),
            (TokenType.NUMBER, ".5"),
            (TokenType.NUMBER, "1e5"),
            (TokenType.NUMBER, "2.5E-3"),
        ]

    def test_operators(self):
        assert [v for _, v in kinds("<= >= <> = < > + - * /")] == [
            "<=", ">=", "<>", "=", "<", ">", "+", "-", "*", "/",
        ]

    def test_bang_equals_normalized(self):
        assert kinds("a != b")[1] == (TokenType.OPERATOR, "<>")

    def test_punctuation(self):
        assert [v for _, v in kinds("( ) , ; .")] == ["(", ")", ",", ";", "."]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END


class TestStrings:
    def test_simple_string(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_quoted_identifier(self):
        assert kinds('"weird name"') == [(TokenType.IDENTIFIER, "weird name")]

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError, match="unterminated"):
            tokenize('"oops')


class TestCommentsAndPositions:
    def test_line_comments_skipped(self):
        assert kinds("select -- comment here\n 1") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.NUMBER, "1"),
        ]

    def test_positions_track_lines(self):
        tokens = tokenize("select\n  x")
        x = tokens[1]
        assert (x.line, x.column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as err:
            tokenize("select @")
        assert err.value.line == 1
        assert err.value.column == 8

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize("select #tag")


class TestTokenHelpers:
    def test_matches(self):
        token = Token(TokenType.KEYWORD, "select", 1, 1)
        assert token.matches(TokenType.KEYWORD)
        assert token.matches(TokenType.KEYWORD, "select")
        assert not token.matches(TokenType.KEYWORD, "from")
        assert not token.matches(TokenType.IDENTIFIER)
