"""Tests for the notebook package: cells, narrative, ipynb, sql script, build."""

import json

import pytest

from repro.datasets import covid_table
from repro.errors import NotebookError
from repro.generation import NotebookGenerator
from repro.notebook import (
    MarkdownCell,
    Notebook,
    SQLCell,
    build_notebook,
    insight_bullet,
    notebook_header,
    query_narrative,
    to_ipynb_dict,
    to_ipynb_json,
    to_sql_script,
    write_ipynb,
    write_sql_script,
)
from repro.sqlengine import parse_sql


@pytest.fixture(scope="module")
def covid():
    return covid_table(400)


@pytest.fixture(scope="module")
def run(covid):
    return NotebookGenerator().generate(covid, budget=4)


@pytest.fixture(scope="module")
def notebook(covid, run):
    return build_notebook(run.selected, table=covid, table_name="covid", title="T")


class TestCellModel:
    def test_add_and_count(self):
        nb = Notebook("t")
        nb.add_markdown("# hi")
        nb.add_sql("select 1;")
        nb.add_sql("select 2;", "preview")
        assert nb.n_queries == 2
        assert len(nb.cells) == 3

    def test_empty_rejected(self):
        with pytest.raises(NotebookError):
            Notebook("t").require_nonempty()

    def test_extend(self):
        nb = Notebook("t")
        nb.extend([MarkdownCell("a"), SQLCell("select 1;")])
        assert len(nb.cells) == 2


class TestNarrative:
    def test_header_mentions_dataset(self):
        text = notebook_header("Title", "enedis", 10)
        assert "enedis" in text and "10" in text

    def test_query_narrative_contents(self, run):
        generated = run.selected[0]
        text = query_narrative(1, generated)
        assert "Query 1" in text
        assert generated.query.group_by in text
        assert "Interestingness" in text

    def test_insight_bullets_sorted_by_significance(self, run):
        generated = max(run.selected, key=lambda g: len(g.supported))
        text = query_narrative(1, generated)
        for evidence in generated.supported:
            assert insight_bullet(evidence) in text


class TestBuild:
    def test_structure_alternates(self, notebook, run):
        assert notebook.n_queries == len(run.selected)
        # header + (markdown, sql, chart-markdown) per query
        assert len(notebook.cells) == 1 + 3 * len(run.selected)
        assert isinstance(notebook.cells[0], MarkdownCell)

    def test_charts_embedded_as_vega_lite_blocks(self, notebook, run):
        blocks = [c.text for c in notebook.cells
                  if isinstance(c, MarkdownCell) and c.text.startswith("```vega-lite")]
        assert len(blocks) == len(run.selected)
        import json
        for block in blocks:
            spec = json.loads(block.removeprefix("```vega-lite\n").removesuffix("\n```"))
            assert spec["mark"] == "bar"
            assert spec["data"]["values"]

    def test_charts_can_be_disabled(self, covid, run):
        nb = build_notebook(run.selected, table=covid, include_charts=False)
        assert len(nb.cells) == 1 + 2 * len(run.selected)

    def test_all_sql_cells_parse(self, notebook):
        for cell in notebook.cells:
            if isinstance(cell, SQLCell):
                parse_sql(cell.sql)

    def test_previews_attached(self, notebook):
        sql_cells = [c for c in notebook.cells if isinstance(c, SQLCell)]
        assert all(c.result_preview for c in sql_cells)

    def test_no_previews_without_table(self, run):
        nb = build_notebook(run.selected, table=None)
        sql_cells = [c for c in nb.cells if isinstance(c, SQLCell)]
        assert all(c.result_preview is None for c in sql_cells)

    def test_empty_selection_rejected(self):
        with pytest.raises(NotebookError):
            build_notebook([])


class TestIpynb:
    def test_valid_nbformat_structure(self, notebook):
        doc = to_ipynb_dict(notebook)
        assert doc["nbformat"] == 4
        assert doc["metadata"]["title"] == "T"
        kinds = {c["cell_type"] for c in doc["cells"]}
        assert kinds == {"markdown", "code"}
        for cell in doc["cells"]:
            assert isinstance(cell["source"], list)

    def test_code_cells_carry_outputs(self, notebook):
        doc = to_ipynb_dict(notebook)
        code = [c for c in doc["cells"] if c["cell_type"] == "code"]
        assert all(c["outputs"] for c in code)

    def test_json_round_trips(self, notebook):
        text = to_ipynb_json(notebook)
        parsed = json.loads(text)
        assert parsed["nbformat"] == 4

    def test_write_ipynb(self, notebook, tmp_path):
        path = tmp_path / "nb.ipynb"
        write_ipynb(notebook, path)
        assert json.loads(path.read_text())["cells"]


class TestSqlScript:
    def test_markdown_becomes_comments(self, notebook):
        script = to_sql_script(notebook)
        for line in script.splitlines():
            assert line.startswith("--") or not line or not line.startswith("#")

    def test_statements_terminated(self, notebook):
        script = to_sql_script(notebook)
        assert script.count(";") >= notebook.n_queries

    def test_write_script(self, notebook, tmp_path):
        path = tmp_path / "nb.sql"
        write_sql_script(notebook, path)
        assert path.read_text().startswith("--")

    def test_script_statements_parse(self, notebook):
        # Extract non-comment chunks and parse each statement.
        script = to_sql_script(notebook)
        statements = []
        current: list[str] = []
        for line in script.splitlines():
            if line.startswith("--"):
                continue
            current.append(line)
            if line.rstrip().endswith(";"):
                statements.append("\n".join(current))
                current = []
        assert statements
        for stmt in statements:
            parse_sql(stmt)
