"""Unit tests for the Vega-Lite chart specs."""

import json

import numpy as np
import pytest

from repro.errors import NotebookError
from repro.notebook import (
    chart_markdown_block,
    comparison_chart_json,
    comparison_chart_spec,
    comparison_chart_values,
)
from repro.queries import ComparisonQuery
from repro.queries.evaluate import ComparisonResult


def make_result(groups, x, y, query=None):
    query = query or ComparisonQuery("continent", "month", "5", "4", "cases", "sum")
    return ComparisonResult(
        query, tuple(groups), np.asarray(x, dtype=float), np.asarray(y, dtype=float), 100
    )


class TestChartValues:
    def test_long_form_rows(self):
        result = make_result(["EU", "AS"], [10.0, 20.0], [1.0, 2.0])
        rows = comparison_chart_values(result)
        assert len(rows) == 4
        assert {"continent": "EU", "month": "5", "value": 10.0} in rows
        assert {"continent": "AS", "month": "4", "value": 2.0} in rows

    def test_nan_cells_skipped(self):
        result = make_result(["EU"], [np.nan], [2.0])
        rows = comparison_chart_values(result)
        assert len(rows) == 1
        assert rows[0]["value"] == 2.0


class TestChartSpec:
    def test_structure(self):
        result = make_result(["EU", "AS"], [10.0, 20.0], [1.0, 2.0])
        spec = comparison_chart_spec(result)
        assert spec["$schema"].endswith("v5.json")
        assert spec["mark"] == "bar"
        assert spec["encoding"]["x"]["field"] == "continent"
        assert spec["encoding"]["y"]["title"] == "sum(cases)"
        assert spec["encoding"]["color"]["field"] == "month"

    def test_custom_title(self):
        result = make_result(["EU"], [1.0], [2.0])
        assert comparison_chart_spec(result, title="Hello")["title"] == "Hello"

    def test_empty_result_rejected(self):
        with pytest.raises(NotebookError):
            comparison_chart_spec(make_result([], [], []))

    def test_json_serializable(self):
        result = make_result(["EU"], [1.0], [2.0])
        parsed = json.loads(comparison_chart_json(result))
        assert parsed["mark"] == "bar"

    def test_markdown_block_round_trips(self):
        result = make_result(["EU"], [1.0], [2.0])
        block = chart_markdown_block(result)
        assert block.startswith("```vega-lite\n") and block.endswith("\n```")
        inner = block.removeprefix("```vega-lite\n").removesuffix("\n```")
        assert json.loads(inner)["data"]["values"]
