"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro import __version__
from repro.cli import main
from repro.datasets import covid_table
from repro.relational import write_csv


@pytest.fixture
def covid_csv(tmp_path):
    path = tmp_path / "covid.csv"
    write_csv(covid_table(400), path)
    return path


class TestGenerate:
    def test_writes_ipynb(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "nb.ipynb"
        code = main(
            ["generate", str(covid_csv), "--budget", "4", "--out", str(out), "--quiet"]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["nbformat"] == 4
        assert any(c["cell_type"] == "code" for c in doc["cells"])

    def test_writes_sql_script(self, covid_csv, tmp_path):
        out = tmp_path / "nb.ipynb"
        sql = tmp_path / "nb.sql"
        code = main(
            ["generate", str(covid_csv), "--budget", "3", "--out", str(out),
             "--sql-out", str(sql), "--quiet", "--no-previews"]
        )
        assert code == 0
        assert sql.read_text().startswith("--")

    def test_preset_option(self, covid_csv, tmp_path):
        out = tmp_path / "nb.ipynb"
        code = main(
            ["generate", str(covid_csv), "--preset", "wsc-rand-approx",
             "--sample-rate", "0.4", "--budget", "3", "--out", str(out), "--quiet"]
        )
        assert code == 0

    def test_default_output_path(self, covid_csv):
        code = main(["generate", str(covid_csv), "--budget", "3", "--quiet"])
        assert code == 0
        assert covid_csv.with_suffix(".comparisons.ipynb").exists()

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "ghost.csv"), "--quiet"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_progress_output(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "nb.ipynb"
        main(["generate", str(covid_csv), "--budget", "3", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert "[repro]" in stdout and "selected" in stdout

    def test_quiet_run_leaks_nothing_into_the_ambient_registry(
        self, covid_csv, tmp_path
    ):
        """Each invocation records into its Session's own tracer/registry;
        the module-level ambient pair must come back untouched — the leak
        regression the per-job isolation work guards against.
        """
        from repro import obs

        before_counters = dict(obs.current_metrics().snapshot()["counters"])
        before_spans = len(obs.current_tracer().spans())
        for n in range(2):
            out = tmp_path / f"nb-{n}.ipynb"
            assert main(["generate", str(covid_csv), "--budget", "3",
                         "--out", str(out), "--quiet"]) == 0
        assert obs.current_metrics().snapshot()["counters"] == before_counters
        assert len(obs.current_tracer().spans()) == before_spans


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_version_matches_pyproject(self):
        import tomllib
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        with pyproject.open("rb") as fh:
            declared = tomllib.load(fh)["project"]["version"]
        assert __version__ == declared


class TestLogging:
    def test_repeated_main_attaches_one_handler(self, covid_csv, tmp_path):
        root = logging.getLogger("repro")
        before = [h for h in root.handlers if getattr(h, "_repro_cli", False)]
        for _ in range(3):
            main(["inspect", str(covid_csv), "--quiet"])
        tagged = [h for h in root.handlers if getattr(h, "_repro_cli", False)]
        assert len(tagged) == 1
        assert len(tagged) >= len(before)

    def test_level_reflects_latest_invocation(self, covid_csv):
        main(["inspect", str(covid_csv), "--quiet"])
        assert logging.getLogger("repro").level == logging.ERROR
        main(["inspect", str(covid_csv), "--verbose"])
        assert logging.getLogger("repro").level == logging.DEBUG


class TestObservability:
    def test_generate_metrics_line(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "nb.ipynb"
        main(["generate", str(covid_csv), "--budget", "3", "--out", str(out)])
        assert "metrics:" in capsys.readouterr().out

    def test_quiet_silences_metrics_line(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "nb.ipynb"
        main(["generate", str(covid_csv), "--budget", "3", "--out", str(out), "--quiet"])
        assert "metrics:" not in capsys.readouterr().out

    def test_generate_trace_export(self, covid_csv, tmp_path):
        out = tmp_path / "nb.ipynb"
        trace = tmp_path / "trace.json"
        code = main(["generate", str(covid_csv), "--budget", "3", "--out", str(out),
                     "--trace", str(trace), "--quiet"])
        assert code == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        for stage in ("stage.stats", "stage.generation", "stage.tap", "stage.render"):
            assert stage in names


class TestProfile:
    def test_prints_tree_and_hotspots(self, covid_csv, capsys):
        assert main(["profile", str(covid_csv), "--budget", "3"]) == 0
        out = capsys.readouterr().out
        assert "stage.stats" in out
        assert "hotspots" in out
        assert "metrics:" in out

    def test_trace_covers_all_stages(self, covid_csv, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["profile", str(covid_csv), "--budget", "3",
                     "--trace", str(trace), "--quiet"]) == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        for stage in ("stage.stats", "stage.generation", "stage.tap", "stage.render"):
            assert stage in names
        assert doc["otherData"]["metrics"]["counters"]

    def test_metrics_out_is_prometheus_text(self, covid_csv, tmp_path):
        prom = tmp_path / "metrics.prom"
        assert main(["profile", str(covid_csv), "--budget", "3",
                     "--metrics-out", str(prom), "--quiet"]) == 0
        text = prom.read_text()
        assert "# TYPE repro_stats_candidates_tested counter" in text
        assert "repro_process_peak_rss_bytes" in text

    def test_optional_notebook_output(self, covid_csv, tmp_path):
        out = tmp_path / "nb.ipynb"
        assert main(["profile", str(covid_csv), "--budget", "3",
                     "--out", str(out), "--quiet"]) == 0
        assert json.loads(out.read_text())["nbformat"] == 4


class TestInspect:
    def test_prints_schema_and_fds(self, covid_csv, capsys):
        assert main(["inspect", str(covid_csv)]) == 0
        out = capsys.readouterr().out
        assert "month" in out
        assert "country -> continent" in out
        assert "Lemma 3.2" in out


class TestDatasets:
    def test_writes_all_four(self, tmp_path):
        assert main(["datasets", "--out-dir", str(tmp_path), "--scale", "0.1"]) == 0
        for name in ("vaccine", "enedis", "flights", "covid"):
            assert (tmp_path / f"{name}.csv").exists()


class TestRecut:
    def test_save_and_recut(self, covid_csv, tmp_path):
        out = tmp_path / "nb.ipynb"
        saved = tmp_path / "run.json"
        assert main(
            ["generate", str(covid_csv), "--budget", "6", "--out", str(out),
             "--save-run", str(saved), "--quiet"]
        ) == 0
        assert saved.exists()
        recut_out = tmp_path / "recut.ipynb"
        code = main(
            ["recut", str(saved), "--budget", "3", "--out", str(recut_out),
             "--csv", str(covid_csv)]
        )
        assert code == 0
        doc = json.loads(recut_out.read_text())
        code_cells = [c for c in doc["cells"] if c["cell_type"] == "code"]
        assert 1 <= len(code_cells) <= 3

    def test_recut_without_csv_has_no_previews(self, covid_csv, tmp_path):
        saved = tmp_path / "run.json"
        main(["generate", str(covid_csv), "--budget", "4",
              "--out", str(tmp_path / "a.ipynb"), "--save-run", str(saved), "--quiet"])
        recut_out = tmp_path / "recut.ipynb"
        assert main(["recut", str(saved), "--budget", "2", "--out", str(recut_out)]) == 0
        doc = json.loads(recut_out.read_text())
        code_cells = [c for c in doc["cells"] if c["cell_type"] == "code"]
        assert all(not c["outputs"] for c in code_cells)


class TestSinceCheckpoint:
    """``--since-checkpoint``: incremental re-runs carried by the checkpoint."""

    @pytest.fixture
    def grown_pair(self, tmp_path):
        """(base_csv, grown_csv): the same dataset before/after 40 appended rows."""
        import numpy as np

        full = covid_table(240)
        base_csv = tmp_path / "base.csv"
        grown_csv = tmp_path / "grown.csv"
        write_csv(full.take(np.arange(200)), base_csv)
        write_csv(full, grown_csv)
        return base_csv, grown_csv

    def test_incremental_rerun_is_byte_identical(self, grown_pair, tmp_path,
                                                 capsys):
        base_csv, grown_csv = grown_pair
        ck = tmp_path / "run.ckpt.json"
        first = tmp_path / "first.ipynb"
        assert main(["generate", str(base_csv), "--checkpoint", str(ck),
                     "--out", str(first), "--permutations", "50",
                     "--quiet"]) == 0
        # The checkpoint carries the stats memo for the next run.
        doc = json.loads(ck.read_text())
        assert "incremental" in doc
        old_version = doc["incremental"]["version"]

        warm = tmp_path / "warm.ipynb"
        assert main(["generate", str(grown_csv), "--checkpoint", str(ck),
                     "--since-checkpoint", "--out", str(warm),
                     "--permutations", "50"]) == 0
        assert "incremental run since version" in capsys.readouterr().out

        cold = tmp_path / "cold.ipynb"
        assert main(["generate", str(grown_csv), "--out", str(cold),
                     "--permutations", "50", "--quiet"]) == 0
        assert warm.read_bytes() == cold.read_bytes()

        # The incremental run rewrote the checkpoint at the grown version:
        # a replay over the same CSV is fully incremental and still identical.
        assert json.loads(ck.read_text())["incremental"]["version"] != old_version
        replay = tmp_path / "replay.ipynb"
        assert main(["generate", str(grown_csv), "--checkpoint", str(ck),
                     "--since-checkpoint", "--out", str(replay),
                     "--permutations", "50", "--quiet"]) == 0
        assert replay.read_bytes() == cold.read_bytes()

    def test_version_mismatch_falls_back_to_full_run(self, grown_pair,
                                                     tmp_path, caplog):
        base_csv, grown_csv = grown_pair
        ck = tmp_path / "run.ckpt.json"
        assert main(["generate", str(base_csv), "--checkpoint", str(ck),
                     "--permutations", "50",
                     "--out", str(tmp_path / "a.ipynb"), "--quiet"]) == 0
        doc = json.loads(ck.read_text())
        tampered = ck.read_text().replace(
            doc["incremental"]["version"], "999-deadbeefdeadbeefdead"
        )
        ck.write_text(tampered)
        warm = tmp_path / "warm.ipynb"
        with caplog.at_level(logging.WARNING, logger="repro.cli"):
            assert main(["generate", str(grown_csv), "--checkpoint", str(ck),
                         "--since-checkpoint", "--out", str(warm),
                         "--permutations", "50", "--quiet"]) == 0
        assert "not a row prefix" in caplog.text
        cold = tmp_path / "cold.ipynb"
        assert main(["generate", str(grown_csv), "--out", str(cold),
                     "--permutations", "50", "--quiet"]) == 0
        assert warm.read_bytes() == cold.read_bytes()

    def test_requires_checkpoint_flag(self, covid_csv, capsys):
        assert main(["generate", str(covid_csv), "--since-checkpoint",
                     "--quiet"]) == 2
        assert "--since-checkpoint requires --checkpoint" in (
            capsys.readouterr().err
        )

    def test_checkpoint_without_memo_warns_and_runs_full(self, covid_csv,
                                                         tmp_path, caplog):
        ck = tmp_path / "stale.ckpt.json"
        # A sampled run is not memoizable: its checkpoint carries no memo.
        assert main(["generate", str(covid_csv), "--checkpoint", str(ck),
                     "--preset", "wsc-rand-approx", "--sample-rate", "0.5",
                     "--budget", "3",
                     "--out", str(tmp_path / "a.ipynb"), "--quiet"]) == 0
        assert "incremental" not in json.loads(ck.read_text())
        out = tmp_path / "b.ipynb"
        with caplog.at_level(logging.WARNING, logger="repro.cli"):
            assert main(["generate", str(covid_csv), "--checkpoint", str(ck),
                         "--since-checkpoint", "--preset", "wsc-rand-approx",
                         "--sample-rate", "0.5",
                         "--budget", "3", "--out", str(out), "--quiet"]) == 0
        assert "holds no incremental stats memo" in caplog.text
        assert out.exists()


class TestThreadsDeprecation:
    def test_threads_warns_once_and_maps_to_workers(self, covid_csv, tmp_path):
        import warnings

        from repro import deprecation

        deprecation.reset()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert main(["generate", str(covid_csv), "--threads", "2",
                         "--budget", "3", "--out", str(tmp_path / "t.ipynb"),
                         "--quiet"]) == 0
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("--threads is deprecated" in m for m in messages)

    def test_workers_takes_precedence_over_threads(self):
        from repro import deprecation
        from repro.cli import _config_from_args, build_parser

        deprecation.reset()
        args = build_parser().parse_args(
            ["generate", "x.csv", "--threads", "3", "--workers", "2"]
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            config = _config_from_args(args)
        assert config.parallel.workers == 2


class TestErrorExits:
    """Malformed inputs exit with code 2 and a one-line message, no traceback."""

    def test_empty_csv(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("cat,num\n")
        assert main(["generate", str(path), "--quiet"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no data rows" in err
        assert "Traceback" not in err

    def test_single_value_categorical(self, tmp_path, capsys):
        path = tmp_path / "flat.csv"
        path.write_text("cat,num\n" + "\n".join(f"same,{i}" for i in range(20)))
        assert main(["generate", str(path), "--quiet"]) == 2
        assert "fewer than two distinct" in capsys.readouterr().err

    def test_unwritable_out(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "no" / "such" / "dir" / "nb.ipynb"
        assert main(["generate", str(covid_csv), "--budget", "3",
                     "--out", str(out), "--quiet"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_missing_csv_without_resume(self, capsys):
        assert main(["generate", "--quiet"]) == 2
        assert "CSV argument is required" in capsys.readouterr().err

    def test_malformed_fault_plan(self, covid_csv, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "stats")
        assert main(["generate", str(covid_csv), "--quiet"]) == 2
        assert "malformed fault spec" in capsys.readouterr().err


class TestServe:
    """The blocking serve loop itself is exercised by the serve test suite
    and the CI smoke job; here we cover the CLI validation surface."""

    def test_malformed_dataset_spec_exits_2(self, capsys):
        code = main(["serve", "--port", "0", "--dataset", "no-equals-sign",
                     "--quiet"])
        assert code == 2
        err = capsys.readouterr().err
        assert "malformed --dataset" in err
        assert "NAME=PATH" in err

    def test_malformed_fault_plan_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "serve.handler")
        code = main(["serve", "--port", "0", "--quiet"])
        assert code == 2
        assert "malformed fault spec" in capsys.readouterr().err

    def test_parser_accepts_the_knob_surface(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--dataset", "a=a.csv", "--dataset", "b=b.csv",
             "--max-queue", "4", "--max-cost", "8",
             "--default-deadline", "10", "--executors", "2",
             "--breaker-failures", "5", "--breaker-reset", "60"]
        )
        assert args.command == "serve"
        assert args.dataset == ["a=a.csv", "b=b.csv"]
        assert args.max_queue == 4
        assert args.breaker_failures == 5


class TestResilience:
    def test_deadline_run_completes(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "nb.ipynb"
        code = main(["generate", str(covid_csv), "--budget", "4",
                     "--deadline", "30", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "run report" in capsys.readouterr().out

    def test_report_lines_printed(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "nb.ipynb"
        main(["generate", str(covid_csv), "--budget", "3", "--out", str(out)])
        stdout = capsys.readouterr().out
        for stage in ("stats", "generation", "tap", "render"):
            assert stage in stdout

    def test_quiet_suppresses_report(self, covid_csv, tmp_path, capsys):
        out = tmp_path / "nb.ipynb"
        main(["generate", str(covid_csv), "--budget", "3", "--out", str(out), "--quiet"])
        assert "run report" not in capsys.readouterr().out

    def test_injected_fault_still_writes_notebook(self, covid_csv, tmp_path,
                                                  monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "tap:kill")
        out = tmp_path / "nb.ipynb"
        code = main(["generate", str(covid_csv), "--budget", "4", "--out", str(out)])
        assert code == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert "degraded" in stdout
        assert "baseline" in stdout

    def test_checkpoint_and_resume(self, covid_csv, tmp_path, monkeypatch, capsys):
        ck = tmp_path / "run.ckpt.json"
        out = tmp_path / "nb.ipynb"
        # Interrupt the run after the stats stage: every generation attempt dies.
        monkeypatch.setenv("REPRO_FAULTS", "generation:kill:xall")
        code = main(["generate", str(covid_csv), "--budget", "4",
                     "--checkpoint", str(ck), "--quiet"])
        assert code == 1  # nothing selected, but no crash
        assert json.loads(ck.read_text())["stage"] == "stats"

        monkeypatch.delenv("REPRO_FAULTS")
        code = main(["generate", str(covid_csv), "--budget", "4",
                     "--resume", str(ck), "--out", str(out)])
        assert code == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert "resumed" in stdout

    def test_resume_with_deleted_checkpoint_exits_2(self, covid_csv, tmp_path,
                                                    capsys):
        ghost = tmp_path / "gone.ckpt.json"
        code = main(["generate", str(covid_csv), "--resume", str(ghost),
                     "--quiet"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "does not exist" in err
        assert "re-run without --resume" in err
        assert "Traceback" not in err

    def test_resume_with_corrupt_checkpoint_exits_2(self, covid_csv, tmp_path,
                                                    capsys):
        ck = tmp_path / "corrupt.ckpt.json"
        ck.write_bytes(b"\x80\x81\x82 not json at all \xff")
        code = main(["generate", str(covid_csv), "--resume", str(ck),
                     "--quiet"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "corrupt" in err
        assert "Traceback" not in err

    def test_resume_with_truncated_json_exits_2(self, covid_csv, tmp_path,
                                                capsys):
        ck = tmp_path / "half.ckpt.json"
        ck.write_text('{"stage": "stats", "payload": {')
        code = main(["generate", str(covid_csv), "--resume", str(ck),
                     "--quiet"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_generation_checkpoint_without_csv(self, covid_csv, tmp_path):
        ck = tmp_path / "run.ckpt.json"
        out = tmp_path / "nb.ipynb"
        assert main(["generate", str(covid_csv), "--budget", "4",
                     "--checkpoint", str(ck), "--quiet"]) == 0
        assert json.loads(ck.read_text())["stage"] == "generation"
        assert main(["generate", "--resume", str(ck), "--budget", "4",
                     "--out", str(out), "--quiet", "--no-previews"]) == 0
        assert out.exists()
