"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import covid_table
from repro.relational import Schema, Table, categorical, measure, table_from_arrays
from repro.stats import derive_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return derive_rng(12345, "tests")


@pytest.fixture
def tiny_table() -> Table:
    """5 rows, 2 categoricals, 1 measure (with one NULL)."""
    return table_from_arrays(
        {"month": ["4", "4", "5", "5", "5"], "continent": ["EU", "AS", "EU", "AS", "EU"]},
        {"cases": [10.0, 20.0, 30.0, 40.0, None]},
    )


@pytest.fixture
def covid() -> Table:
    """The deterministic covid demo table (seeded)."""
    return covid_table(600)


@pytest.fixture
def two_measure_table(rng) -> Table:
    """200 rows, 3 categoricals, 2 measures with planted group effects."""
    n = 200
    a = rng.choice(["a0", "a1", "a2"], n)
    b = rng.choice(["b0", "b1", "b2", "b3"], n)
    c = rng.choice(["c0", "c1"], n)
    m1 = rng.normal(50, 5, n) + np.where(b == "b0", 30.0, 0.0)
    m2 = rng.normal(10, 1, n) * np.where(c == "c0", 3.0, 1.0)
    return table_from_arrays({"a": a, "b": b, "c": c}, {"m1": m1, "m2": m2})


@pytest.fixture
def empty_schema_table() -> Table:
    schema = Schema([categorical("k"), measure("v")])
    return Table.empty(schema)
