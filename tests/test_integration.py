"""End-to-end integration tests across all subsystems.

These tests exercise the full paper pipeline on the covid running example:
CSV round-trip -> generation -> TAP -> notebook -> the emitted SQL
re-executed on the SQL engine, with cross-checks at every hand-off.
"""

import json

import pytest

from repro import NotebookGenerator, read_csv
from repro.datasets import covid_table
from repro.generation import GenerationConfig
from repro.insights import insight_type
from repro.notebook import write_ipynb
from repro.queries import (
    bind_table,
    comparison_aliases,
    comparison_sql,
    hypothesis_sql,
    sequence_distance,
)
from repro.relational import write_csv
from repro.sqlengine import Catalog, execute_sql


@pytest.fixture(scope="module")
def covid():
    return covid_table(800)


@pytest.fixture(scope="module")
def run(covid):
    return NotebookGenerator().generate(covid, budget=6)


class TestFullPipeline:
    def test_notebook_selected_within_bounds(self, run):
        assert 1 <= len(run.selected) <= 6
        queries = [g.query for g in run.selected]
        assert sequence_distance(queries) <= run.epsilon_distance + 1e-9

    def test_selected_queries_execute_via_sql(self, covid, run):
        """Every selected query's SQL must run and support its insights."""
        catalog = Catalog({"covid": covid})
        for generated in run.selected:
            sql = bind_table(comparison_sql(generated.query), "covid")
            result = execute_sql(sql, catalog)
            assert result.n_rows > 0
            alias_x, alias_y = comparison_aliases(generated.query)
            x = result.measure_values(alias_x)
            y = result.measure_values(alias_y)
            for evidence in generated.supported:
                itype = insight_type(evidence.insight.candidate.type_code)
                if evidence.insight.candidate.val == generated.query.val:
                    assert itype.supports(x, y)
                else:
                    assert itype.supports(y, x)

    def test_hypothesis_queries_agree_with_support(self, covid, run):
        """Figure 3 semantics: hypothesis SQL returns 1 row iff supported."""
        catalog = Catalog({"covid": covid})
        for generated in run.selected[:3]:
            for evidence in generated.supported:
                itype = insight_type(evidence.insight.candidate.type_code)
                cand = evidence.insight.candidate
                oriented = generated.query
                if cand.val != oriented.val:
                    continue  # hypothesis SQL tests the query's own orientation
                sql = bind_table(hypothesis_sql(oriented, itype), "covid")
                out = execute_sql(sql, catalog)
                assert out.n_rows == 1

    def test_csv_round_trip_preserves_pipeline(self, covid, tmp_path):
        """Write to CSV, read back, regenerate: same significant insights."""
        path = tmp_path / "covid.csv"
        write_csv(covid, path)
        reloaded = read_csv(path)
        assert reloaded.schema.categorical_names == covid.schema.categorical_names
        assert reloaded.schema.measure_names == covid.schema.measure_names
        run1 = NotebookGenerator().generate(covid, budget=4)
        run2 = NotebookGenerator().generate(reloaded, budget=4)
        keys1 = {i.key for i in run1.outcome.significant}
        keys2 = {i.key for i in run2.outcome.significant}
        assert keys1 == keys2

    def test_ipynb_artifact_complete(self, covid, run, tmp_path):
        notebook = run.to_notebook(covid, table_name="covid", title="Covid")
        path = tmp_path / "covid.ipynb"
        write_ipynb(notebook, path)
        doc = json.loads(path.read_text())
        code_cells = [c for c in doc["cells"] if c["cell_type"] == "code"]
        assert len(code_cells) == len(run.selected)
        # Each code cell's SQL must execute against the source table.
        catalog = Catalog({"covid": covid})
        for cell in code_cells:
            sql = "".join(cell["source"])
            assert execute_sql(sql, catalog).n_rows > 0

    def test_interest_recomputable_from_parts(self, run):
        """interest(q) must equal Definition 4.3 recomputed from the pieces."""
        from repro.queries import conciseness, insight_term

        config = GenerationConfig().interestingness
        for generated in run.selected:
            expected = sum(insight_term(e, config) for e in generated.supported)
            expected *= conciseness(
                generated.tuples_aggregated, generated.n_groups, config.alpha, config.delta
            )
            assert generated.interest == pytest.approx(expected, rel=1e-9)

    def test_solution_interest_is_sum_of_selected(self, run):
        total = sum(g.interest for g in run.selected)
        assert run.solution.interest == pytest.approx(total, rel=1e-9)


class TestDeterminism:
    def test_same_seed_same_notebook(self, covid):
        one = NotebookGenerator().generate(covid, budget=5)
        two = NotebookGenerator().generate(covid, budget=5)
        assert [g.query.key for g in one.selected] == [g.query.key for g in two.selected]


class TestSQLEngineExtrasOnGeneratedData:
    """The engine extras (CASE, COUNT DISTINCT, UNION) on a real dataset."""

    def test_conditional_aggregation_matches_comparison(self, covid):
        """sum(case when month='5' then cases end) must equal the comparison
        query's val-side series — two roads to the same numbers."""
        from repro.queries import ComparisonQuery, evaluate_comparison
        from repro.sqlengine import Catalog, execute_sql

        catalog = Catalog({"covid": covid})
        out = execute_sql(
            "select continent, sum(case when month = '5' then cases else 0 end) as may "
            "from covid group by continent order by continent",
            catalog,
        )
        query = ComparisonQuery("continent", "month", "5", "4", "cases", "sum")
        result = evaluate_comparison(covid, query)
        by_group = dict(zip(out.to_dict()["continent"], out.to_dict()["may"]))
        for group, x in zip(result.groups, result.x):
            assert by_group[str(group)] == pytest.approx(x)

    def test_count_distinct_countries_per_continent(self, covid):
        from repro.sqlengine import Catalog, execute_sql

        catalog = Catalog({"covid": covid})
        out = execute_sql(
            "select continent, count(distinct country) as n from covid "
            "group by continent",
            catalog,
        )
        for continent, n in zip(out.to_dict()["continent"], out.to_dict()["n"]):
            expected = covid.where_equal("continent", continent).n_distinct("country")
            assert n == expected

    def test_union_of_two_months(self, covid):
        from repro.sqlengine import Catalog, execute_sql

        catalog = Catalog({"covid": covid})
        both = execute_sql(
            "select country from covid where month = '4' "
            "union select country from covid where month = '5'",
            catalog,
        )
        via_or = execute_sql(
            "select distinct country from covid where month = '4' or month = '5'",
            catalog,
        )
        assert sorted(both.to_dict()["country"]) == sorted(via_or.to_dict()["country"])
