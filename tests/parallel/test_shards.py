"""Sharded stats stage: parity, shard-store reuse, mid-stage checkpoints."""

from __future__ import annotations

import pytest

from repro import obs
from repro.generation import GenerationConfig
from repro.generation.generator import run_stats_stage
from repro.insights import SignificanceConfig
from repro.parallel import ParallelConfig, ShardStore
from repro.persistence import (
    PersistentShardStore,
    load_checkpoint,
    stats_config_token,
)


@pytest.fixture(autouse=True)
def isolated_obs():
    with obs.capture() as (tracer, metrics):
        yield tracer, metrics


def _config(workers: int, **parallel_kwargs) -> GenerationConfig:
    return GenerationConfig(
        significance=SignificanceConfig(n_permutations=60),
        parallel=ParallelConfig(workers=workers, chunk_size=8, **parallel_kwargs),
    )


def _stats_key(stats):
    return [
        (t.candidate.key, t.statistic, t.p_value, t.p_adjusted)
        for t in stats.significant
    ]


def test_sharded_stats_match_sequential(covid):
    serial = run_stats_stage(covid, _config(workers=1))
    sharded = run_stats_stage(covid, _config(workers=2))
    assert _stats_key(sharded) == _stats_key(serial)
    assert sharded.excluded_pairs == serial.excluded_pairs


def test_shm_plane_matches_heap_plane(covid, isolated_obs):
    from repro.relational.store import shm_available

    if not shm_available():
        pytest.skip("shared memory unavailable on this platform")
    heap = run_stats_stage(covid, _config(workers=2, store="heap"))
    shm = run_stats_stage(covid, _config(workers=2, store="shm"))
    assert _stats_key(shm) == _stats_key(heap)
    _, metrics = isolated_obs
    assert metrics.counter("parallel.shm_attach").value > 0


def test_completed_shards_are_skipped_on_rerun(covid, caplog):
    config = _config(workers=2)
    store = ShardStore()
    first = run_stats_stage(covid, config, shard_store=store)
    assert len(store) > 1

    # Second run with the populated store: every shard is served from it,
    # nothing is recomputed, output is identical.
    with caplog.at_level("INFO", logger="repro.parallel.shards"):
        second = run_stats_stage(covid, config, shard_store=store)
    assert _stats_key(second) == _stats_key(first)
    total = len(store)
    assert f"resuming with {total}/{total} shard(s)" in caplog.text


def test_persistent_store_writes_stats_partial_checkpoint(covid, tmp_path):
    path = tmp_path / "ckpt.json"
    config = _config(workers=2)
    token = stats_config_token(config, covid.n_rows)
    store = PersistentShardStore.open(path, token)
    stats = run_stats_stage(covid, config, shard_store=store)

    resume = load_checkpoint(path)
    assert resume.stage == "stats-partial"
    assert resume.partial_token == token
    assert len(resume.partial_shards) == len(store)

    # Resuming from the loaded checkpoint preloads every shard.
    resumed_store = PersistentShardStore.open(path, token, resume)
    assert len(resumed_store) == len(store)
    rerun = run_stats_stage(covid, config, shard_store=resumed_store)
    assert _stats_key(rerun) == _stats_key(stats)


def test_persistent_store_rejects_mismatched_token(covid, tmp_path):
    path = tmp_path / "ckpt.json"
    config = _config(workers=2)
    token = stats_config_token(config, covid.n_rows)
    store = PersistentShardStore.open(path, token)
    run_stats_stage(covid, config, shard_store=store)
    resume = load_checkpoint(path)

    # A config drift (different permutation count) produces a different
    # token: the partial state is discarded, not mixed in.
    drifted = GenerationConfig(
        significance=SignificanceConfig(n_permutations=61),
        parallel=ParallelConfig(workers=2, chunk_size=8),
    )
    other_token = stats_config_token(drifted, covid.n_rows)
    assert other_token != token
    fresh = PersistentShardStore.open(path, other_token, resume)
    assert len(fresh) == 0
