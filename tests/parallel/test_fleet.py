"""The session-scoped worker fleet and the zero-copy data plane under it.

Three contracts from the data-plane design:

* **amortization** — an ambient fleet spawns its workers once; every
  subsequent pool run reuses them (``parallel.worker_spawns`` stays at
  the worker count across stages and runs);
* **restart re-attaches** — a worker killed mid-run is replaced, and the
  replacement resolves the same shared segment from its handle instead of
  receiving the table again: ``parallel.ipc_bytes`` stays flat relative
  to a clean run, and both stay far below the pickled table size;
* **crash-safe lifecycle** — no combination of kills and restarts leaves
  a ``repro_*`` segment in ``/dev/shm`` (the package conftest audits
  every test here; the crash test also asserts it explicitly).
"""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.errors import ReproError
from repro.parallel import (
    ParallelConfig,
    ShardPool,
    WorkerFleet,
    current_fleet,
    use_fleet,
)
from repro.relational import table_from_arrays
from repro.relational.store import leaked_segments, share_table, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


@pytest.fixture(autouse=True)
def isolated_obs():
    with obs.capture() as (tracer, metrics):
        yield tracer, metrics


def _counters():
    return obs.current_metrics().snapshot()["counters"]


@pytest.fixture()
def big_table():
    n = 20_000
    return table_from_arrays(
        {"g": [("abcde")[i % 5] for i in range(n)]},
        {"v": [float(i % 97) for i in range(n)]},
    )


# Module-level so they cross the process boundary under spawn.

def _attach_init(payload):
    from repro.relational.store import resolve_table

    return resolve_table(payload)


def _sum_plus(ctx, payload):
    return float(ctx.state.measure_column("v").data.sum()) + payload


def _double(ctx, payload):
    return payload * 2


def _fail(ctx, payload):
    raise ValueError("stage failed")


def _run_summed(table_or_handle, payloads, **parallel_kwargs):
    pool = ShardPool(
        ParallelConfig(workers=2, **parallel_kwargs),
        task_fn=_sum_plus,
        worker_init=_attach_init,
        init_payload=table_or_handle,
    )
    return pool.run(payloads)


class TestAmbientFleet:
    def test_fleet_is_borrowed_and_restored(self):
        assert current_fleet() is None
        with WorkerFleet() as fleet:
            with use_fleet(fleet):
                assert current_fleet() is fleet
            assert current_fleet() is None

    def test_closed_fleet_is_never_served(self):
        fleet = WorkerFleet()
        fleet.close()
        with use_fleet(fleet):
            assert current_fleet() is None

    def test_workers_spawn_once_across_pool_runs(self):
        with WorkerFleet() as fleet, use_fleet(fleet):
            first = ShardPool(ParallelConfig(workers=2), task_fn=_double)
            second = ShardPool(ParallelConfig(workers=2), task_fn=_double)
            assert first.run([1, 2, 3, 4]) == [2, 4, 6, 8]
            assert second.run([5, 6, 7, 8]) == [10, 12, 14, 16]
        assert _counters()["parallel.worker_spawns"] == 2

    def test_a_failed_stage_does_not_poison_the_fleet(self):
        with WorkerFleet() as fleet, use_fleet(fleet):
            bad = ShardPool(ParallelConfig(workers=2), task_fn=_fail)
            with pytest.raises(ReproError, match="ValueError.*stage failed"):
                bad.run([1, 2, 3, 4])
            good = ShardPool(ParallelConfig(workers=2), task_fn=_double)
            assert good.run([1, 2, 3, 4]) == [2, 4, 6, 8]
        assert _counters()["parallel.worker_spawns"] == 2


class TestDataPlaneIpc:
    def test_handle_plane_ships_kilobytes_not_the_table(self, big_table):
        table_wire = len(pickle.dumps(big_table, pickle.HIGHEST_PROTOCOL))
        shared = share_table(big_table)
        try:
            expected = float(big_table.measure_column("v").data.sum())
            assert _run_summed(shared.handle(), [1.0, 2.0, 3.0, 4.0]) == [
                expected + p for p in (1.0, 2.0, 3.0, 4.0)
            ]
            ipc = _counters()["parallel.ipc_bytes"]
            assert ipc < table_wire / 10
            assert _counters()["parallel.shm_attach"] >= 2
        finally:
            shared._store.release()

    def test_restart_under_load_reattaches_instead_of_repickling(
        self, big_table, monkeypatch
    ):
        table_wire = len(pickle.dumps(big_table, pickle.HIGHEST_PROTOCOL))
        shared = share_table(big_table)
        try:
            handle = shared.handle()
            payloads = [float(i) for i in range(12)]
            expected = [
                float(big_table.measure_column("v").data.sum()) + p
                for p in payloads
            ]

            with obs.capture() as (_, clean_metrics):
                assert _run_summed(handle, payloads) == expected
            clean = clean_metrics.snapshot()["counters"]["parallel.ipc_bytes"]

            monkeypatch.setenv("REPRO_FAULTS", "parallel.worker:kill:x1")
            with obs.capture() as (_, fault_metrics):
                assert _run_summed(
                    handle, payloads, max_worker_restarts=2
                ) == expected
            counters = fault_metrics.snapshot()["counters"]
            assert counters.get("parallel.worker_restarts", 0) >= 1

            # The restarted worker got a fresh setup message (the compact
            # handle again) — never the pickled table.
            faulted = counters["parallel.ipc_bytes"]
            assert faulted - clean < table_wire / 10
            assert faulted < table_wire / 5
        finally:
            shared._store.release()

    def test_worker_kill_leaks_no_segments(self, big_table, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "parallel.worker:kill:x1")
        shared = share_table(big_table)
        segment = shared.handle().segment
        try:
            _run_summed(
                shared.handle(), [float(i) for i in range(8)],
                max_worker_restarts=2,
            )
            assert _counters().get("parallel.worker_restarts", 0) >= 1
            # The owner still holds the segment (killed workers must not
            # have unlinked it through the resource tracker)...
            assert segment in leaked_segments()
        finally:
            shared._store.release()
        # ...and the owner's release removes it.
        assert segment not in leaked_segments()
