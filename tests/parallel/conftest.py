"""Shared fixtures for the parallel-layer tests.

The teardown audit is the enforcement arm of the data-plane lifecycle
contract: no test in this package may leave a ``repro_*`` segment behind
in ``/dev/shm`` — not on success, not on worker crash, not on restart
exhaustion.  A leak here means the refcounting, the resource-tracker
suppression, or the atexit sweep regressed.
"""

from __future__ import annotations

import pytest

from repro.relational.store import leaked_segments


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Assert every test leaves /dev/shm exactly as it found it."""
    before = set(leaked_segments())
    yield
    leaked = sorted(set(leaked_segments()) - before)
    assert not leaked, f"test leaked shared-memory segments: {leaked}"
