"""Mechanics of the work-stealing, crash-isolated shard pool."""

from __future__ import annotations

import os
import time

import pytest

from repro import obs
from repro.errors import DeadlineExceeded, ReproError
from repro.parallel import ParallelConfig, ShardPool
from repro.runtime.deadline import Deadline


@pytest.fixture(autouse=True)
def isolated_obs():
    with obs.capture() as (tracer, metrics):
        yield tracer, metrics


def _counters():
    return obs.current_metrics().snapshot()["counters"]


# Task functions must live at module level (they cross the process
# boundary under spawn).

def _double(ctx, payload):
    return payload * 2


def _sleepy(ctx, payload):
    value, seconds = payload
    time.sleep(seconds)
    return value


def _crash_once(ctx, payload):
    value, marker = payload
    if marker and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return value * 3


def _crash_in_subprocess(ctx, payload):
    value, parent_pid = payload
    if os.getpid() != parent_pid:
        os._exit(7)
    return value + 100


def _raise_value_error(ctx, payload):
    raise ValueError("boom")


def _raise_deadline(ctx, payload):
    raise DeadlineExceeded("synthetic expiry", stage="shards")


def _raise_memory(ctx, payload):
    raise MemoryError("pretend OOM")


def _state_plus(ctx, payload):
    return ctx.state + payload


def _labeled_counting(ctx, payload):
    flavor = "even" if payload % 2 == 0 else "odd"
    obs.counter("pooltest.tasks", {"flavor": flavor}).inc()
    return payload


def _bad_init(payload):
    raise RuntimeError("init exploded")


def test_results_come_back_in_payload_order():
    pool = ShardPool(ParallelConfig(workers=4), task_fn=_double)
    assert pool.run(list(range(10))) == [i * 2 for i in range(10)]


def test_single_worker_runs_in_process_without_pool_counters():
    pool = ShardPool(ParallelConfig(workers=1), task_fn=_double)
    assert pool.run([1, 2, 3]) == [2, 4, 6]
    counters = _counters()
    assert "parallel.tasks_stolen" not in counters
    assert "parallel.tasks_inprocess" not in counters


def test_init_payload_becomes_state():
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_state_plus, init_payload=10)
    assert pool.run([1, 2, 3, 4]) == [11, 12, 13, 14]


def test_idle_worker_steals_from_the_busy_one():
    # Worker 0's first shard sleeps; worker 1 drains its own deque and
    # must steal the rest of worker 0's block to finish the run.
    payloads = [(0, 0.5)] + [(i, 0.0) for i in range(1, 8)]
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_sleepy)
    assert pool.run(payloads) == list(range(8))
    assert _counters().get("parallel.tasks_stolen", 0) >= 1


def test_crashed_worker_is_replaced_and_its_shard_requeued(tmp_path):
    marker = str(tmp_path / "crashed-once")
    payloads = [(i, marker if i == 1 else "") for i in range(6)]
    pool = ShardPool(
        ParallelConfig(workers=2, max_worker_restarts=2), task_fn=_crash_once
    )
    assert pool.run(payloads) == [i * 3 for i in range(6)]
    assert _counters().get("parallel.worker_restarts", 0) >= 1


def test_restart_budget_exhausted_degrades_to_in_process():
    # Every subprocess attempt dies; once the restart budget is spent the
    # remaining shards must complete in the parent process.
    payloads = [(i, os.getpid()) for i in range(5)]
    pool = ShardPool(
        ParallelConfig(workers=2, max_worker_restarts=1),
        task_fn=_crash_in_subprocess,
    )
    assert pool.run(payloads) == [i + 100 for i in range(5)]
    assert _counters().get("parallel.tasks_inprocess", 0) >= 1


def test_worker_exception_reraises_as_repro_error():
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_raise_value_error)
    with pytest.raises(ReproError, match="ValueError.*boom"):
        pool.run([1, 2, 3, 4])


def test_worker_deadline_keeps_its_type():
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_raise_deadline)
    with pytest.raises(DeadlineExceeded):
        pool.run([1, 2, 3, 4])


def test_worker_memory_error_keeps_its_type():
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_raise_memory)
    with pytest.raises(MemoryError):
        pool.run([1, 2, 3, 4])


def test_worker_init_failure_surfaces():
    pool = ShardPool(
        ParallelConfig(workers=2), task_fn=_double, worker_init=_bad_init
    )
    with pytest.raises(ReproError, match="RuntimeError.*init exploded"):
        pool.run([1, 2, 3, 4])


def test_near_deadline_skips_the_pool_entirely():
    # Remaining deadline is below the margin from the start: the pool must
    # finish in-process (where real expiry raises for the runtime ladder).
    pool = ShardPool(
        ParallelConfig(workers=2, deadline_margin=3600.0),
        task_fn=_double,
        deadline=Deadline(30.0),
    )
    assert pool.run([1, 2, 3]) == [2, 4, 6]
    assert _counters().get("parallel.tasks_inprocess", 0) == 3
    assert "parallel.tasks_stolen" not in _counters()


def test_skip_leaves_resumed_slots_for_the_caller():
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_double)
    results = pool.run([1, 2, 3, 4], skip={0, 2})
    assert results[0] is None and results[2] is None
    assert results[1] == 4 and results[3] == 8


def test_on_result_fires_per_completed_shard():
    seen: dict[int, int] = {}
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_double)
    pool.run([5, 6, 7], on_result=lambda i, v: seen.__setitem__(i, v))
    assert seen == {0: 10, 1: 12, 2: 14}


def test_worker_spans_are_adopted_into_the_main_trace(isolated_obs):
    tracer, _ = isolated_obs
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_double, label="adopt")
    pool.run([1, 2, 3, 4])
    names = [span.name for span in tracer.spans()]
    assert "parallel.adopt" in names
    assert "parallel.task" in names


def test_crashed_task_spans_adopted_exactly_once(isolated_obs, monkeypatch):
    """A killed worker's in-flight task re-runs — and its span subtree is
    adopted exactly once (the crashed attempt's spans die with the
    process; the retry's ship with its result): neither lost nor doubled.
    """
    tracer, _ = isolated_obs
    monkeypatch.setenv("REPRO_FAULTS", "parallel.worker:kill:x1")
    pool = ShardPool(
        ParallelConfig(workers=2, max_worker_restarts=2),
        task_fn=_double, label="faulty",
    )
    payloads = list(range(8))
    assert pool.run(payloads) == [i * 2 for i in payloads]
    assert _counters().get("parallel.worker_restarts", 0) >= 1

    wrappers = [s for s in tracer.spans() if s.name == "parallel.task"]
    by_task: dict[int, int] = {}
    for span in wrappers:
        by_task[span.attrs["task"]] = by_task.get(span.attrs["task"], 0) + 1
    # Every task shipped exactly one subtree — including the one whose
    # first attempt died with its worker.
    assert by_task == {task_id: 1 for task_id in range(len(payloads))}


def test_worker_labeled_metrics_merge_across_the_process_boundary(
    isolated_obs,
):
    _, metrics = isolated_obs
    pool = ShardPool(ParallelConfig(workers=2), task_fn=_labeled_counting)
    assert pool.run([1, 2, 3, 4]) == [1, 2, 3, 4]
    snapshot = metrics.snapshot()["counters"]
    assert snapshot.get("pooltest.tasks{flavor=even}", 0) == 2
    assert snapshot.get("pooltest.tasks{flavor=odd}", 0) == 2
