"""Worker-count invariance: the PR 5 determinism contract, end to end.

For every execution backend and permutation kernel, a notebook generated
with ``workers in {2, 4}`` must be byte-identical to the ``workers=1``
run — same selected queries, same rendered ``.ipynb`` JSON — and the
:class:`RunReport` must agree on everything except wall-clock timings and
the worker count itself.  The column-store plane (``heap`` pickling vs
``shm`` zero-copy handles) is one more dimension that must never show up
in the output.
"""

from __future__ import annotations

import pytest

from repro import ReproConfig, Session, obs
from repro.datasets import covid_table
from repro.generation import GenerationConfig
from repro.insights import SignificanceConfig
from repro.notebook import to_ipynb_json
from repro.parallel import ParallelConfig
from repro.relational.store import shm_available

BACKENDS = ("columnar", "sqlite")
KERNELS = ("batched", "legacy")
STORES = ("heap", "shm")


@pytest.fixture(autouse=True)
def isolated_obs():
    with obs.capture():
        yield


@pytest.fixture(scope="module")
def table():
    return covid_table(400)


def _run(table, backend: str, kernel: str, workers: int, store: str = "heap"):
    config = ReproConfig(
        generation=GenerationConfig(
            backend=backend,
            significance=SignificanceConfig(kernel=kernel, n_permutations=80),
            parallel=ParallelConfig(workers=workers, chunk_size=10, store=store),
        ),
        budget=6.0,
    )
    with Session(table, config=config, table_name="covid") as session:
        run = session.generate()
        notebook = session.render(run, title="invariance")
    return run, to_ipynb_json(notebook)


def _normalized_report(run) -> dict:
    """The report with timing and execution-topology fields blanked out.

    ``backend_statements`` counts traffic on the engine connections a run
    happened to open; sharded workers answer from shipped sample tables
    and the pickled aggregate cache, so the count is a property of *where*
    queries ran, not of the result — normalized away like wall-clock.
    """
    data = run.report.as_dict()
    data["total_seconds"] = None
    data["workers"] = None
    data["backend_statements"] = None
    for stage in data["stages"]:
        stage["seconds"] = None
    return data


_baselines: dict[tuple[str, str], tuple] = {}


def _baseline(table, backend: str, kernel: str):
    key = (backend, kernel)
    if key not in _baselines:
        _baselines[key] = _run(table, backend, kernel, workers=1)
    return _baselines[key]


@pytest.mark.parametrize("store", STORES)
@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_notebook_is_byte_identical_across_worker_counts(
    table, backend, kernel, workers, store
):
    if store == "shm" and not shm_available():
        pytest.skip("shared memory unavailable on this platform")
    base_run, base_json = _baseline(table, backend, kernel)
    run, ipynb_json = _run(table, backend, kernel, workers, store)

    assert ipynb_json == base_json
    assert [str(q.query) for q in run.selected] == [
        str(q.query) for q in base_run.selected
    ]
    assert _normalized_report(run) == _normalized_report(base_run)
    # The un-normalized reports do differ where they should.
    assert run.report.workers == workers
    assert base_run.report.workers == 1
    assert run.report.backend == backend
    assert run.report.stats_kernel == kernel
