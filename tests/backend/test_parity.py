"""Backend parity: the whole pipeline must not care which engine ran it.

The acceptance bar of the backend split: on the same dataset and
configuration, the columnar and sqlite backends produce identical
supported-query sets, interestingness scores within 1e-9, and rendered
notebooks with identical cell structure.
"""

import dataclasses

import pytest

from repro import obs
from repro.backend import BACKEND_NAMES
from repro.datasets import covid_table
from repro.generation import GenerationConfig, NotebookGenerator, SamplingSpec
from repro.insights.significance import SignificanceConfig
from repro.notebook.cells import MarkdownCell, SQLCell
from repro.relational import table_from_arrays
from repro.runtime import resilient_generate, resilient_render
from repro.stats import derive_rng


@pytest.fixture(autouse=True)
def isolated_obs():
    """Keep this module's pipeline runs out of the ambient obs state."""
    with obs.capture():
        yield


def synthetic_table():
    rng = derive_rng(99, "backend-parity")
    n = 300
    b = rng.choice(["b0", "b1", "b2"], n)
    c = rng.choice(["c0", "c1"], n)
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2", "a3"], n),
            "b": b,
            "c": c,
        },
        {"m": rng.normal(20, 3, n) + (b == "b0") * 15.0},
    )


DATASETS = {
    "synthetic": synthetic_table,
    "covid": lambda: covid_table(500),
}


def fast_config(**overrides) -> GenerationConfig:
    # 200 permutations: enough resolution for the BH-corrected minimum
    # p-value to clear the threshold on the small synthetic table.
    base = GenerationConfig(
        significance=SignificanceConfig(n_permutations=200),
        **overrides,
    )
    return base


def run_under(backend_name: str, table, config: GenerationConfig):
    generator = NotebookGenerator(dataclasses.replace(config, backend=backend_name))
    return generator.generate(table, budget=6)


def assert_runs_match(runs):
    reference = runs[BACKEND_NAMES[0]]
    for name, run in runs.items():
        if run is reference:
            continue
        ref_q = reference.outcome.queries
        got_q = run.outcome.queries
        assert [g.query for g in got_q] == [g.query for g in ref_q], name
        for got, ref in zip(got_q, ref_q):
            assert abs(got.interest - ref.interest) <= 1e-9, name
            assert got.tuples_aggregated == ref.tuples_aggregated
            assert got.n_groups == ref.n_groups
        assert [g.query for g in run.selected] == [g.query for g in reference.selected]


@pytest.mark.parametrize("dataset", sorted(DATASETS))
@pytest.mark.parametrize("evaluator", ["pairwise", "setcover"])
def test_pipeline_parity(dataset, evaluator):
    table = DATASETS[dataset]()
    config = fast_config(evaluator=evaluator)
    runs = {name: run_under(name, table, config) for name in BACKEND_NAMES}
    assert_runs_match(runs)


def test_pipeline_parity_with_sampling():
    table = DATASETS["covid"]()
    config = fast_config(sampling=SamplingSpec("random", 0.5))
    runs = {name: run_under(name, table, config) for name in BACKEND_NAMES}
    assert_runs_match(runs)


def test_notebook_cell_structure_identical():
    table = DATASETS["synthetic"]()
    notebooks = {}
    for name in BACKEND_NAMES:
        run = run_under(name, table, fast_config())
        notebooks[name] = run.to_notebook(table=table, table_name="dataset")
    reference = notebooks[BACKEND_NAMES[0]]
    assert reference.n_queries > 0
    for name, notebook in notebooks.items():
        assert [type(c) for c in notebook.cells] == [type(c) for c in reference.cells], name
        for got, ref in zip(notebook.cells, reference.cells):
            if isinstance(got, SQLCell):
                assert got.sql == ref.sql
            else:
                assert isinstance(got, MarkdownCell)
                assert got.text == ref.text


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_stats_kernel_parity_per_backend(backend):
    """The kernel switch changes nothing observable: same tested insights,
    byte-identical serialized notebooks, under either execution backend."""
    from repro.insights.significance import KERNEL_NAMES
    from repro.notebook import to_ipynb_json

    table = DATASETS["synthetic"]()
    runs, payloads = {}, {}
    for kernel in KERNEL_NAMES:
        config = GenerationConfig(
            significance=SignificanceConfig(n_permutations=200, kernel=kernel),
        )
        run = run_under(backend, table, config)
        runs[kernel] = run
        notebook = run.to_notebook(table=table, table_name="dataset")
        payloads[kernel] = to_ipynb_json(notebook).encode("utf-8")
    reference = runs["batched"]
    assert reference.outcome.queries, "parity test needs a non-empty run"
    for kernel, run in runs.items():
        assert [
            (t.candidate.key, t.statistic, t.p_value, t.p_adjusted)
            for t in run.outcome.significant
        ] == [
            (t.candidate.key, t.statistic, t.p_value, t.p_adjusted)
            for t in reference.outcome.significant
        ], kernel
        assert payloads[kernel] == payloads["batched"], kernel


def test_resilient_run_reports_backend_statements():
    table = DATASETS["synthetic"]()
    reports = {}
    for name in BACKEND_NAMES:
        run = resilient_generate(
            table, fast_config(backend=name), budget=5, solver="heuristic"
        )
        resilient_render(run, table, table_name="dataset")
        assert run.report is not None
        assert run.report.backend == name
        reports[name] = run.report
    assert reports["columnar"].backend_statements == 0
    assert reports["sqlite"].backend_statements > 0
    # The backend line is part of the human-readable summary.
    assert any("sqlite" in line for line in reports["sqlite"].summary_lines())
