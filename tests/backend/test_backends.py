"""Unit tests for repro.backend — contract, pushdown accounting, threading."""

import threading

import numpy as np
import pytest

from repro import obs
from repro.backend import (
    BACKEND_NAMES,
    BackendError,
    ColumnarBackend,
    ExecutionBackend,
    SqliteBackend,
    as_backend,
    create_backend,
    default_backend_name,
)
from repro.generation import GenerationConfig, PairwiseEvaluator
from repro.errors import QueryError
from repro.queries import ComparisonQuery
from repro.relational import table_from_arrays


@pytest.fixture(autouse=True)
def isolated_obs():
    """Keep this module's backend activity out of the ambient obs state."""
    with obs.capture():
        yield


@pytest.fixture
def table():
    return table_from_arrays(
        {
            "region": ["n", "n", "s", "s", "e", None],
            "kind": ["x", "y", "x", "y", "x", "y"],
        },
        {"amount": [1.0, 2.0, 3.0, 4.0, None, 6.0]},
    )


@pytest.fixture(params=["columnar", "sqlite"])
def backend(request, table):
    built = create_backend(request.param, table)
    yield built
    built.close()


class TestFactory:
    def test_create_by_name(self, table):
        assert isinstance(create_backend("columnar", table), ColumnarBackend)
        sq = create_backend("sqlite", table)
        assert isinstance(sq, SqliteBackend)
        sq.close()

    def test_unknown_name(self, table):
        with pytest.raises(BackendError):
            create_backend("duckdb", table)

    def test_protocol_conformance(self, table):
        for name in BACKEND_NAMES:
            built = create_backend(name, table)
            assert isinstance(built, ExecutionBackend)
            built.close()

    def test_as_backend_wraps_tables(self, table):
        wrapped = as_backend(table)
        assert isinstance(wrapped, ColumnarBackend)
        assert as_backend(wrapped) is wrapped

    def test_default_from_environment(self, table, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "columnar"
        monkeypatch.setenv("REPRO_BACKEND", "sqlite")
        assert default_backend_name() == "sqlite"
        assert GenerationConfig().backend == "sqlite"
        monkeypatch.setenv("REPRO_BACKEND", "oracle")
        with pytest.raises(BackendError):
            default_backend_name()

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(QueryError):
            GenerationConfig(backend="duckdb")


class TestContract:
    def test_table_and_rows(self, backend, table):
        assert backend.table is table
        assert backend.n_rows == 6

    def test_distinct_values_sorted_non_null(self, backend):
        assert backend.distinct_values("region") == ("e", "n", "s")

    def test_scan_round_trip(self, backend, table):
        assert backend.scan() == table  # Table.__eq__ treats NaN == NaN
        assert backend.scan(["kind"]).to_dict() == {"kind": ["x", "y", "x", "y", "x", "y"]}

    def test_filter_equals(self, backend):
        filtered = backend.filter_equals("region", "s")
        assert filtered.n_rows == 2
        assert list(filtered.measure_values("amount")) == [3.0, 4.0]

    def test_aggregate_handles_nulls(self, backend):
        agg = backend.materialize_aggregate(("region",), ["amount"])
        summary = agg.summaries["amount"]
        by_code = dict(zip((int(c) for c in agg.keys[0]), summary.count))
        # NULL region forms its own group (code -1); NULL measure not counted.
        assert by_code[-1] == 1.0
        e_code = table_code(backend.table, "region", "e")
        assert by_code[e_code] == 0.0

    def test_evaluate_comparison(self, backend):
        query = ComparisonQuery("region", "kind", "x", "y", "amount", "sum")
        result = backend.evaluate_comparison(query)
        assert result.groups == ("n", "s")
        np.testing.assert_allclose(result.x, [1.0, 3.0])
        np.testing.assert_allclose(result.y, [2.0, 4.0])

    def test_capability_flags(self, backend):
        assert backend.capabilities.sql_pushdown == (backend.name == "sqlite")
        assert backend.capabilities.additive_summaries


def table_code(table, attribute, label):
    return table.categorical_column(attribute).code_of(label)


class TestStatementAccounting:
    def test_columnar_never_sends_statements(self, table):
        backend = ColumnarBackend(table)
        backend.distinct_values("region")
        backend.materialize_aggregate(("region", "kind"))
        backend.evaluate_comparison(ComparisonQuery("region", "kind", "x", "y", "amount", "avg"))
        assert backend.statements_executed == 0

    def test_sqlite_counts_each_statement(self, table):
        with SqliteBackend(table) as backend:
            assert backend.statements_executed == 0  # the load is not a query
            backend.distinct_values("region")
            backend.materialize_aggregate(("region", "kind"))
            # The comparison needs the same (region, kind) group-by; the
            # cross-stage aggregate cache serves it from the all-measure
            # materialization above, so no further statement is pushed down.
            backend.evaluate_comparison(
                ComparisonQuery("region", "kind", "x", "y", "amount", "avg")
            )
            assert backend.statements_executed == 2

    def test_sqlite_cache_saves_repeat_statements(self, table):
        with SqliteBackend(table) as backend:
            backend.materialize_aggregate(("region", "kind"), ["amount"])
            before = backend.statements_executed
            again = backend.materialize_aggregate(("kind", "region"), ["amount"])
            assert backend.statements_executed == before
            assert again is backend.materialize_aggregate(("region", "kind"), ["amount"])

    def test_sqlite_statement_counter_metric(self, table):
        with obs.capture() as (_, metrics):
            with SqliteBackend(table) as backend:
                backend.distinct_values("kind")
            assert metrics.counter("backend.statements_executed").value == 1

    def test_closed_backend_refuses_statements(self, table):
        backend = SqliteBackend(table)
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(BackendError):
            backend.distinct_values("region")


class TestSqlIdentifierSafety:
    def test_reserved_and_spaced_names_round_trip(self):
        table = table_from_arrays(
            {"group": ["a", "b", "a"], "order by": ["u", "v", "u"]},
            {"select": [1.0, 2.0, 3.0]},
        )
        with SqliteBackend(table) as backend:
            assert backend.distinct_values("group") == ("a", "b")
            agg = backend.materialize_aggregate(("group", "order by"), ["select"])
            assert agg.n_groups == 2
            assert backend.filter_equals("group", "a").n_rows == 2


class TestPairwiseEvaluatorRace:
    def test_concurrent_same_pair_builds_once(self, monkeypatch):
        """The check-then-build race: N threads, one pair, one build."""
        rng = np.random.default_rng(7)
        n = 400
        table = table_from_arrays(
            {"a": rng.choice(["a0", "a1", "a2"], n), "b": rng.choice(["b0", "b1"], n)},
            {"m": rng.normal(0, 1, n)},
        )
        backend = ColumnarBackend(table)
        builds = []
        build_gate = threading.Barrier(8, timeout=10)
        original = ColumnarBackend.materialize_aggregate

        def counted(self, attributes, measures=None):
            builds.append(tuple(attributes))
            return original(self, attributes, measures)

        monkeypatch.setattr(ColumnarBackend, "materialize_aggregate", counted)
        evaluator = PairwiseEvaluator(backend)
        query = ComparisonQuery("a", "b", "b0", "b1", "m", "avg")
        errors = []

        def worker():
            try:
                build_gate.wait()
                evaluator.evaluate(query)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(builds) == 1
        assert evaluator.queries_sent == 1

    def test_failed_build_releases_reservation(self, table):
        backend = ColumnarBackend(table)
        evaluator = PairwiseEvaluator(backend)
        bad = ComparisonQuery("region", "missing", "x", "y", "amount", "avg")
        with pytest.raises(Exception):
            evaluator.evaluate(bad)
        # The key is released: a later good query on the same backend works.
        good = ComparisonQuery("region", "kind", "x", "y", "amount", "avg")
        assert evaluator.evaluate(good).n_groups > 0
