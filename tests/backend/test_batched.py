"""Batched multi-aggregate compilation: exact parity with the per-set path.

The UNION-ALL grouping-set statement (sqlite) and the fused shared-scan
build (columnar) must return aggregates element-for-element identical to
per-set ``materialize_aggregate`` calls — including NULL group values,
all-NULL measure groups, and category dictionary order — while collapsing
the sqlite statement count from one per set to one per chunk.
"""

import threading

import numpy as np
import pytest

from repro.backend import (
    AggregateRequest,
    BackendError,
    ColumnarBackend,
    SqliteBackend,
    materialize_batch,
)
from repro.backend.base import parse_mqo_flag
from repro.backend.sqlite import _MAX_BATCH_BRANCHES
from repro.relational import table_from_arrays
from repro.stats import derive_rng

BACKENDS = {"columnar": ColumnarBackend, "sqlite": SqliteBackend}


def plain_table():
    rng = derive_rng(31, "batched-plain")
    n = 200
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2"], n),
            "b": rng.choice(["b0", "b1", "b2", "b3"], n),
            "c": rng.choice(["c0", "c1"], n),
        },
        {"m": rng.normal(5, 2, n), "k": rng.normal(-1, 0.5, n)},
    )


def null_table():
    """NULL group values (None categoricals) and an all-NULL measure group."""
    rng = derive_rng(32, "batched-nulls")
    n = 120
    a = [None if i % 7 == 0 else f"a{i % 3}" for i in range(n)]
    b = [f"b{i % 2}" if i % 5 else None for i in range(n)]
    m = rng.normal(0, 1, n)
    # Every row of group a == "a1" has a NULL measure: SUM/MIN/MAX over the
    # group come back NULL from SQLite and must demux to 0.0 / NaN.
    m = np.where(np.array([v == "a1" for v in a]), np.nan, m)
    return table_from_arrays({"a": a, "b": b}, {"m": m})


def assert_aggregates_equal(got, ref):
    assert got.attributes == ref.attributes
    assert got.categories == ref.categories
    assert len(got.keys) == len(ref.keys)
    # Group-row order is an implementation detail; compare as sorted key sets.
    got_order = np.lexsort(tuple(got.keys)) if got.keys else slice(None)
    ref_order = np.lexsort(tuple(ref.keys)) if ref.keys else slice(None)
    for got_axis, ref_axis in zip(got.keys, ref.keys):
        np.testing.assert_array_equal(got_axis[got_order], ref_axis[ref_order])
    assert set(got.summaries) == set(ref.summaries)
    for name, got_summary in got.summaries.items():
        ref_summary = ref.summaries[name]
        for field in ("count", "total", "total_sq", "minimum", "maximum"):
            np.testing.assert_array_equal(
                getattr(got_summary, field)[got_order],
                getattr(ref_summary, field)[ref_order],
                err_msg=f"{name}.{field}",
            )


REQUESTS = [
    AggregateRequest.of(("a", "b")),
    AggregateRequest.of(("b", "c")),
    AggregateRequest.of(("a", "c"), measures=("m",)),
    AggregateRequest.of(("a",)),
]


class TestBatchParity:
    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    def test_batched_equals_per_set(self, backend_name):
        # Separate tables so the shared per-table cache cannot leak results
        # between the batched build and the per-set oracle.
        batched = BACKENDS[backend_name](plain_table())
        oracle = BACKENDS[backend_name](plain_table())
        results = batched.materialize_aggregates(REQUESTS)
        assert len(results) == len(REQUESTS)
        for request, got in zip(REQUESTS, results):
            ref = oracle.materialize_aggregate(request.attributes, request.measures)
            assert_aggregates_equal(got, ref)

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    def test_null_groups_and_all_null_measures(self, backend_name):
        requests = [
            AggregateRequest.of(("a", "b")),
            AggregateRequest.of(("a",)),
            AggregateRequest.of(("b",)),
        ]
        batched = BACKENDS[backend_name](null_table())
        oracle = BACKENDS[backend_name](null_table())
        for request, got in zip(requests, batched.materialize_aggregates(requests)):
            ref = oracle.materialize_aggregate(request.attributes, request.measures)
            assert_aggregates_equal(got, ref)
        # The NULL group really is present (code -1): padding NULLs in the
        # compound statement must not swallow it.
        aggregate = batched.materialize_aggregate(("a",))
        assert -1 in aggregate.keys[0]
        # The all-NULL-measure group carries count 0 and NaN extrema.
        null_measure_group = aggregate.categories["a"].index("a1")
        at = int(np.flatnonzero(aggregate.keys[0] == null_measure_group)[0])
        summary = aggregate.summaries["m"]
        assert summary.count[at] == 0.0
        assert summary.total[at] == 0.0
        assert np.isnan(summary.minimum[at]) and np.isnan(summary.maximum[at])

    def test_cross_backend_category_order(self):
        """Both compilers preserve the base table's dictionary order."""
        results = {
            name: cls(plain_table()).materialize_aggregates(REQUESTS)
            for name, cls in BACKENDS.items()
        }
        for got, ref in zip(results["sqlite"], results["columnar"]):
            assert got.categories == ref.categories


class TestStatementCollapse:
    def test_one_statement_per_batch(self):
        backend = SqliteBackend(plain_table())
        before = backend.statements_executed
        backend.materialize_aggregates(REQUESTS)
        assert backend.statements_executed == before + 1

    def test_per_set_path_costs_one_statement_each(self):
        backend = SqliteBackend(plain_table())
        before = backend.statements_executed
        for request in REQUESTS:
            backend.materialize_aggregate(request.attributes, request.measures)
        assert backend.statements_executed == before + len(REQUESTS)

    def test_chunking_beyond_compound_limit(self):
        """More sets than _MAX_BATCH_BRANCHES split into ceil(n/64) statements."""
        rng = derive_rng(33, "batched-wide")
        n = 60
        table = table_from_arrays(
            {f"a{i}": rng.choice(["x", "y"], n) for i in range(13)},
            {"m": rng.normal(0, 1, n)},
        )
        names = sorted(table.schema.categorical_names)
        requests = [
            AggregateRequest.of((u, v))
            for i, u in enumerate(names)
            for v in names[i + 1 :]
        ]
        assert len(requests) > _MAX_BATCH_BRANCHES
        backend = SqliteBackend(table)
        before = backend.statements_executed
        results = backend.materialize_aggregates(requests)
        assert len(results) == len(requests)
        expected = -(-len(requests) // _MAX_BATCH_BRANCHES)
        assert backend.statements_executed == before + expected

    def test_cache_hits_never_reach_the_engine(self):
        backend = SqliteBackend(plain_table())
        backend.materialize_aggregate(("a", "b"))
        before = backend.statements_executed
        results = backend.materialize_aggregates(
            [AggregateRequest.of(("a", "b")), AggregateRequest.of(("b", "c"))]
        )
        # Only the residual ("b", "c") set is compiled; the hit is served.
        assert backend.statements_executed == before + 1
        assert len(results) == 2

    def test_duplicate_requests_build_once(self):
        backend = SqliteBackend(plain_table())
        before = backend.statements_executed
        results = backend.materialize_aggregates(
            [AggregateRequest.of(("a", "b")), AggregateRequest.of(("b", "a"))]
        )
        assert backend.statements_executed == before + 1
        assert_aggregates_equal(results[0], results[1])

    def test_single_arm_chunk_is_a_plain_statement(self):
        backend = SqliteBackend(plain_table())
        results = backend.materialize_aggregates([AggregateRequest.of(("a", "b"))])
        ref = SqliteBackend(plain_table()).materialize_aggregate(("a", "b"))
        assert_aggregates_equal(results[0], ref)


class TestBatchCache:
    def test_concurrent_batches_single_flight(self):
        backend = SqliteBackend(plain_table())
        barrier = threading.Barrier(2)
        outputs: dict[int, list] = {}

        def worker(slot: int):
            barrier.wait()
            outputs[slot] = backend.materialize_aggregates(REQUESTS)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got, ref in zip(outputs[0], outputs[1]):
            assert_aggregates_equal(got, ref)
        # Each distinct set was compiled at most once across both threads.
        assert backend.statements_executed <= len(REQUESTS)


class TestFallback:
    def test_materialize_batch_falls_back_per_set(self):
        class PerSetOnly:
            """Minimal backend without the batched_aggregates capability."""

            def __init__(self):
                self.capabilities = object()  # no batched_aggregates attribute
                self.calls = []
                self._backend = ColumnarBackend(plain_table())

            def materialize_aggregate(self, attributes, measures=None):
                self.calls.append((tuple(attributes), measures))
                return self._backend.materialize_aggregate(attributes, measures)

        stub = PerSetOnly()
        results = materialize_batch(stub, REQUESTS)
        assert len(results) == len(REQUESTS)
        assert stub.calls == [(r.attributes, r.measures) for r in REQUESTS]

    def test_empty_batch_is_free(self):
        backend = SqliteBackend(plain_table())
        before = backend.statements_executed
        assert materialize_batch(backend, []) == []
        assert backend.statements_executed == before


class TestFlagParsing:
    @pytest.mark.parametrize("raw", [None, "", "1", "true", "ON", "yes"])
    def test_on_values(self, raw):
        assert parse_mqo_flag(raw) is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no"])
    def test_off_values(self, raw):
        assert parse_mqo_flag(raw) is False

    def test_garbage_rejected(self):
        with pytest.raises(BackendError, match="REPRO_MQO"):
            parse_mqo_flag("maybe")

    def test_request_canonicalizes_attribute_order(self):
        assert AggregateRequest.of(("b", "a")).attributes == ("a", "b")
        assert AggregateRequest.of(("a",), measures=["m"]).measures == ("m",)
