"""MQO parity: batching changes statement counts, never results.

The batched multi-aggregate compiler must be invisible in every output:
with ``mqo`` on vs off the pipeline produces byte-identical serialized
notebooks and interestingness scores within 1e-9, under either execution
backend, either stats kernel, and worker counts 1 and 2.
"""

import dataclasses

import pytest

from repro import obs
from repro.backend import BACKEND_NAMES
from repro.generation import GenerationConfig, NotebookGenerator
from repro.insights.significance import KERNEL_NAMES, SignificanceConfig
from repro.notebook import to_ipynb_json
from repro.parallel import ParallelConfig
from repro.relational import table_from_arrays
from repro.runtime import resilient_generate
from repro.stats import derive_rng


@pytest.fixture(autouse=True)
def isolated_obs():
    with obs.capture():
        yield


def synthetic_table():
    rng = derive_rng(99, "backend-parity")
    n = 300
    b = rng.choice(["b0", "b1", "b2"], n)
    c = rng.choice(["c0", "c1"], n)
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2", "a3"], n),
            "b": b,
            "c": c,
        },
        {"m": rng.normal(20, 3, n) + (b == "b0") * 15.0},
    )


def run_once(config: GenerationConfig, mqo: bool):
    table = synthetic_table()
    generator = NotebookGenerator(dataclasses.replace(config, mqo=mqo))
    run = generator.generate(table, budget=6)
    notebook = run.to_notebook(table=table, table_name="dataset")
    return run, to_ipynb_json(notebook).encode("utf-8")


def assert_mqo_invisible(config: GenerationConfig):
    run_on, payload_on = run_once(config, mqo=True)
    run_off, payload_off = run_once(config, mqo=False)
    assert run_on.outcome.queries, "parity test needs a non-empty run"
    assert [g.query for g in run_on.outcome.queries] == [
        g.query for g in run_off.outcome.queries
    ]
    for got, ref in zip(run_on.outcome.queries, run_off.outcome.queries):
        assert abs(got.interest - ref.interest) <= 1e-9
        assert got.tuples_aggregated == ref.tuples_aggregated
        assert got.n_groups == ref.n_groups
    # queries_sent counts logical group-by sets: invariant under batching.
    assert (
        run_on.outcome.counters["aggregation_queries_sent"]
        == run_off.outcome.counters["aggregation_queries_sent"]
    )
    assert payload_on == payload_off


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("kernel", sorted(KERNEL_NAMES))
def test_mqo_parity_backends_and_kernels(backend, kernel):
    assert_mqo_invisible(
        GenerationConfig(
            significance=SignificanceConfig(n_permutations=200, kernel=kernel),
            backend=backend,
        )
    )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("workers", [1, 2])
def test_mqo_parity_across_worker_counts(backend, workers):
    assert_mqo_invisible(
        GenerationConfig(
            significance=SignificanceConfig(n_permutations=200),
            backend=backend,
            parallel=ParallelConfig(workers=workers),
        )
    )


@pytest.mark.parametrize("evaluator", ["pairwise", "setcover"])
def test_mqo_parity_per_evaluator(evaluator):
    assert_mqo_invisible(
        GenerationConfig(
            significance=SignificanceConfig(n_permutations=200),
            backend="sqlite",
            evaluator=evaluator,
        )
    )


def test_run_report_records_the_plan():
    table = synthetic_table()
    config = GenerationConfig(
        significance=SignificanceConfig(n_permutations=200),
        backend="sqlite",
        mqo=True,  # explicit: the test must hold on the REPRO_MQO=0 CI leg
    )
    run = resilient_generate(table, config, budget=5, solver="heuristic")
    assert run.report is not None
    assert run.report.mqo is True
    assert run.report.mqo_plan is not None
    assert run.report.mqo_plan["sets"] >= run.report.mqo_plan["batches"] >= 1
    assert any("mqo=" in line for line in run.report.summary_lines())

    off = resilient_generate(
        table, dataclasses.replace(config, mqo=False), budget=5, solver="heuristic"
    )
    assert off.report is not None
    assert off.report.mqo is False
    assert any("mqo=off" in line for line in off.report.summary_lines())
