"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_sql_syntax_error_carries_position(self):
        err = errors.SQLSyntaxError("boom", line=3, column=7)
        assert err.line == 3 and err.column == 7
        assert "line 3" in str(err) and "column 7" in str(err)

    def test_sql_syntax_error_without_position(self):
        err = errors.SQLSyntaxError("boom")
        assert "line" not in str(err)

    def test_solver_timeout_carries_incumbent(self):
        err = errors.SolverTimeout("slow", incumbent="partial")
        assert err.incumbent == "partial"

    def test_specific_catches(self):
        with pytest.raises(errors.ReproError):
            raise errors.PlanningError("x")
        with pytest.raises(errors.QueryError):
            raise errors.SQLSyntaxError("x")
        with pytest.raises(errors.StatisticsError):
            raise errors.SamplingError("x")
        with pytest.raises(errors.TAPError):
            raise errors.SolverTimeout("x")
