"""Unit tests for repro.generation.evaluators — all strategies must agree."""

import numpy as np
import pytest

from repro.generation import (
    NaiveEvaluator,
    PairwiseEvaluator,
    SetCoverEvaluator,
    build_evaluator,
)
from repro.queries import ComparisonQuery
from repro.relational import table_from_arrays
from repro.stats import derive_rng


@pytest.fixture
def table():
    rng = derive_rng(66, "evaluators")
    n = 250
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2"], n),
            "b": rng.choice(["b0", "b1", "b2"], n),
            "c": rng.choice(["c0", "c1"], n),
        },
        {"m": rng.normal(10, 2, n)},
    )


QUERIES = [
    ComparisonQuery("a", "b", "b0", "b1", "m", "sum"),
    ComparisonQuery("a", "b", "b0", "b2", "m", "avg"),
    ComparisonQuery("c", "b", "b1", "b2", "m", "avg"),
    ComparisonQuery("b", "a", "a0", "a1", "m", "sum"),
    ComparisonQuery("a", "c", "c0", "c1", "m", "var"),
]


class TestAgreement:
    def test_all_three_strategies_agree(self, table):
        naive = NaiveEvaluator(table)
        pairwise = PairwiseEvaluator(table)
        setcover = SetCoverEvaluator(table)
        for query in QUERIES:
            results = [e.evaluate(query) for e in (naive, pairwise, setcover)]
            base = results[0]
            for other in results[1:]:
                assert other.groups == base.groups
                np.testing.assert_allclose(other.x, base.x, rtol=1e-9, equal_nan=True)
                np.testing.assert_allclose(other.y, base.y, rtol=1e-9, equal_nan=True)
                assert other.tuples_aggregated == base.tuples_aggregated


class TestQueryCounting:
    def test_naive_counts_every_call(self, table):
        naive = NaiveEvaluator(table)
        for query in QUERIES:
            naive.evaluate(query)
            naive.evaluate(query)
        assert naive.queries_sent == 2 * len(QUERIES)

    def test_pairwise_counts_distinct_pairs(self, table):
        pairwise = PairwiseEvaluator(table)
        for query in QUERIES:
            pairwise.evaluate(query)
            pairwise.evaluate(query)
        distinct_pairs = {frozenset((q.group_by, q.selection_attribute)) for q in QUERIES}
        assert pairwise.queries_sent == len(distinct_pairs)

    def test_setcover_sends_cover_queries_up_front(self, table):
        setcover = SetCoverEvaluator(table)
        sent_before = setcover.queries_sent
        for query in QUERIES:
            setcover.evaluate(query)
        assert setcover.queries_sent == sent_before  # nothing extra at query time
        assert sent_before >= 1

    def test_setcover_fewer_queries_than_pairwise_worst_case(self, table):
        setcover = SetCoverEvaluator(table)
        n = len(table.schema.categorical_names)
        assert setcover.queries_sent <= n * (n - 1) / 2


class TestSetCoverSpecifics:
    def test_chosen_sets_cover_all_pairs(self, table):
        from repro.generation import pairs_covered
        from repro.relational import pair_group_by_sets

        setcover = SetCoverEvaluator(table)
        covered = set()
        for s in setcover.chosen_sets:
            covered |= pairs_covered(s)
        assert set(pair_group_by_sets(table.schema.categorical_names)) <= covered

    def test_memory_budget_forces_pairs(self, table):
        tight = SetCoverEvaluator(table, memory_budget_bytes=1)
        assert all(len(s) == 2 for s in tight.chosen_sets)
        # Still answers everything.
        result = tight.evaluate(QUERIES[0])
        assert result.n_groups > 0

    def test_cache_bytes_reported(self, table):
        setcover = SetCoverEvaluator(table)
        assert setcover.cache_bytes > 0


class TestFactory:
    def test_dispatch(self, table):
        assert isinstance(build_evaluator(table, "naive"), NaiveEvaluator)
        assert isinstance(build_evaluator(table, "pairwise"), PairwiseEvaluator)
        assert isinstance(build_evaluator(table, "setcover"), SetCoverEvaluator)

    def test_unknown_kind(self, table):
        with pytest.raises(ValueError):
            build_evaluator(table, "quantum")
