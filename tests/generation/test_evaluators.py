"""Unit tests for repro.generation.evaluators — all strategies must agree."""

import threading

import numpy as np
import pytest

from repro.backend import BackendError, ColumnarBackend
from repro.generation import (
    NaiveEvaluator,
    PairwiseEvaluator,
    SetCoverEvaluator,
    build_evaluator,
)
from repro.generation.evaluators import (
    DEFAULT_MAX_SET_SIZE,
    MAX_BUILD_ATTEMPTS,
    _cap_candidates,
)
from repro.queries import ComparisonQuery
from repro.relational import table_from_arrays
from repro.stats import derive_rng


@pytest.fixture
def table():
    rng = derive_rng(66, "evaluators")
    n = 250
    return table_from_arrays(
        {
            "a": rng.choice(["a0", "a1", "a2"], n),
            "b": rng.choice(["b0", "b1", "b2"], n),
            "c": rng.choice(["c0", "c1"], n),
        },
        {"m": rng.normal(10, 2, n)},
    )


QUERIES = [
    ComparisonQuery("a", "b", "b0", "b1", "m", "sum"),
    ComparisonQuery("a", "b", "b0", "b2", "m", "avg"),
    ComparisonQuery("c", "b", "b1", "b2", "m", "avg"),
    ComparisonQuery("b", "a", "a0", "a1", "m", "sum"),
    ComparisonQuery("a", "c", "c0", "c1", "m", "var"),
]


class TestAgreement:
    def test_all_three_strategies_agree(self, table):
        naive = NaiveEvaluator(table)
        pairwise = PairwiseEvaluator(table)
        setcover = SetCoverEvaluator(table)
        for query in QUERIES:
            results = [e.evaluate(query) for e in (naive, pairwise, setcover)]
            base = results[0]
            for other in results[1:]:
                assert other.groups == base.groups
                np.testing.assert_allclose(other.x, base.x, rtol=1e-9, equal_nan=True)
                np.testing.assert_allclose(other.y, base.y, rtol=1e-9, equal_nan=True)
                assert other.tuples_aggregated == base.tuples_aggregated


class TestQueryCounting:
    def test_naive_counts_every_call(self, table):
        naive = NaiveEvaluator(table)
        for query in QUERIES:
            naive.evaluate(query)
            naive.evaluate(query)
        assert naive.queries_sent == 2 * len(QUERIES)

    def test_pairwise_counts_distinct_pairs(self, table):
        pairwise = PairwiseEvaluator(table)
        for query in QUERIES:
            pairwise.evaluate(query)
            pairwise.evaluate(query)
        distinct_pairs = {frozenset((q.group_by, q.selection_attribute)) for q in QUERIES}
        assert pairwise.queries_sent == len(distinct_pairs)

    def test_setcover_sends_cover_queries_up_front(self, table):
        setcover = SetCoverEvaluator(table)
        sent_before = setcover.queries_sent
        for query in QUERIES:
            setcover.evaluate(query)
        assert setcover.queries_sent == sent_before  # nothing extra at query time
        assert sent_before >= 1

    def test_setcover_fewer_queries_than_pairwise_worst_case(self, table):
        setcover = SetCoverEvaluator(table)
        n = len(table.schema.categorical_names)
        assert setcover.queries_sent <= n * (n - 1) / 2


class TestSetCoverSpecifics:
    def test_chosen_sets_cover_all_pairs(self, table):
        from repro.generation import pairs_covered
        from repro.relational import pair_group_by_sets

        setcover = SetCoverEvaluator(table)
        covered = set()
        for s in setcover.chosen_sets:
            covered |= pairs_covered(s)
        assert set(pair_group_by_sets(table.schema.categorical_names)) <= covered

    def test_memory_budget_forces_pairs(self, table):
        tight = SetCoverEvaluator(table, memory_budget_bytes=1)
        assert all(len(s) == 2 for s in tight.chosen_sets)
        # Still answers everything.
        result = tight.evaluate(QUERIES[0])
        assert result.n_groups > 0

    def test_cache_bytes_reported(self, table):
        setcover = SetCoverEvaluator(table)
        assert setcover.cache_bytes > 0


class TestPlanning:
    def test_planned_pairs_cost_nothing_at_evaluate_time(self, table):
        pairwise = PairwiseEvaluator(table, mqo=True)
        pairwise.plan([("a", "b"), ("b", "c")])
        sent = pairwise.queries_sent
        assert sent == 2
        pairwise.evaluate(QUERIES[0])  # (a, b): planned
        pairwise.evaluate(QUERIES[2])  # (c, b): planned
        assert pairwise.queries_sent == sent
        pairwise.evaluate(QUERIES[4])  # (a, c): unplanned, lazy build
        assert pairwise.queries_sent == sent + 1

    def test_plan_is_a_noop_with_mqo_off(self, table):
        pairwise = PairwiseEvaluator(table, mqo=False)
        pairwise.plan([("a", "b")])
        assert pairwise.queries_sent == 0
        pairwise.evaluate(QUERIES[0])
        assert pairwise.queries_sent == 1

    def test_plan_skips_already_covered_pairs(self, table):
        pairwise = PairwiseEvaluator(table, mqo=True)
        pairwise.evaluate(QUERIES[0])  # builds (a, b) lazily
        pairwise.plan([("a", "b"), ("a", "b"), ("b", "c")])
        assert pairwise.queries_sent == 2  # only (b, c) was new

    def test_planned_results_match_lazy_results(self, table):
        planned = PairwiseEvaluator(table, mqo=True)
        planned.plan(
            [(q.group_by, q.selection_attribute) for q in QUERIES]
        )
        lazy = PairwiseEvaluator(table, mqo=False)
        for query in QUERIES:
            got, ref = planned.evaluate(query), lazy.evaluate(query)
            assert got.groups == ref.groups
            np.testing.assert_allclose(got.x, ref.x, rtol=1e-9, equal_nan=True)
            np.testing.assert_allclose(got.y, ref.y, rtol=1e-9, equal_nan=True)


class FailingBackend:
    """Delegates everything but fails every aggregation build."""

    def __init__(self, table):
        self._inner = ColumnarBackend(table)
        self.name = self._inner.name
        self.capabilities = self._inner.capabilities
        self.statements_executed = 0
        self.build_attempts = 0

    @property
    def table(self):
        return self._inner.table

    def materialize_aggregate(self, attributes, measures=None):
        self.build_attempts += 1
        raise BackendError("injected build failure")

    def materialize_aggregates(self, requests):
        self.build_attempts += len(requests)
        raise BackendError("injected batch failure")


class TestBoundedRetry:
    def test_builder_failure_propagates_immediately(self, table):
        pairwise = PairwiseEvaluator(FailingBackend(table), mqo=False)
        with pytest.raises(BackendError, match="injected"):
            pairwise.evaluate(QUERIES[0])

    def test_waiters_give_up_after_bounded_attempts(self, table):
        """A waiter whose builder keeps failing must not recurse forever.

        Simulated by pre-registering a completed build event that never
        produced a covering aggregate: each wait returns instantly, the
        cache never covers the pair, and the loop must terminate with a
        BackendError instead of unbounded recursion.
        """
        pairwise = PairwiseEvaluator(table, mqo=False)
        key = frozenset((QUERIES[0].group_by, QUERIES[0].selection_attribute))
        stuck = threading.Event()
        stuck.set()
        pairwise._building[key] = stuck
        with pytest.raises(BackendError, match=f"{MAX_BUILD_ATTEMPTS} attempts"):
            pairwise.evaluate(QUERIES[0])

    def test_failed_plan_releases_reservations(self, table):
        backend = FailingBackend(table)
        pairwise = PairwiseEvaluator(backend, mqo=True)
        with pytest.raises(BackendError, match="injected"):
            pairwise.plan([("a", "b")])
        # The reservation is gone: a later evaluate may become the builder
        # (and sees the backend's error, not a deadlock or a stale wait).
        with pytest.raises(BackendError, match="injected"):
            pairwise.evaluate(QUERIES[0])
        assert backend.build_attempts >= 2


def wide_schema_table(n_attrs: int, n_rows: int = 80):
    rng = derive_rng(67, "evaluators-wide")
    return table_from_arrays(
        {f"a{i:02d}": rng.choice(["x", "y", "z"], n_rows) for i in range(n_attrs)},
        {"m": rng.normal(0, 1, n_rows)},
    )


class TestBoundedEnumeration:
    def test_cap_keeps_all_pairs(self):
        candidates = {
            frozenset(s): float(len(s))
            for s in [("a", "b"), ("a", "c"), ("b", "c"), ("a", "b", "c"),
                      ("a", "b", "d"), ("a", "c", "d"), ("b", "c", "d")]
        }
        capped = _cap_candidates(candidates, max_candidates=4)
        assert all(len(s) == 2 for s in capped if len(s) == 2)
        assert {s for s in candidates if len(s) == 2} <= set(capped)
        assert len(capped) == 4

    def test_cap_prefers_cheapest_larger_sets_deterministically(self):
        candidates = {
            frozenset(("a", "b")): 1.0,
            frozenset(("a", "b", "c")): 5.0,
            frozenset(("a", "b", "d")): 2.0,
        }
        capped = _cap_candidates(candidates, max_candidates=2)
        assert set(capped) == {frozenset(("a", "b")), frozenset(("a", "b", "d"))}

    def test_many_attribute_schema_stays_bounded(self):
        """The satellite regression: 12 attributes (4083 subsets of size
        >= 2 unbounded) must enumerate at most max_candidates sets and
        never pick a set wider than max_set_size."""
        from repro.generation import pairs_covered
        from repro.relational import pair_group_by_sets

        table = wide_schema_table(12)
        setcover = SetCoverEvaluator(table)
        assert all(len(s) <= DEFAULT_MAX_SET_SIZE for s in setcover.chosen_sets)
        names = table.schema.categorical_names
        covered = set()
        for s in setcover.chosen_sets:
            covered |= pairs_covered(s)
        assert set(pair_group_by_sets(names)) <= covered

    def test_tighter_caps_still_cover(self):
        from repro.generation import pairs_covered
        from repro.relational import pair_group_by_sets

        table = wide_schema_table(9)
        n_pairs = 9 * 8 // 2
        setcover = SetCoverEvaluator(table, max_set_size=3, max_candidates=n_pairs)
        # With no room for larger sets, the cover degenerates to pairs.
        assert all(len(s) == 2 for s in setcover.chosen_sets)
        covered = set()
        for s in setcover.chosen_sets:
            covered |= pairs_covered(s)
        assert set(pair_group_by_sets(table.schema.categorical_names)) <= covered


class TestFactory:
    def test_dispatch(self, table):
        assert isinstance(build_evaluator(table, "naive"), NaiveEvaluator)
        assert isinstance(build_evaluator(table, "pairwise"), PairwiseEvaluator)
        assert isinstance(build_evaluator(table, "setcover"), SetCoverEvaluator)

    def test_unknown_kind(self, table):
        with pytest.raises(ValueError):
            build_evaluator(table, "quantum")
