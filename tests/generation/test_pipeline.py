"""Tests for the end-to-end pipeline and the Table 3/7 presets."""

import pytest

from repro.errors import TAPError
from repro.generation import NotebookGenerator, preset, preset_names
from repro.queries import sequence_distance
from repro.datasets import covid_table


@pytest.fixture(scope="module")
def covid_small():
    return covid_table(400)


@pytest.fixture(scope="module")
def default_run(covid_small):
    return NotebookGenerator().generate(covid_small, budget=5)


class TestNotebookGenerator:
    def test_budget_bounds_selection(self, default_run):
        assert len(default_run.selected) <= 5

    def test_selection_matches_solution_order(self, default_run):
        selected_keys = [g.query.key for g in default_run.selected]
        solution_keys = [
            default_run.outcome.queries[i].query.key for i in default_run.solution.indices
        ]
        assert selected_keys == solution_keys

    def test_distance_bound_respected(self, default_run):
        queries = [g.query for g in default_run.selected]
        assert sequence_distance(queries) <= default_run.epsilon_distance + 1e-9

    def test_tap_timing_recorded(self, default_run):
        assert default_run.timings.tap_solving >= 0.0

    def test_exact_solver_on_small_q(self, covid_small):
        from repro.generation import GenerationConfig

        config = GenerationConfig(
            insight_types=("M",), aggregates=("avg",),
            sampling=None,
        )
        generator = NotebookGenerator(config, solver="exact", exact_timeout=30.0)
        run = generator.generate(covid_small, budget=3, epsilon_distance=6.0)
        heuristic = NotebookGenerator(config).generate(
            covid_small, budget=3, epsilon_distance=6.0
        )
        assert run.solution.interest >= heuristic.solution.interest - 1e-9

    def test_exact_refuses_oversized_q(self, covid_small):
        generator = NotebookGenerator(solver="exact", max_exact_queries=3)
        with pytest.raises(TAPError, match="refused"):
            generator.generate(covid_small, budget=5)

    def test_unknown_solver(self):
        with pytest.raises(TAPError):
            NotebookGenerator(solver="annealing")

    def test_to_notebook(self, covid_small, default_run):
        notebook = default_run.to_notebook(covid_small, table_name="covid")
        assert notebook.n_queries == len(default_run.selected)


class TestPresets:
    def test_all_presets_construct(self):
        for name in preset_names():
            generator = preset(name)
            assert isinstance(generator, NotebookGenerator)

    def test_unknown_preset(self):
        with pytest.raises(TAPError, match="unknown preset"):
            preset("wsc-hyperdrive")

    def test_naive_exact_uses_exact_solver(self):
        assert preset("naive-exact").solver == "exact"
        assert preset("wsc-approx").solver == "heuristic"

    def test_sampling_presets_configured(self):
        unb = preset("wsc-unb-approx", sample_rate=0.3)
        assert unb.config.sampling.strategy == "unbalanced"
        assert unb.config.sampling.rate == 0.3
        rand = preset("wsc-rand-approx")
        assert rand.config.sampling.strategy == "random"

    def test_interestingness_variants(self):
        sig = preset("wsc-approx-sig").config.interestingness
        assert not sig.use_conciseness and not sig.use_credibility
        sig_cred = preset("wsc-approx-sig-cred").config.interestingness
        assert not sig_cred.use_conciseness and sig_cred.use_credibility

    def test_wsc_presets_use_setcover(self):
        for name in ("wsc-approx", "wsc-unb-approx", "wsc-rand-approx"):
            assert preset(name).config.evaluator == "setcover"
        for name in ("naive-exact", "naive-approx"):
            assert preset(name).config.evaluator == "pairwise"

    def test_presets_generate_notebooks(self, covid_small):
        for name in ("wsc-approx", "wsc-rand-approx"):
            run = preset(name, sample_rate=0.4).generate(covid_small, budget=4)
            assert len(run.selected) <= 4
