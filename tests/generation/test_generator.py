"""Unit/integration tests for the Algorithm 1 core (repro.generation.generator)."""


import numpy as np
import pytest

from repro.generation import GenerationConfig, SamplingSpec, generate_comparison_queries
from repro.insights import insight_type
from repro.queries import evaluate_comparison
from repro.relational import table_from_arrays
from repro.stats import derive_rng


@pytest.fixture(scope="module")
def planted():
    """b0 dominates on m; country->region FD planted; 4 categoricals."""
    rng = derive_rng(808, "generator")
    n = 500
    b = rng.choice(["b0", "b1", "b2"], n)
    region_of = {"c0": "r0", "c1": "r0", "c2": "r1", "c3": "r1"}
    country = rng.choice(list(region_of), n)
    region = np.array([region_of[c] for c in country])
    other = rng.choice(["o0", "o1"], n)
    m = (
        rng.normal(20, 3, n)
        + np.where(b == "b0", 15.0, 0.0)
        + np.where(region == "r0", 8.0, 0.0)  # gives region/country insights too
        # Interaction: the b0 effect reverses under other=o1, so not every
        # grouping attribute supports every insight (partial credibility).
        + np.where((b == "b0") & (other == "o1"), -18.0, 0.0)
    )
    return table_from_arrays(
        {"b": b, "country": country, "region": region, "other": other}, {"m": m}
    )


@pytest.fixture(scope="module")
def outcome(planted):
    return generate_comparison_queries(planted, GenerationConfig())


class TestOutcomeStructure:
    def test_queries_sorted_by_interest(self, outcome):
        interests = [g.interest for g in outcome.queries]
        assert interests == sorted(interests, reverse=True)

    def test_planted_insight_represented(self, outcome):
        evidence_keys = {g.query.evidence_key for g in outcome.queries}
        assert any(k[0] == "b" for k in evidence_keys)
        assert any(k[0] == "region" and {k[1], k[2]} == {"r0", "r1"} for k in evidence_keys)

    def test_every_query_supports_an_insight(self, outcome):
        assert all(g.supported for g in outcome.queries)

    def test_dedup_unique_keys(self, outcome):
        keys = [g.query.dedup_key for g in outcome.queries]
        assert len(keys) == len(set(keys))

    def test_counters_present_and_consistent(self, outcome):
        c = outcome.counters
        assert c["insights_tested"] >= c["insights_significant"] >= c["insights_after_pruning"]
        assert c["queries_supported"] >= c["queries_final"] == len(outcome.queries)

    def test_timings_populated(self, outcome):
        t = outcome.timings
        assert t.statistical_tests > 0
        assert t.hypothesis_evaluation > 0
        assert t.generation_total == pytest.approx(
            t.preprocessing + t.sampling + t.statistical_tests + t.hypothesis_evaluation
        )

    def test_supported_insights_actually_supported(self, planted, outcome):
        """Re-check every retained query's claims against base data."""
        for g in outcome.queries[:20]:
            result = evaluate_comparison(planted, g.query)
            for evidence in g.supported:
                itype = insight_type(evidence.insight.candidate.type_code)
                cand = evidence.insight.candidate
                if cand.val == g.query.val:
                    assert itype.supports(result.x, result.y)
                else:
                    assert itype.supports(result.y, result.x)

    def test_credibility_within_bounds(self, outcome):
        for evidence in outcome.evidences.values():
            assert 0 <= evidence.n_supporting <= evidence.n_postulating


class TestFDExclusion:
    def test_fd_pair_never_used(self, planted):
        outcome = generate_comparison_queries(planted, GenerationConfig())
        for g in outcome.queries:
            pair = {g.query.group_by, g.query.selection_attribute}
            assert pair != {"country", "region"}

    def test_fd_exclusion_can_be_disabled(self, planted):
        """Without FD exclusion, more hypothesis queries are evaluated
        (the FD-related grouping attribute is back in play)."""
        with_fd = generate_comparison_queries(planted, GenerationConfig())
        without = generate_comparison_queries(
            planted, GenerationConfig(exclude_functional_dependencies=False)
        )
        assert (
            without.counters["hypothesis_queries_evaluated"]
            > with_fd.counters["hypothesis_queries_evaluated"]
        )


class TestConfigurationVariants:
    def test_evaluators_give_same_query_set(self, planted):
        keys = []
        for evaluator in ("naive", "pairwise", "setcover"):
            config = GenerationConfig(evaluator=evaluator)
            outcome = generate_comparison_queries(planted, config)
            keys.append({g.query.key for g in outcome.queries})
        assert keys[0] == keys[1] == keys[2]

    def test_threads_give_same_result(self, planted):
        single = generate_comparison_queries(planted, GenerationConfig(n_threads=1))
        multi = generate_comparison_queries(planted, GenerationConfig(n_threads=4))
        assert {g.query.key for g in single.queries} == {g.query.key for g in multi.queries}
        by_key_s = {g.query.key: g.interest for g in single.queries}
        by_key_m = {g.query.key: g.interest for g in multi.queries}
        for key, interest in by_key_s.items():
            assert by_key_m[key] == pytest.approx(interest)

    def test_sampling_reduces_tested_insights(self, planted):
        full = generate_comparison_queries(planted, GenerationConfig())
        sampled = generate_comparison_queries(
            planted, GenerationConfig(sampling=SamplingSpec("random", 0.2))
        )
        assert sampled.counters["insights_tested"] <= full.counters["insights_tested"]

    def test_unbalanced_sampling_runs(self, planted):
        config = GenerationConfig(sampling=SamplingSpec("unbalanced", 0.2))
        outcome = generate_comparison_queries(planted, config)
        assert outcome.counters["insights_tested"] > 0

    def test_transitivity_pruning_reduces_insights(self, planted):
        pruned = generate_comparison_queries(planted, GenerationConfig())
        unpruned = generate_comparison_queries(
            planted, GenerationConfig(prune_transitive=False)
        )
        assert (
            pruned.counters["insights_after_pruning"]
            <= unpruned.counters["insights_after_pruning"]
        )

    def test_single_aggregate(self, planted):
        config = GenerationConfig(aggregates=("avg",))
        outcome = generate_comparison_queries(planted, config)
        assert all(g.query.agg == "avg" for g in outcome.queries)

    def test_progress_messages(self, planted):
        messages = []
        generate_comparison_queries(planted, GenerationConfig(), progress=messages.append)
        assert any("significant" in m for m in messages)

    def test_config_validation(self):
        with pytest.raises(Exception):
            GenerationConfig(aggregates=())
        with pytest.raises(Exception):
            GenerationConfig(evaluator="quantum")
        with pytest.raises(Exception):
            GenerationConfig(n_threads=0)
        with pytest.raises(Exception):
            SamplingSpec("stratified", 0.5)
        with pytest.raises(Exception):
            SamplingSpec("random", 1.5)


class TestParallelBackends:
    def test_process_backend_identical_results(self, planted):
        serial = generate_comparison_queries(planted, GenerationConfig(n_threads=1))
        procs = generate_comparison_queries(
            planted, GenerationConfig(n_threads=2, parallel_backend="processes")
        )
        assert {g.query.key for g in serial.queries} == {g.query.key for g in procs.queries}
        by_key_s = {g.query.key: g.interest for g in serial.queries}
        by_key_p = {g.query.key: g.interest for g in procs.queries}
        for key, interest in by_key_s.items():
            assert by_key_p[key] == pytest.approx(interest)

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            GenerationConfig(parallel_backend="fibers")
