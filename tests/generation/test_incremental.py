"""Incremental stats stage: memoized re-runs over appended tables.

The contract under test: an incremental run over a grown table — memo
from a prefix run, only touched pair families re-tested — produces a
``significant`` list element-for-element identical to a cold full run,
while actually skipping partitions (``stats_partitions_skipped > 0``).
"""

import numpy as np
import pytest

from repro.datasets import covid_table
from repro.generation.config import GenerationConfig, SamplingSpec
from repro.generation.generator import run_stats_stage
from repro.relational.table import content_token
from repro.stats.delta import IncrementalRequest

import dataclasses


@pytest.fixture(scope="module")
def config():
    return GenerationConfig(
        significance=dataclasses.replace(
            GenerationConfig().significance, n_permutations=40
        )
    )


@pytest.fixture(scope="module")
def tables():
    full = covid_table(240)
    base = full.take(np.arange(200))
    return base, full


def assert_same_insights(one, two):
    assert len(one) == len(two)
    for a, b in zip(one, two):
        assert a.candidate == b.candidate
        assert a.statistic == b.statistic  # bitwise: no tolerance
        assert a.p_value == b.p_value
        assert a.p_adjusted == b.p_adjusted


class TestIncrementalParity:
    def test_grown_run_matches_cold_bitwise_and_skips(self, tables, config):
        base, full = tables
        prefix = run_stats_stage(base, config, version=content_token(base))
        assert prefix.memo is not None
        assert prefix.memo.n_rows == base.n_rows

        warm = run_stats_stage(
            full, config,
            incremental=IncrementalRequest(prefix.memo),
            version=content_token(full),
        )
        cold = run_stats_stage(full, config, version=content_token(full))

        assert_same_insights(warm.significant, cold.significant)
        assert warm.counters["stats_partitions_skipped"] > 0
        assert warm.counters["stats_partitions_retested"] > 0
        assert warm.counters["insights_tested"] == cold.counters["insights_tested"]

    def test_fresh_memo_chains_to_next_append(self, tables, config):
        base, full = tables
        prefix = run_stats_stage(base, config, version=content_token(base))
        warm = run_stats_stage(
            full, config,
            incremental=IncrementalRequest(prefix.memo),
            version=content_token(full),
        )
        # The warm run's memo must be as good as a cold run's: replaying it
        # over the same table skips every family.
        assert warm.memo is not None and warm.memo.n_rows == full.n_rows
        replay = run_stats_stage(
            full, config, incremental=IncrementalRequest(warm.memo)
        )
        assert replay.counters["stats_partitions_retested"] == 0
        assert replay.counters["stats_partitions_skipped"] > 0
        assert_same_insights(replay.significant, warm.significant)

    def test_identical_table_skips_everything(self, tables, config):
        base, _ = tables
        prefix = run_stats_stage(base, config, version=content_token(base))
        replay = run_stats_stage(
            base, config, incremental=IncrementalRequest(prefix.memo)
        )
        assert replay.counters["stats_partitions_retested"] == 0
        assert_same_insights(replay.significant, prefix.significant)


class TestFallbacks:
    def test_no_version_means_no_memo(self, tables, config):
        base, _ = tables
        assert run_stats_stage(base, config).memo is None

    def test_sampling_blocks_memo_and_reuse(self, tables):
        base, full = tables
        sampled = GenerationConfig(sampling=SamplingSpec("random", 0.5))
        prefix = run_stats_stage(base, sampled, version=content_token(base))
        assert prefix.memo is None

    def test_config_drift_falls_back_to_full_run(self, tables, config):
        base, full = tables
        prefix = run_stats_stage(base, config, version=content_token(base))
        changed = dataclasses.replace(
            config,
            significance=dataclasses.replace(
                config.significance, n_permutations=50
            ),
        )
        warm = run_stats_stage(
            full, changed, incremental=IncrementalRequest(prefix.memo)
        )
        cold = run_stats_stage(full, changed)
        assert warm.counters["stats_partitions_skipped"] == 0
        assert_same_insights(warm.significant, cold.significant)

    def test_memo_larger_than_table_falls_back(self, tables, config):
        base, full = tables
        grown = run_stats_stage(full, config, version=content_token(full))
        shrunk = run_stats_stage(
            base, config, incremental=IncrementalRequest(grown.memo)
        )
        cold = run_stats_stage(base, config)
        assert shrunk.counters["stats_partitions_skipped"] == 0
        assert_same_insights(shrunk.significant, cold.significant)
