"""Unit + property tests for the weighted set cover of Algorithm 2."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.generation import apply_memory_fallback, greedy_weighted_set_cover, pairs_covered


class TestPairsCovered:
    def test_pair_set(self):
        covered = pairs_covered(frozenset({"a", "b", "c"}))
        assert covered == {
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }

    def test_two_element_set(self):
        assert pairs_covered(frozenset({"a", "b"})) == {frozenset({"a", "b"})}


class TestGreedyCover:
    def test_single_big_set_wins_when_cheap(self):
        attrs = ["a", "b", "c"]
        universe = [frozenset(p) for p in combinations(attrs, 2)]
        candidates = {
            frozenset(attrs): 1.0,  # covers everything, very cheap
            frozenset({"a", "b"}): 1.0,
            frozenset({"a", "c"}): 1.0,
            frozenset({"b", "c"}): 1.0,
        }
        chosen = greedy_weighted_set_cover(universe, candidates)
        assert chosen == [frozenset(attrs)]

    def test_pairs_win_when_big_set_expensive(self):
        attrs = ["a", "b", "c"]
        universe = [frozenset(p) for p in combinations(attrs, 2)]
        candidates = {
            frozenset(attrs): 1000.0,
            frozenset({"a", "b"}): 1.0,
            frozenset({"a", "c"}): 1.0,
            frozenset({"b", "c"}): 1.0,
        }
        chosen = greedy_weighted_set_cover(universe, candidates)
        assert frozenset(attrs) not in chosen
        assert len(chosen) == 3

    def test_empty_universe(self):
        assert greedy_weighted_set_cover([], {frozenset({"a", "b"}): 1.0}) == []

    def test_infeasible_raises(self):
        universe = [frozenset({"a", "b"}), frozenset({"c", "d"})]
        candidates = {frozenset({"a", "b"}): 1.0}
        with pytest.raises(QueryError, match="infeasible"):
            greedy_weighted_set_cover(universe, candidates)

    def test_deterministic_tie_break(self):
        universe = [frozenset({"a", "b"})]
        candidates = {frozenset({"a", "b"}): 1.0, frozenset({"a", "b", "c"}): 1.0}
        one = greedy_weighted_set_cover(universe, candidates)
        two = greedy_weighted_set_cover(universe, dict(reversed(list(candidates.items()))))
        assert one == two

    @settings(max_examples=40, deadline=None)
    @given(st.integers(3, 6), st.integers(0, 1000))
    def test_cover_property(self, n_attrs, seed):
        """Whatever the weights, the chosen sets must cover every pair."""
        import numpy as np

        rng = np.random.default_rng(seed)
        attrs = [f"x{i}" for i in range(n_attrs)]
        universe = [frozenset(p) for p in combinations(attrs, 2)]
        candidates = {}
        for size in range(2, n_attrs + 1):
            for combo in combinations(attrs, size):
                candidates[frozenset(combo)] = float(rng.uniform(1, 100))
        chosen = greedy_weighted_set_cover(universe, candidates)
        covered = set()
        for s in chosen:
            covered |= pairs_covered(s)
        assert set(universe) <= covered


class TestMemoryFallback:
    def test_none_budget_passthrough(self):
        chosen = [frozenset({"a", "b", "c"})]
        assert apply_memory_fallback(chosen, {frozenset({"a", "b", "c"}): 50.0}, None) == chosen

    def test_over_budget_set_replaced_by_pairs(self):
        big = frozenset({"a", "b", "c"})
        chosen = [big]
        out = apply_memory_fallback(chosen, {big: 100.0}, memory_budget=10.0)
        assert big not in out
        assert set(out) == pairs_covered(big)

    def test_under_budget_kept(self):
        big = frozenset({"a", "b", "c"})
        out = apply_memory_fallback([big], {big: 5.0}, memory_budget=10.0)
        assert out == [big]

    def test_duplicates_not_added(self):
        big1 = frozenset({"a", "b", "c"})
        big2 = frozenset({"b", "c", "d"})
        out = apply_memory_fallback(
            [big1, big2], {big1: 100.0, big2: 100.0}, memory_budget=1.0
        )
        assert len(out) == len(set(out))
        assert frozenset({"b", "c"}) in out
