"""Anytime behaviour of the lazy solvers (the TAP degradation ladder's rungs)."""

import pytest

from repro.errors import TAPError
from repro.runtime import Deadline
from repro.tap import HeuristicConfig, solve_heuristic_lazy
from repro.tap.baseline import solve_baseline_lazy
from repro.tap.random_instances import random_euclidean_instance


@pytest.fixture
def instance():
    return random_euclidean_instance(40, seed=5)


def lazy_args(instance):
    def distance_of(i: int, j: int) -> float:
        return float(instance.distances[i, j])

    return list(instance.interests), list(instance.costs), distance_of


class TestHeuristicDeadline:
    def test_expired_deadline_stops_the_scan_immediately(self, instance):
        interests, costs, distance_of = lazy_args(instance)
        deadline = Deadline(10.0)
        deadline.consume(60.0)
        solution = solve_heuristic_lazy(
            interests, costs, distance_of, HeuristicConfig(5, 4.0), deadline=deadline
        )
        assert solution.indices == ()
        assert not solution.optimal

    def test_unlimited_deadline_matches_no_deadline(self, instance):
        interests, costs, distance_of = lazy_args(instance)
        config = HeuristicConfig(5, 4.0)
        with_deadline = solve_heuristic_lazy(
            interests, costs, distance_of, config, deadline=Deadline.unlimited()
        )
        without = solve_heuristic_lazy(interests, costs, distance_of, config)
        assert with_deadline.indices == without.indices


class TestBaselineLazy:
    def test_picks_top_interest_within_budget(self, instance):
        interests, costs, distance_of = lazy_args(instance)
        solution = solve_baseline_lazy(interests, costs, distance_of, budget=5)
        assert solution.size == 5
        chosen = set(solution.indices)
        top5 = sorted(range(len(interests)), key=lambda i: -interests[i])[:5]
        assert chosen == set(top5)
        assert not solution.optimal

    def test_distance_is_along_emitted_sequence(self, instance):
        interests, costs, distance_of = lazy_args(instance)
        solution = solve_baseline_lazy(interests, costs, distance_of, budget=4)
        expected = sum(
            distance_of(solution.indices[i], solution.indices[i + 1])
            for i in range(len(solution.indices) - 1)
        )
        assert solution.distance == pytest.approx(expected)

    def test_invalid_inputs_rejected(self, instance):
        interests, costs, distance_of = lazy_args(instance)
        with pytest.raises(TAPError):
            solve_baseline_lazy(interests, costs, distance_of, budget=0)
        with pytest.raises(TAPError):
            solve_baseline_lazy(interests[:3], costs, distance_of, budget=2)
        with pytest.raises(TAPError):
            solve_baseline_lazy([1.0], [0.0], distance_of, budget=2)
