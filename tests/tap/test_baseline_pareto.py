"""Unit tests for repro.tap.baseline and repro.tap.pareto."""

import numpy as np
import pytest

from repro.errors import TAPError
from repro.tap import pareto_front, random_euclidean_instance, solve_baseline, sweep_epsilon


class TestBaseline:
    def test_takes_top_interest(self):
        instance = random_euclidean_instance(15, seed=1)
        solution = solve_baseline(instance, budget=4)
        top = set(np.argsort(-instance.interests)[:4].tolist())
        assert set(solution.indices) == top

    def test_ordering_by_interest(self):
        instance = random_euclidean_instance(15, seed=2)
        solution = solve_baseline(instance, budget=5)
        interests = [instance.interests[i] for i in solution.indices]
        assert interests == sorted(interests, reverse=True)

    def test_ignores_distance(self):
        # The baseline may violate any epsilon_d; it only respects the budget.
        instance = random_euclidean_instance(15, seed=3)
        solution = solve_baseline(instance, budget=5)
        assert solution.cost <= 5.0

    def test_invalid_budget(self):
        with pytest.raises(TAPError):
            solve_baseline(random_euclidean_instance(5, seed=1), budget=0)


class TestSweep:
    def test_interest_monotone_in_epsilon(self):
        instance = random_euclidean_instance(25, seed=4)
        points = sweep_epsilon(instance, budget=5, epsilon_grid=[0.2, 0.6, 1.2, 3.0])
        interests = [p.interest for p in points]
        assert interests == sorted(interests)

    def test_distance_within_epsilon(self):
        instance = random_euclidean_instance(25, seed=5)
        for point in sweep_epsilon(instance, 5, [0.5, 1.0, 2.0]):
            assert point.distance <= point.epsilon_distance + 1e-9

    def test_exact_solver_option(self):
        instance = random_euclidean_instance(10, seed=6)
        points = sweep_epsilon(
            instance, 3, [0.5, 2.0], solver="exact", timeout_seconds=20
        )
        assert all(p.solution.optimal for p in points)

    def test_unknown_solver(self):
        instance = random_euclidean_instance(5, seed=7)
        with pytest.raises(TAPError):
            sweep_epsilon(instance, 2, [1.0], solver="quantum")

    def test_empty_grid_rejected(self):
        instance = random_euclidean_instance(5, seed=7)
        with pytest.raises(TAPError):
            sweep_epsilon(instance, 2, [])


class TestParetoFront:
    def test_front_is_non_dominated(self):
        instance = random_euclidean_instance(25, seed=8)
        points = sweep_epsilon(instance, 5, [0.2, 0.5, 1.0, 2.0, 4.0])
        front = pareto_front(points)
        assert front
        for p in front:
            for q in points:
                assert not (
                    q.interest > p.interest and q.distance <= p.distance
                ) or p in front

    def test_duplicates_removed(self):
        instance = random_euclidean_instance(10, seed=9)
        points = sweep_epsilon(instance, 3, [100.0, 200.0])  # both saturate
        front = pareto_front(points)
        keys = {(round(p.interest, 9), round(p.distance, 9)) for p in front}
        assert len(keys) == len(front)
