"""Unit + property tests for repro.tap.path."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TAPError
from repro.tap import (
    best_insertion_order,
    best_insertion_position,
    held_karp_path,
    min_path_length,
    mst_lower_bound,
)


def euclidean(points):
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def brute_force_path(distances, subset):
    best = (float("inf"), None)
    for perm in itertools.permutations(subset):
        length = sum(distances[perm[i], perm[i + 1]] for i in range(len(perm) - 1))
        if length < best[0]:
            best = (length, list(perm))
    return best


class TestHeldKarp:
    def test_trivial_sizes(self):
        d = np.zeros((3, 3))
        assert held_karp_path(d, []) == (0.0, [])
        assert held_karp_path(d, [2]) == (0.0, [2])

    def test_two_points(self):
        d = np.array([[0.0, 3.0], [3.0, 0.0]])
        length, order = held_karp_path(d, [0, 1])
        assert length == 3.0 and sorted(order) == [0, 1]

    def test_size_guard(self):
        d = np.zeros((30, 30))
        with pytest.raises(TAPError, match="limited"):
            held_karp_path(d, list(range(25)))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(3, 7))
    def test_matches_brute_force(self, seed, k):
        rng = np.random.default_rng(seed)
        points = rng.random((k, 2))
        d = euclidean(points)
        expected_length, _ = brute_force_path(d, list(range(k)))
        length, order = held_karp_path(d, list(range(k)))
        assert length == pytest.approx(expected_length, rel=1e-9)
        # The returned order must realize the returned length.
        realized = sum(d[order[i], order[i + 1]] for i in range(k - 1))
        assert realized == pytest.approx(length, rel=1e-9)
        assert sorted(order) == list(range(k))

    def test_subset_indices_respected(self):
        rng = np.random.default_rng(1)
        d = euclidean(rng.random((10, 2)))
        subset = [7, 2, 9]
        _, order = held_karp_path(d, subset)
        assert sorted(order) == sorted(subset)


class TestMSTBound:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 8))
    def test_lower_bounds_path(self, seed, k):
        rng = np.random.default_rng(seed)
        d = euclidean(rng.random((k, 2)))
        path_length, _ = held_karp_path(d, list(range(k)))
        assert mst_lower_bound(d, list(range(k))) <= path_length + 1e-9

    def test_trivial(self):
        d = np.zeros((2, 2))
        assert mst_lower_bound(d, [0]) == 0.0
        assert mst_lower_bound(d, []) == 0.0


class TestBestInsertion:
    def test_insert_into_empty(self):
        d = np.zeros((2, 2))
        assert best_insertion_position(d, [], 0) == (0, 0.0)

    def test_prepend_append_middle(self):
        # Points on a line: 0 --- 1 --- 2; inserting 1 between 0 and 2 is free-ish.
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        d = euclidean(points)
        pos, delta = best_insertion_position(d, [0, 2], 1)
        assert pos == 1
        assert delta == pytest.approx(0.0)

    def test_append_when_cheapest(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        d = euclidean(points)
        pos, delta = best_insertion_position(d, [0, 1], 2)
        assert pos == 2 and delta == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 9))
    def test_insertion_order_at_least_optimal(self, seed, k):
        rng = np.random.default_rng(seed)
        d = euclidean(rng.random((k, 2)))
        order = best_insertion_order(d, list(range(k)))
        greedy_length = sum(d[order[i], order[i + 1]] for i in range(k - 1))
        optimal_length, _ = held_karp_path(d, list(range(k)))
        assert greedy_length >= optimal_length - 1e-9
        assert sorted(order) == list(range(k))


class TestMinPathLength:
    def test_exact_regime(self):
        rng = np.random.default_rng(0)
        d = euclidean(rng.random((6, 2)))
        assert min_path_length(d, list(range(6))) == pytest.approx(
            held_karp_path(d, list(range(6)))[0]
        )

    def test_greedy_regime_is_upper_bound(self):
        rng = np.random.default_rng(0)
        d = euclidean(rng.random((12, 2)))
        greedy = min_path_length(d, list(range(12)), exact_limit=5)
        exact, _ = held_karp_path(d, list(range(12)))
        assert greedy >= exact - 1e-9
