"""Unit tests for repro.tap.random_instances."""

import numpy as np
import pytest

from repro.errors import TAPError
from repro.queries import query_distance
from repro.stats import derive_rng
from repro.tap import (
    random_comparison_queries,
    random_euclidean_instance,
    random_hamming_instance,
)


class TestEuclidean:
    def test_shapes_and_determinism(self):
        one = random_euclidean_instance(20, seed=1)
        two = random_euclidean_instance(20, seed=1)
        assert one.n == 20
        np.testing.assert_array_equal(one.distances, two.distances)
        np.testing.assert_array_equal(one.interests, two.interests)

    def test_seeds_differ(self):
        one = random_euclidean_instance(20, seed=1)
        two = random_euclidean_instance(20, seed=2)
        assert not np.array_equal(one.interests, two.interests)

    def test_uniform_cost_flag(self):
        uniform = random_euclidean_instance(10, seed=3)
        assert np.all(uniform.costs == 1.0)
        varied = random_euclidean_instance(10, seed=3, uniform_cost=False)
        assert not np.all(varied.costs == 1.0)

    def test_triangle_inequality_holds(self):
        inst = random_euclidean_instance(15, seed=4)
        d = inst.distances
        for i in range(15):
            for j in range(15):
                for k in range(15):
                    assert d[i, k] <= d[i, j] + d[j, k] + 1e-9

    def test_invalid_size(self):
        with pytest.raises(TAPError):
            random_euclidean_instance(0, seed=1)


class TestHamming:
    def test_distances_match_production_metric(self):
        inst = random_hamming_instance(12, seed=5)
        for i in range(12):
            for j in range(12):
                expected = 0.0 if i == j else query_distance(inst.items[i], inst.items[j])
                assert inst.distances[i, j] == pytest.approx(expected)

    def test_queries_distinct(self):
        inst = random_hamming_instance(40, seed=6)
        keys = {q.key for q in inst.items}
        assert len(keys) == 40

    def test_interest_distribution_uniform_ish(self):
        inst = random_hamming_instance(300, seed=7)
        assert 0.4 < inst.interests.mean() < 0.6  # U(0,1) mean ~ 0.5

    def test_impossible_draw_raises(self):
        rng = derive_rng(1, "x")
        with pytest.raises(TAPError, match="distinct"):
            # Schema too small for that many distinct queries.
            random_comparison_queries(10_000, rng, n_attributes=2, n_values=2, n_measures=1,
                                      aggregates=("sum",))

    def test_query_fields_within_schema(self):
        rng = derive_rng(2, "y")
        queries = random_comparison_queries(30, rng, n_attributes=4, n_values=5)
        for q in queries:
            assert q.group_by != q.selection_attribute
            assert q.val != q.val_other
