"""Correctness tests for the exact TAP solver against brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tap import (
    ExactConfig,
    held_karp_path,
    random_euclidean_instance,
    random_hamming_instance,
    solve_exact,
    validate_solution,
)
from repro.errors import TAPError


def brute_force_optimum(instance, budget, epsilon_d):
    """Max total interest over feasible subsets (uniform costs assumed 1)."""
    best = 0.0
    n = instance.n
    max_size = int(budget)
    for size in range(1, max_size + 1):
        for subset in itertools.combinations(range(n), size):
            if len(subset) <= 1:
                length = 0.0
            else:
                length, _ = held_karp_path(instance.distances, list(subset))
            if length <= epsilon_d + 1e-9:
                z = instance.sequence_interest(list(subset))
                best = max(best, z)
    return best


class TestAgainstBruteForce:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 4), st.floats(0.3, 1.5))
    def test_optimal_interest(self, seed, budget, epsilon_d):
        instance = random_euclidean_instance(9, seed=seed)
        outcome = solve_exact(instance, ExactConfig(budget, epsilon_d, timeout_seconds=30))
        assert outcome.solution.optimal
        expected = brute_force_optimum(instance, budget, epsilon_d)
        assert outcome.solution.interest == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_solution_is_feasible(self, seed):
        instance = random_hamming_instance(15, seed=seed)
        config = ExactConfig(4, 12.0, timeout_seconds=30)
        outcome = solve_exact(instance, config)
        validate_solution(instance, outcome.solution, 4, 12.0)

    def test_reported_distance_matches_sequence(self):
        instance = random_euclidean_instance(10, seed=3)
        outcome = solve_exact(instance, ExactConfig(4, 1.0, timeout_seconds=30))
        assert outcome.solution.distance == pytest.approx(
            instance.sequence_distance(outcome.solution.indices)
        )


class TestBehaviour:
    def test_zero_epsilon_gives_single_best_query(self):
        instance = random_euclidean_instance(12, seed=5)
        outcome = solve_exact(instance, ExactConfig(5, 0.0, timeout_seconds=30))
        assert outcome.solution.size == 1
        assert outcome.solution.interest == pytest.approx(float(instance.interests.max()))

    def test_generous_epsilon_takes_top_budget_queries(self):
        instance = random_euclidean_instance(12, seed=6)
        outcome = solve_exact(instance, ExactConfig(4, 1e9, timeout_seconds=30))
        top4 = np.sort(instance.interests)[-4:].sum()
        assert outcome.solution.interest == pytest.approx(top4)

    def test_budget_bounds_size(self):
        instance = random_euclidean_instance(20, seed=7)
        outcome = solve_exact(instance, ExactConfig(3, 10.0, timeout_seconds=30))
        assert outcome.solution.size <= 3

    def test_timeout_returns_incumbent(self):
        instance = random_hamming_instance(150, seed=8)
        outcome = solve_exact(instance, ExactConfig(8, 25.0, timeout_seconds=0.02))
        assert outcome.timed_out
        assert not outcome.solution.optimal
        # Whatever it found must still be feasible.
        validate_solution(instance, outcome.solution, 8, 25.0)

    def test_invalid_config(self):
        with pytest.raises(TAPError):
            ExactConfig(0, 1.0)
        with pytest.raises(TAPError):
            ExactConfig(5, -1.0)

    def test_nodes_and_time_reported(self):
        instance = random_euclidean_instance(10, seed=9)
        outcome = solve_exact(instance, ExactConfig(3, 1.0, timeout_seconds=30))
        assert outcome.nodes_explored > 0
        assert outcome.solve_seconds >= 0.0

    def test_non_uniform_costs_respected(self):
        instance = random_euclidean_instance(10, seed=10, uniform_cost=False)
        outcome = solve_exact(instance, ExactConfig(2.0, 1e9, timeout_seconds=30))
        assert outcome.solution.cost <= 2.0 + 1e-9


class TestBeyondExactPathLimit:
    def test_large_budget_degrades_not_crashes(self):
        """Budgets beyond the Held-Karp limit must yield a feasible anytime
        solution flagged non-optimal (not raise mid-search)."""
        instance = random_euclidean_instance(60, seed=11)
        config = ExactConfig(budget=30, epsilon_distance=12.0, timeout_seconds=3.0)
        outcome = solve_exact(instance, config)
        validate_solution(instance, outcome.solution, 30, 12.0)
        assert not outcome.solution.optimal


class TestRaiseOnTimeout:
    """The anytime contract consumed by the resilient runtime's TAP ladder."""

    def _ticking_clock(self, monkeypatch, step=1.0):
        """Replace the exact module's clock: each call advances `step`s."""
        import types

        from repro.tap import exact as exact_module

        state = {"t": 0.0}

        def perf_counter():
            state["t"] += step
            return state["t"]

        monkeypatch.setattr(
            exact_module, "time", types.SimpleNamespace(perf_counter=perf_counter)
        )

    def test_timeout_raises_with_incumbent(self, monkeypatch):
        # Each clock tick is one second and every B&B node reads the clock,
        # so a 10s timeout deterministically expires after ~10 nodes — well
        # after the first include made an incumbent, well before the search
        # is done.
        self._ticking_clock(monkeypatch)
        instance = random_euclidean_instance(14, seed=21)
        config = ExactConfig(4, 5.0, timeout_seconds=10.0, raise_on_timeout=True)
        from repro.errors import SolverTimeout

        with pytest.raises(SolverTimeout) as err:
            solve_exact(instance, config)
        incumbent = err.value.incumbent
        assert incumbent is not None
        assert not incumbent.optimal
        assert incumbent.size > 0
        validate_solution(instance, incumbent, 4, 5.0)

    def test_default_keeps_returning_silently(self, monkeypatch):
        self._ticking_clock(monkeypatch)
        instance = random_euclidean_instance(14, seed=21)
        outcome = solve_exact(instance, ExactConfig(4, 5.0, timeout_seconds=10.0))
        assert outcome.timed_out
        assert not outcome.solution.optimal
