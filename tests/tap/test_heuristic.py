"""Unit tests for Algorithm 3 (and its lazy variant)."""

import numpy as np
import pytest

from repro.errors import TAPError
from repro.tap import (
    ExactConfig,
    HeuristicConfig,
    random_euclidean_instance,
    random_hamming_instance,
    solve_exact,
    solve_heuristic,
    solve_heuristic_lazy,
    validate_solution,
)


class TestFeasibility:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_respects_both_bounds(self, seed):
        instance = random_hamming_instance(60, seed=seed)
        config = HeuristicConfig(budget=7, epsilon_distance=18.0)
        solution = solve_heuristic(instance, config)
        validate_solution(instance, solution, 7, 18.0)

    def test_zero_epsilon_single_query(self):
        instance = random_euclidean_instance(20, seed=1)
        solution = solve_heuristic(instance, HeuristicConfig(5, 0.0))
        assert solution.size == 1
        assert solution.interest == pytest.approx(float(instance.interests.max()))

    def test_generous_epsilon_matches_baseline_set(self):
        instance = random_euclidean_instance(20, seed=2)
        solution = solve_heuristic(instance, HeuristicConfig(4, 1e9))
        top4 = set(np.argsort(-instance.interests)[:4].tolist())
        assert set(solution.indices) == top4

    def test_never_worse_than_single_best(self):
        for seed in range(5):
            instance = random_hamming_instance(40, seed=seed)
            solution = solve_heuristic(instance, HeuristicConfig(6, 10.0))
            assert solution.interest >= float(instance.interests.max()) - 1e-9

    def test_upper_bounded_by_exact(self):
        instance = random_euclidean_instance(14, seed=3)
        config_h = HeuristicConfig(4, 1.0)
        heuristic = solve_heuristic(instance, config_h)
        exact = solve_exact(instance, ExactConfig(4, 1.0, timeout_seconds=30))
        assert heuristic.interest <= exact.solution.interest + 1e-9

    def test_invalid_config(self):
        with pytest.raises(TAPError):
            HeuristicConfig(0, 1.0)


class TestInsertionBehaviour:
    def test_best_insertion_at_least_as_good_as_append(self):
        for seed in range(6):
            instance = random_euclidean_instance(30, seed=seed)
            best = solve_heuristic(instance, HeuristicConfig(6, 1.2, best_insertion=True))
            append = solve_heuristic(instance, HeuristicConfig(6, 1.2, best_insertion=False))
            assert best.interest >= append.interest - 1e-9

    def test_reported_scores_consistent(self):
        instance = random_hamming_instance(30, seed=4)
        solution = solve_heuristic(instance, HeuristicConfig(5, 12.0))
        assert solution.interest == pytest.approx(
            instance.sequence_interest(solution.indices)
        )
        assert solution.distance == pytest.approx(
            instance.sequence_distance(solution.indices)
        )


class TestLazyVariant:
    def test_matches_matrix_variant(self):
        for seed in range(5):
            instance = random_hamming_instance(50, seed=seed)
            config = HeuristicConfig(6, 15.0)
            dense = solve_heuristic(instance, config)
            lazy = solve_heuristic_lazy(
                instance.interests,
                instance.costs,
                lambda i, j: float(instance.distances[i, j]),
                config,
            )
            assert lazy.indices == dense.indices
            assert lazy.interest == pytest.approx(dense.interest)
            assert lazy.distance == pytest.approx(dense.distance)

    def test_lazy_validates_input(self):
        config = HeuristicConfig(2, 5.0)
        with pytest.raises(TAPError, match="align"):
            solve_heuristic_lazy([1.0, 2.0], [1.0], lambda i, j: 0.0, config)
        with pytest.raises(TAPError, match="positive"):
            solve_heuristic_lazy([1.0], [0.0], lambda i, j: 0.0, config)

    def test_lazy_append_only(self):
        instance = random_hamming_instance(25, seed=6)
        config = HeuristicConfig(5, 10.0, best_insertion=False)
        dense = solve_heuristic(instance, config)
        lazy = solve_heuristic_lazy(
            instance.interests,
            instance.costs,
            lambda i, j: float(instance.distances[i, j]),
            config,
        )
        assert lazy.indices == dense.indices
