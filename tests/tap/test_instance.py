"""Unit tests for repro.tap.instance."""

import numpy as np
import pytest

from repro.errors import TAPError
from repro.tap import TAPInstance, make_solution, validate_solution


def small_instance():
    distances = np.array(
        [[0.0, 1.0, 2.0], [1.0, 0.0, 1.5], [2.0, 1.5, 0.0]]
    )
    return TAPInstance(["q0", "q1", "q2"], [0.5, 0.9, 0.2], [1.0, 1.0, 1.0], distances)


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(TAPError, match="one entry per item"):
            TAPInstance(["a"], [1.0, 2.0], [1.0], np.zeros((1, 1)))
        with pytest.raises(TAPError, match="matrix"):
            TAPInstance(["a"], [1.0], [1.0], np.zeros((2, 2)))

    def test_negative_interest_rejected(self):
        with pytest.raises(TAPError, match="non-negative"):
            TAPInstance(["a"], [-1.0], [1.0], np.zeros((1, 1)))

    def test_zero_cost_rejected(self):
        with pytest.raises(TAPError, match="positive"):
            TAPInstance(["a"], [1.0], [0.0], np.zeros((1, 1)))

    def test_asymmetric_matrix_rejected(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(TAPError, match="symmetric"):
            TAPInstance(["a", "b"], [1, 1], [1, 1], bad)

    def test_nonzero_diagonal_rejected(self):
        bad = np.array([[1.0]])
        with pytest.raises(TAPError, match="diagonal"):
            TAPInstance(["a"], [1.0], [1.0], bad)


class TestScoring:
    def test_sequence_scores(self):
        inst = small_instance()
        assert inst.sequence_interest([0, 2]) == pytest.approx(0.7)
        assert inst.sequence_cost([0, 2]) == 2.0
        assert inst.sequence_distance([0, 1, 2]) == pytest.approx(2.5)
        assert inst.sequence_distance([1]) == 0.0
        assert inst.sequence_interest([]) == 0.0

    def test_build_from_callables(self):
        inst = TAPInstance.build(
            ["a", "bb", "ccc"],
            interest_of=len,
            cost_of=lambda s: 1.0,
            distance_of=lambda s1, s2: abs(len(s1) - len(s2)),
        )
        assert inst.interests.tolist() == [1.0, 2.0, 3.0]
        assert inst.distances[0, 2] == 2.0
        assert inst.distances[2, 0] == 2.0


class TestSolutionHelpers:
    def test_make_solution_scores(self):
        inst = small_instance()
        sol = make_solution(inst, [1, 0])
        assert sol.interest == pytest.approx(1.4)
        assert sol.distance == 1.0
        assert sol.items(inst) == ["q1", "q0"]

    def test_repeated_indices_rejected(self):
        with pytest.raises(TAPError, match="repeat"):
            make_solution(small_instance(), [0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(TAPError, match="range"):
            make_solution(small_instance(), [5])

    def test_validate_solution_bounds(self):
        inst = small_instance()
        sol = make_solution(inst, [0, 1])
        validate_solution(inst, sol, budget=2, epsilon_distance=1.0)
        with pytest.raises(TAPError, match="cost"):
            validate_solution(inst, sol, budget=1, epsilon_distance=10.0)
        with pytest.raises(TAPError, match="distance"):
            validate_solution(inst, sol, budget=5, epsilon_distance=0.5)
