"""Tests for saving/loading generation runs."""

import json

import pytest

from repro.datasets import covid_table
from repro.generation import NotebookGenerator
from repro.persistence import (
    PersistenceError,
    load_outcome,
    load_run,
    outcome_from_dict,
    outcome_to_dict,
    resolve_outcome,
    save_outcome,
    save_run,
)


@pytest.fixture(scope="module")
def covid():
    return covid_table(400)


@pytest.fixture(scope="module")
def run(covid):
    return NotebookGenerator().generate(covid, budget=5)


class TestRoundTrip:
    def test_outcome_round_trip_preserves_queries(self, run, tmp_path):
        path = tmp_path / "outcome.json"
        save_outcome(run.outcome, path)
        loaded = load_outcome(path)
        assert [g.query.key for g in loaded.queries] == [
            g.query.key for g in run.outcome.queries
        ]
        assert [g.interest for g in loaded.queries] == pytest.approx(
            [g.interest for g in run.outcome.queries]
        )

    def test_evidence_identity_shared(self, run, tmp_path):
        """Two queries supporting the same insight must share one evidence
        object after loading (credibility is one fact, not per-query)."""
        path = tmp_path / "outcome.json"
        save_outcome(run.outcome, path)
        loaded = load_outcome(path)
        by_key = {}
        for g in loaded.queries:
            for e in g.supported:
                key = e.insight.key
                if key in by_key:
                    assert by_key[key] is e
                by_key[key] = e

    def test_run_round_trip_preserves_solution(self, run, tmp_path):
        path = tmp_path / "run.json"
        save_run(run, path)
        loaded = load_run(path)
        assert loaded.solution.indices == run.solution.indices
        assert loaded.solution.interest == pytest.approx(run.solution.interest)
        assert [g.query.key for g in loaded.selected] == [
            g.query.key for g in run.selected
        ]

    def test_counters_and_timings_preserved(self, run, tmp_path):
        path = tmp_path / "run.json"
        save_run(run, path)
        loaded = load_run(path)
        assert loaded.outcome.counters == run.outcome.counters

    def test_loaded_run_renders_notebook(self, covid, run, tmp_path):
        path = tmp_path / "run.json"
        save_run(run, path)
        loaded = load_run(path)
        notebook = loaded.to_notebook(covid, table_name="covid")
        assert notebook.n_queries == len(run.selected)


class TestResolveOutcome:
    def test_recut_with_smaller_budget(self, run, tmp_path):
        path = tmp_path / "outcome.json"
        save_outcome(run.outcome, path)
        loaded = load_outcome(path)
        recut = resolve_outcome(loaded, budget=3)
        assert len(recut.selected) <= 3
        assert recut.solution.distance <= recut.epsilon_distance + 1e-9

    def test_recut_matches_fresh_solve(self, run):
        recut = resolve_outcome(run.outcome, budget=run.budget,
                                epsilon_distance=run.epsilon_distance)
        assert recut.solution.indices == run.solution.indices


class TestValidation:
    def test_version_checked(self, run, tmp_path):
        data = outcome_to_dict(run.outcome)
        data["schema_version"] = 999
        with pytest.raises(PersistenceError, match="version"):
            outcome_from_dict(data)

    def test_malformed_rejected(self):
        with pytest.raises(PersistenceError, match="malformed"):
            outcome_from_dict({"schema_version": 1, "evidences": {}, "queries": [{"nope": 1}]})

    def test_outcome_file_is_not_a_run(self, run, tmp_path):
        path = tmp_path / "outcome.json"
        save_outcome(run.outcome, path)
        with pytest.raises(PersistenceError, match="outcome, not a full run"):
            load_run(path)

    def test_json_is_human_readable(self, run, tmp_path):
        path = tmp_path / "run.json"
        save_run(run, path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == 1
        assert isinstance(data["queries"], list)


class TestRunReportPersistence:
    def test_saved_run_carries_the_report(self, covid, tmp_path):
        from repro.runtime import resilient_generate

        resilient = resilient_generate(covid, budget=4)
        assert resilient.report is not None
        path = tmp_path / "run.json"
        save_run(resilient, path)
        assert "report" in json.loads(path.read_text())
        loaded = load_run(path)
        assert loaded.report is not None
        assert loaded.report.as_dict() == resilient.report.as_dict()

    def test_plain_run_has_no_report(self, run, tmp_path):
        path = tmp_path / "plain.json"
        save_run(run, path)
        assert "report" not in json.loads(path.read_text())
        assert load_run(path).report is None
