"""Tests for repro.datasets: specs, generation, planted effects."""

import numpy as np
import pytest

from repro.datasets import (
    CategoricalSpec,
    MeasureSpec,
    SyntheticSpec,
    covid_table,
    describe,
    enedis_spec,
    enedis_table,
    flights_spec,
    flights_table,
    generate,
    vaccine_spec,
    vaccine_table,
)
from repro.errors import DatasetError
from repro.insights import significant_insights, SignificanceConfig


class TestSpecValidation:
    def test_categorical_needs_two_values(self):
        with pytest.raises(DatasetError):
            CategoricalSpec("a", 1)

    def test_negative_skew_rejected(self):
        with pytest.raises(DatasetError):
            CategoricalSpec("a", 3, skew=-1.0)

    def test_measure_validation(self):
        with pytest.raises(DatasetError):
            MeasureSpec("m", base=-1.0)
        with pytest.raises(DatasetError):
            MeasureSpec("m", null_rate=1.0)

    def test_spec_needs_rows_and_columns(self):
        cat = (CategoricalSpec("a", 3),)
        meas = (MeasureSpec("m"),)
        with pytest.raises(DatasetError):
            SyntheticSpec("x", 0, cat, meas)
        with pytest.raises(DatasetError):
            SyntheticSpec("x", 10, (), meas)
        with pytest.raises(DatasetError):
            SyntheticSpec("x", 10, cat, ())


class TestGeneration:
    @pytest.fixture
    def spec(self):
        return SyntheticSpec(
            "demo",
            800,
            (CategoricalSpec("a", 5), CategoricalSpec("b", 3, skew=0.0)),
            (MeasureSpec("m", base=100, noise=10), MeasureSpec("k", null_rate=0.1)),
            seed=99,
        )

    def test_shape(self, spec):
        table = generate(spec)
        assert table.n_rows == 800
        assert table.schema.categorical_names == ("a", "b")
        assert table.schema.measure_names == ("m", "k")

    def test_deterministic(self, spec):
        assert generate(spec) == generate(spec)

    def test_seed_changes_data(self, spec):
        import dataclasses

        other = dataclasses.replace(spec, seed=100)
        assert generate(spec) != generate(other)

    def test_null_rate_applied(self, spec):
        table = generate(spec)
        nulls = np.isnan(table.measure_values("k")).mean()
        assert 0.05 < nulls < 0.15

    def test_zipf_skew_orders_frequencies(self):
        spec = SyntheticSpec(
            "skewed",
            3000,
            (CategoricalSpec("a", 6, skew=1.2),),
            (MeasureSpec("m"),),
        )
        table = generate(spec)
        col = table.categorical_column("a")
        counts = sorted(
            (int(col.equals_mask(f"a_{k}").sum()) for k in range(6)), reverse=True
        )
        # First value (rank 1) must dominate the last heavily.
        assert counts[0] > 3 * counts[-1]

    def test_planted_effects_yield_insights(self, spec):
        table = generate(spec)
        found = significant_insights(
            table, measures=["m"], config=SignificanceConfig(n_permutations=100)
        )
        assert len(found) > 0

    def test_describe_row(self, spec):
        table = generate(spec)
        row = describe(spec, table)
        assert row["tuples"] == 800
        assert row["n_categorical"] == 2
        assert row["adom_min"] <= row["adom_max"]


class TestPaperDatasets:
    def test_table2_shape_vaccine(self):
        spec = vaccine_spec()
        assert len(spec.categoricals) == 6
        assert len(spec.measures) == 1

    def test_table2_shape_enedis(self):
        spec = enedis_spec()
        assert len(spec.categoricals) == 7
        assert len(spec.measures) == 2

    def test_table2_shape_flights(self):
        spec = flights_spec()
        assert len(spec.categoricals) == 5
        assert len(spec.measures) == 3

    def test_size_ordering_preserved(self):
        vaccine = vaccine_table(0.5)
        enedis = enedis_table(0.2)
        flights = flights_table(0.1)
        assert vaccine.n_rows < enedis.n_rows < flights.n_rows

    def test_enedis_has_largest_domain(self):
        enedis = enedis_table(0.3)
        flights = flights_table(0.05)
        assert max(enedis.n_distinct(c) for c in enedis.schema.categorical_names) > max(
            flights.n_distinct(c) for c in flights.schema.categorical_names
        )

    def test_scale_parameter(self):
        small = enedis_table(0.1)
        large = enedis_table(0.5)
        assert small.n_rows < large.n_rows


class TestCovid:
    def test_schema(self):
        covid = covid_table(300)
        assert covid.schema.categorical_names == ("month", "continent", "country")
        assert covid.schema.measure_names == ("cases", "deaths")

    def test_planted_may_over_april(self):
        covid = covid_table(2000)
        month = covid.categorical_column("month")
        cases = covid.measure_values("cases")
        may = cases[month.equals_mask("5")]
        april = cases[month.equals_mask("4")]
        assert may.mean() > april.mean()

    def test_country_determines_continent(self):
        from repro.relational.functional_deps import holds

        covid = covid_table(1000)
        assert holds(covid, "country", "continent")

    def test_deterministic(self):
        assert covid_table(200) == covid_table(200)
