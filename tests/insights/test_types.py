"""Unit tests for repro.insights.types."""

import numpy as np
import pytest

from repro.errors import InsightError
from repro.insights import (
    DEFAULT_INSIGHT_TYPES,
    MEAN_GREATER,
    MEDIAN_GREATER,
    VARIANCE_GREATER,
    insight_type,
    register_insight_type,
    registered_insight_types,
    resolve_insight_types,
)
from repro.stats import SharedPermutations, derive_rng


class TestRegistry:
    def test_lookup_by_code(self):
        assert insight_type("M") is MEAN_GREATER
        assert insight_type("V") is VARIANCE_GREATER
        assert insight_type("D") is MEDIAN_GREATER

    def test_unknown_code(self):
        with pytest.raises(InsightError, match="unknown insight type"):
            insight_type("Z")

    def test_defaults_are_paper_types(self):
        assert tuple(t.code for t in DEFAULT_INSIGHT_TYPES) == ("M", "V")

    def test_resolve_none_gives_defaults(self):
        assert resolve_insight_types(None) == DEFAULT_INSIGHT_TYPES

    def test_resolve_mixes_codes_and_instances(self):
        out = resolve_insight_types(["M", VARIANCE_GREATER])
        assert out == (MEAN_GREATER, VARIANCE_GREATER)

    def test_resolve_empty_rejected(self):
        with pytest.raises(InsightError):
            resolve_insight_types([])

    def test_register_duplicate_rejected(self):
        with pytest.raises(InsightError, match="already registered"):
            register_insight_type(MEAN_GREATER)

    def test_registered_contains_extension(self):
        codes = {t.code for t in registered_insight_types()}
        assert {"M", "V", "D"} <= codes


class TestMeanGreater:
    def test_observed_statistic_sign(self):
        assert MEAN_GREATER.observed_statistic(np.array([4.0]), np.array([1.0])) == 3.0

    def test_supports(self):
        assert MEAN_GREATER.supports(np.array([5.0, 5.0]), np.array([1.0, 1.0]))
        assert not MEAN_GREATER.supports(np.array([1.0]), np.array([5.0]))

    def test_supports_empty_false(self):
        assert not MEAN_GREATER.supports(np.array([]), np.array([1.0]))
        assert not MEAN_GREATER.supports(np.array([np.nan]), np.array([1.0]))

    def test_sql_predicate(self):
        assert MEAN_GREATER.hypothesis_predicate_sql("a", "b") == "avg(a) > avg(b)"

    def test_permutation_test_wired(self):
        rng = derive_rng(1, "t")
        batch = SharedPermutations(30, 30, 100, rng)
        x = rng.normal(4, 1, 30)
        y = rng.normal(0, 1, 30)
        assert MEAN_GREATER.test(batch, x, y).p_value < 0.05

    def test_parametric_test_wired(self):
        rng = derive_rng(2, "t")
        x = rng.normal(4, 1, 30)
        y = rng.normal(0, 1, 30)
        assert MEAN_GREATER.parametric_test(x, y).p_value < 0.01


class TestVarianceGreater:
    def test_supports_requires_two_points(self):
        assert not VARIANCE_GREATER.supports(np.array([1.0]), np.array([1.0, 5.0]))

    def test_supports(self):
        wide = np.array([0.0, 10.0, 20.0])
        narrow = np.array([5.0, 5.1, 5.2])
        assert VARIANCE_GREATER.supports(wide, narrow)
        assert not VARIANCE_GREATER.supports(narrow, wide)

    def test_sql_predicate(self):
        assert VARIANCE_GREATER.hypothesis_predicate_sql("x", "y") == "var(x) > var(y)"

    def test_observed_statistic_nan_when_undefined(self):
        assert np.isnan(VARIANCE_GREATER.observed_statistic(np.array([1.0]), np.array([1.0, 2.0])))


class TestMedianGreaterExtension:
    def test_supports(self):
        assert MEDIAN_GREATER.supports(np.array([1.0, 9.0, 9.0]), np.array([1.0, 1.0, 9.0]))

    def test_permutation_test(self):
        rng = derive_rng(3, "t")
        x = rng.normal(5, 1, 40)
        y = rng.normal(0, 1, 40)
        batch = SharedPermutations(40, 40, 100, rng)
        assert MEDIAN_GREATER.test(batch, x, y).p_value < 0.05

    def test_not_in_defaults(self):
        assert MEDIAN_GREATER not in DEFAULT_INSIGHT_TYPES

    def test_tie_slack_scales_with_magnitude(self):
        """The median test shares ``_one_sided``'s relative tie slack: at
        1e6-scale measures an absolute 1e-12 epsilon underflows the
        statistic's ulp and would stop absorbing tie noise."""
        rng = derive_rng(11, "median-ties")
        x = rng.normal(2.0e6, 1.0e5, 30)
        y = np.array([1.0e6])
        batch = SharedPermutations(30, 1, 150, rng)
        result = MEDIAN_GREATER.test(batch, x, y)
        pooled = np.concatenate([x, y])
        diffs = np.median(pooled[batch.x_indices], axis=1) - np.median(
            pooled[batch.complement_indices()], axis=1
        )
        slack = 1e-12 * max(1.0, abs(result.statistic))
        extreme = int(np.count_nonzero(diffs >= result.statistic - slack))
        assert result.p_value == (1.0 + extreme) / (1.0 + diffs.size)
        # n_y == 1 keeps many permutations identical to the observed split;
        # every one of those exact ties must count as extreme.
        assert extreme > 0
