"""Unit tests for repro.insights.insight (value objects + evidence)."""

import pytest

from repro.insights import CandidateInsight, InsightEvidence, MEAN_GREATER, TestedInsight


@pytest.fixture
def candidate():
    return CandidateInsight("cases", "month", "5", "4", "M")


@pytest.fixture
def tested(candidate):
    return TestedInsight(candidate, statistic=12.3, p_value=0.01, p_adjusted=0.03)


class TestCandidate:
    def test_key(self, candidate):
        assert candidate.key == ("cases", "month", "5", "4", "M")

    def test_pair_key_unordered(self, candidate):
        flipped = CandidateInsight("cases", "month", "4", "5", "M")
        assert candidate.pair_key == flipped.pair_key

    def test_describe(self, candidate):
        text = candidate.describe(MEAN_GREATER)
        assert "mean greater" in text and "month=5" in text


class TestTested:
    def test_significance_uses_adjusted_p(self, tested):
        assert tested.significance == pytest.approx(0.97)

    def test_is_significant_threshold(self, tested):
        assert tested.is_significant(0.95)
        assert not tested.is_significant(0.99)

    def test_key_delegates(self, tested, candidate):
        assert tested.key == candidate.key


class TestEvidence:
    def test_credibility_counts(self, tested):
        evidence = InsightEvidence(tested, n_supporting=3, n_postulating=6)
        assert evidence.credibility == 3
        assert evidence.credibility_ratio == 0.5
        assert evidence.type_two_error_probability == 0.5

    def test_zero_postulating_ratio_zero(self, tested):
        evidence = InsightEvidence(tested, n_supporting=0, n_postulating=0)
        assert evidence.credibility_ratio == 0.0
        assert evidence.type_two_error_probability == 1.0

    def test_full_support(self, tested):
        evidence = InsightEvidence(tested, n_supporting=4, n_postulating=4)
        assert evidence.credibility_ratio == 1.0
        assert evidence.type_two_error_probability == 0.0
