"""Unit tests for repro.insights.enumeration (and the counting lemmas)."""

from math import comb

import pytest

from repro.errors import InsightError
from repro.insights import (
    count_comparison_queries,
    count_hypothesis_queries_per_insight,
    count_insights,
    enumerate_candidates,
    table_adom_sizes,
)
from repro.relational import table_from_arrays


@pytest.fixture
def table():
    return table_from_arrays(
        {"a": ["x", "y", "z", "x"], "b": ["p", "q", "p", "q"]},
        {"m1": [1, 2, 3, 4], "m2": [4, 3, 2, 1]},
    )


class TestLemmas:
    def test_lemma_3_5_insight_count(self):
        # Vaccine-like: adoms [2, 107], 1 measure, 2 types.
        expected = (comb(2, 2) + comb(107, 2)) * 1 * 2
        assert count_insights([2, 107], 1, 2) == expected

    def test_lemma_3_2_comparison_count(self):
        # n=3 attributes -> factor (n-1)=2.
        expected = (comb(3, 2) + comb(4, 2) + comb(5, 2)) * 2 * 2 * 2
        assert count_comparison_queries([3, 4, 5], 2, 2) == expected

    def test_lemma_3_2_single_attribute_zero(self):
        assert count_comparison_queries([10], 1, 1) == 0

    def test_hypothesis_queries_per_insight(self):
        assert count_hypothesis_queries_per_insight(7) == 6  # paper: n - 1
        assert count_hypothesis_queries_per_insight(7, n_aggregates=2) == 12
        assert count_hypothesis_queries_per_insight(1) == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(InsightError):
            count_insights([2], -1, 1)


class TestEnumeration:
    def test_candidate_count_matches_lemma(self, table):
        candidates = list(enumerate_candidates(table))
        sizes = list(table_adom_sizes(table).values())
        assert len(candidates) == count_insights(sizes, 2, 2)

    def test_pairs_are_canonical(self, table):
        for c in enumerate_candidates(table):
            assert c.val < c.val_other  # lexicographic at enumeration time

    def test_types_filter(self, table):
        only_mean = list(enumerate_candidates(table, insight_types=["M"]))
        assert all(c.type_code == "M" for c in only_mean)
        both = list(enumerate_candidates(table))
        assert len(both) == 2 * len(only_mean)

    def test_attribute_filter(self, table):
        only_a = list(enumerate_candidates(table, attributes=["a"]))
        assert all(c.attribute == "a" for c in only_a)

    def test_measure_filter(self, table):
        only_m1 = list(enumerate_candidates(table, measures=["m1"]))
        assert all(c.measure == "m1" for c in only_m1)

    def test_pair_cap(self, table):
        capped = list(
            enumerate_candidates(table, insight_types=["M"], measures=["m1"],
                                 max_pairs_per_attribute=1)
        )
        by_attr = {}
        for c in capped:
            by_attr.setdefault(c.attribute, set()).add((c.val, c.val_other))
        assert all(len(pairs) == 1 for pairs in by_attr.values())

    def test_null_values_excluded(self):
        t = table_from_arrays({"a": ["x", None, "y"]}, {"m": [1, 2, 3]})
        values = {(c.val, c.val_other) for c in enumerate_candidates(t)}
        assert values == {("x", "y")}

    def test_no_measures_rejected(self):
        t = table_from_arrays({"a": ["x", "y"]}, {"m": [1, 2]})
        with pytest.raises(InsightError):
            list(enumerate_candidates(t, measures=[]))

    def test_adom_sizes(self, table):
        assert table_adom_sizes(table) == {"a": 3, "b": 2}
