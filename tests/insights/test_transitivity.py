"""Unit tests for repro.insights.transitivity."""

import pytest

from repro.insights import CandidateInsight, TestedInsight, deducible_count, prune_transitive


def insight(val, val_other, sig=0.99, measure="m", attribute="a", type_code="M"):
    return TestedInsight(
        CandidateInsight(measure, attribute, val, val_other, type_code),
        statistic=1.0,
        p_value=1 - sig,
        p_adjusted=1 - sig,
    )


class TestPruning:
    def test_transitive_edge_removed(self):
        chain = [insight("x", "y"), insight("y", "z"), insight("x", "z")]
        kept = prune_transitive(chain)
        pairs = {(i.candidate.val, i.candidate.val_other) for i in kept}
        assert pairs == {("x", "y"), ("y", "z")}

    def test_non_deducible_kept(self):
        star = [insight("x", "y"), insight("x", "z")]
        assert len(prune_transitive(star)) == 2

    def test_longer_chain(self):
        chain = [
            insight("a", "b"), insight("b", "c"), insight("c", "d"),
            insight("a", "c"), insight("a", "d"), insight("b", "d"),
        ]
        kept = prune_transitive(chain)
        pairs = {(i.candidate.val, i.candidate.val_other) for i in kept}
        assert pairs == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_families_independent(self):
        mixed = [
            insight("x", "y", measure="m1"),
            insight("y", "z", measure="m2"),
            insight("x", "z", measure="m1"),  # not deducible: m2 edge is another family
        ]
        assert len(prune_transitive(mixed)) == 3

    def test_types_are_separate_families(self):
        mixed = [
            insight("x", "y", type_code="M"),
            insight("y", "z", type_code="V"),
            insight("x", "z", type_code="M"),
        ]
        assert len(prune_transitive(mixed)) == 3

    def test_cycle_left_untouched(self):
        cycle = [insight("x", "y"), insight("y", "z"), insight("z", "x")]
        assert len(prune_transitive(cycle)) == 3

    def test_empty_and_singleton(self):
        assert prune_transitive([]) == []
        single = [insight("x", "y")]
        assert prune_transitive(single) == single

    def test_duplicate_edge_keeps_most_significant(self):
        weak = insight("x", "y", sig=0.96)
        strong = insight("x", "y", sig=0.999)
        kept = prune_transitive([weak, strong])
        assert len(kept) == 1
        assert kept[0].significance == pytest.approx(0.999)

    def test_order_preserved(self):
        items = [insight("x", "y"), insight("p", "q"), insight("y", "z")]
        kept = prune_transitive(items)
        assert [(i.candidate.val, i.candidate.val_other) for i in kept] == [
            ("x", "y"), ("p", "q"), ("y", "z"),
        ]


class TestDeducibleCount:
    def test_counts_removed(self):
        chain = [insight("x", "y"), insight("y", "z"), insight("x", "z")]
        assert deducible_count(chain) == 1
        assert deducible_count(chain[:2]) == 0
