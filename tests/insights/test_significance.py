"""Unit tests for repro.insights.significance."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.insights import CandidateInsight, SignificanceConfig, enumerate_candidates, significant_insights
from repro.insights import run_attribute_significance as run_attribute_tests
from repro.insights import run_significance_tests as run_candidate_tests
from repro.relational import table_from_arrays
from repro.stats import derive_rng


@pytest.fixture
def planted():
    """group g1 has mean ~ +30 over g0/g2 on m1; g2 has 5x spread on m2."""
    rng = derive_rng(4242, "planted")
    n = 450
    g = rng.choice(["g0", "g1", "g2"], n)
    other = rng.choice(["o0", "o1"], n)
    m1 = rng.normal(50, 5, n) + np.where(g == "g1", 30.0, 0.0)
    m2 = rng.normal(0, 1, n) * np.where(g == "g2", 5.0, 1.0)
    return table_from_arrays({"g": g, "other": other}, {"m1": m1, "m2": m2})


class TestConfig:
    def test_engine_validated(self):
        with pytest.raises(StatisticsError):
            SignificanceConfig(engine="bayesian")

    def test_threshold_validated(self):
        with pytest.raises(StatisticsError):
            SignificanceConfig(threshold=1.5)


class TestTestCandidates:
    def test_planted_mean_insights_found(self, planted):
        results = significant_insights(planted, insight_types=["M"], measures=["m1"])
        keys = {r.candidate.key for r in results}
        assert ("m1", "g", "g1", "g0", "M") in keys
        assert ("m1", "g", "g1", "g2", "M") in keys

    def test_planted_variance_insight_found(self, planted):
        results = significant_insights(planted, insight_types=["V"], measures=["m2"])
        vals = {(r.candidate.val, r.candidate.val_other) for r in results
                if r.candidate.attribute == "g"}
        assert ("g2", "g0") in vals and ("g2", "g1") in vals

    def test_orientation_follows_observed_statistic(self, planted):
        candidates = [CandidateInsight("m1", "g", "g0", "g1", "M")]
        tested = run_candidate_tests(planted, candidates)
        assert tested[0].candidate.val == "g1"  # flipped toward dominance
        assert tested[0].statistic > 0

    def test_statistics_positive_after_orientation(self, planted):
        tested = run_candidate_tests(planted, enumerate_candidates(planted))
        assert all(t.statistic >= 0 or np.isnan(t.statistic) for t in tested)

    def test_no_false_positives_on_null_attribute(self, planted):
        """'other' carries no effect; BH should keep false discoveries low."""
        results = significant_insights(planted, attributes=["other"])
        assert len(results) <= 2  # a stray one can slip through, not many

    def test_bh_correction_reduces_significance(self, planted):
        with_bh = run_candidate_tests(planted, enumerate_candidates(planted))
        config = SignificanceConfig(apply_bh=False)
        without = run_candidate_tests(planted, enumerate_candidates(planted), config)
        by_key_no = {t.candidate.key: t for t in without}
        for t in with_bh:
            raw = by_key_no[t.candidate.key]
            assert t.p_adjusted >= raw.p_adjusted - 1e-12

    def test_parametric_engine(self, planted):
        config = SignificanceConfig(engine="parametric")
        results = [
            t
            for t in run_candidate_tests(planted, enumerate_candidates(planted, measures=["m1"]), config)
            if t.is_significant()
        ]
        keys = {r.candidate.key for r in results}
        assert ("m1", "g", "g1", "g0", "M") in keys

    def test_deterministic_given_seed(self, planted):
        config = SignificanceConfig(seed=11)
        one = run_candidate_tests(planted, enumerate_candidates(planted, measures=["m1"]), config)
        two = run_candidate_tests(planted, enumerate_candidates(planted, measures=["m1"]), config)
        assert [(t.candidate.key, t.p_value) for t in one] == [
            (t.candidate.key, t.p_value) for t in two
        ]

    def test_share_across_pairs_toggle_same_conclusions(self, planted):
        shared = SignificanceConfig(share_across_pairs=True, seed=5)
        fresh = SignificanceConfig(share_across_pairs=False, seed=5)
        ks = enumerate_candidates(planted, measures=["m1"], insight_types=["M"])
        candidates = list(ks)
        sig_shared = {t.candidate.key for t in run_candidate_tests(planted, candidates, shared)
                      if t.is_significant()}
        sig_fresh = {t.candidate.key for t in run_candidate_tests(planted, candidates, fresh)
                     if t.is_significant()}
        # Same planted effects must be detected either way.
        assert ("m1", "g", "g1", "g0", "M") in sig_shared
        assert ("m1", "g", "g1", "g0", "M") in sig_fresh

    def test_missing_value_candidates_dropped(self, planted):
        ghost = CandidateInsight("m1", "g", "ghost", "g0", "M")
        assert run_candidate_tests(planted, [ghost]) == []

    def test_unknown_measure_raises(self, planted):
        bad = CandidateInsight("nope", "g", "g0", "g1", "M")
        with pytest.raises(StatisticsError, match="unknown measure"):
            run_candidate_tests(planted, [bad])

    def test_progress_callback(self, planted):
        calls = []
        run_candidate_tests(
            planted,
            enumerate_candidates(planted, measures=["m1"], insight_types=["M"]),
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls and calls[-1][0] == calls[-1][1]

    def test_progress_is_per_candidate_with_legacy_kernel(self, planted):
        candidates = list(enumerate_candidates(planted, measures=["m1"], insight_types=["M"]))
        calls = []
        run_candidate_tests(
            planted, candidates, SignificanceConfig(kernel="legacy"),
            progress=lambda done, total: calls.append((done, total)),
        )
        assert [c[0] for c in calls] == list(range(1, len(candidates) + 1))
        assert all(total == len(candidates) for _, total in calls)

    def test_progress_monotone_with_batched_kernel(self, planted):
        candidates = list(enumerate_candidates(planted, measures=["m1", "m2"]))
        calls = []
        run_candidate_tests(
            planted, candidates, SignificanceConfig(kernel="batched"),
            progress=lambda done, total: calls.append((done, total)),
        )
        dones = [c[0] for c in calls]
        assert len(calls) >= 2                     # finer than one terminal tick
        assert dones == sorted(dones)
        assert calls[-1] == (len(candidates), len(candidates))

    def test_test_attribute_matches_full_run(self, planted):
        candidates = [
            c for c in enumerate_candidates(planted, measures=["m1"], insight_types=["M"])
            if c.attribute == "g"
        ]
        via_attr = run_attribute_tests(planted, "g", candidates)
        via_full = [
            t for t in run_candidate_tests(planted, candidates) if t.candidate.attribute == "g"
        ]
        assert {t.candidate.key for t in via_attr} == {t.candidate.key for t in via_full}


class TestFamilyChunks:
    def test_partition_preserves_order(self, planted):
        from repro.insights import family_chunks

        candidates = list(enumerate_candidates(planted, measures=["m1"]))
        chunks = family_chunks(candidates, 4)
        flattened = [c for chunk in chunks for c in chunk]
        assert flattened == candidates

    def test_pair_families_never_split(self, planted):
        from repro.insights import family_chunks

        candidates = list(enumerate_candidates(planted))
        for size in (1, 2, 5, 50):
            seen_pairs = set()
            for chunk in family_chunks(candidates, size):
                pairs_here = {
                    (c.attribute, c.pair_key) for c in chunk
                }
                # A pair family appearing in two chunks would split a batch.
                assert not (pairs_here & seen_pairs)
                seen_pairs |= pairs_here

    def test_chunk_size_validated(self, planted):
        from repro.insights import family_chunks

        with pytest.raises(StatisticsError):
            family_chunks([], 0)


class TestChunkInvariance:
    def test_chunked_equals_unchunked(self, planted):
        """Splitting an attribute's candidates into chunks and merging must
        give exactly the unchunked results (key-derived batches)."""
        from repro.insights import finalize_attribute, run_attribute_chunk

        candidates = [
            c for c in enumerate_candidates(planted, insight_types=["M"], measures=["m1"])
            if c.attribute == "g"
        ]
        whole = run_attribute_tests(planted, "g", candidates)
        oriented, results = [], []
        for start in range(0, len(candidates), 1):  # extreme: one per chunk
            o, r = run_attribute_chunk(planted, "g", candidates[start:start + 1])
            oriented.extend(o)
            results.extend(r)
        merged = finalize_attribute(oriented, results)
        assert [(t.candidate.key, t.p_value, t.p_adjusted) for t in whole] == [
            (t.candidate.key, t.p_value, t.p_adjusted) for t in merged
        ]
