"""The stable facade: ``repro.Session``, ``repro.generate_notebook``,
``repro.ReproConfig``, and the deprecation shims over the legacy surface."""

from __future__ import annotations

import json
import warnings

import pytest

import repro
from repro import ReproConfig, Session, generate_notebook, obs
from repro.datasets import covid_table
from repro.errors import ReproError
from repro.generation import GenerationConfig, NotebookGenerator
from repro.generation.pipeline import preset
from repro.insights import SignificanceConfig
from repro.parallel import ParallelConfig
from repro.relational import write_csv


@pytest.fixture(autouse=True)
def isolated_obs():
    with obs.capture():
        yield


@pytest.fixture()
def quick_config():
    return ReproConfig(budget=4.0).with_significance(n_permutations=60)


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------


def test_session_from_table(covid, quick_config):
    with Session(covid, config=quick_config) as session:
        if session.storage == "heap":
            assert session.table is covid
        else:  # shm plane (REPRO_SHM=1 runs): materialized, value-identical
            assert session.table == covid
        assert session.table_name == "dataset"
        run = session.generate()
    assert run.selected
    assert run.report.ok


def test_session_from_csv_path_uses_stem(tmp_path, quick_config):
    path = tmp_path / "monitoring.csv"
    write_csv(covid_table(200), path)
    with Session(path, config=quick_config) as session:
        assert session.table_name == "monitoring"
        assert session.table.n_rows == 200
    # str paths work too.
    with Session(str(path), config=quick_config) as session:
        assert session.table_name == "monitoring"


def test_session_rejects_other_sources():
    with pytest.raises(ReproError, match="Table or a CSV path"):
        Session(42)


def test_repeated_runs_are_identical_and_reuse_the_backend(covid, quick_config):
    with Session(covid, config=quick_config) as session:
        backend = session.backend
        first = session.generate()
        assert session.backend is backend
        second = session.generate()
    assert [str(q.query) for q in first.selected] == [
        str(q.query) for q in second.selected
    ]


def test_write_notebook_produces_valid_ipynb(covid, quick_config, tmp_path):
    out = tmp_path / "covid.ipynb"
    with Session(covid, config=quick_config, table_name="covid") as session:
        run = session.generate()
        returned = session.write_notebook(run, out, title="smoke")
    assert returned == out
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["nbformat"] == 4
    assert any("smoke" in "".join(c.get("source", [])) for c in payload["cells"])


def test_closed_session_refuses_a_backend(covid, quick_config):
    session = Session(covid, config=quick_config)
    session.close()
    session.close()  # idempotent
    with pytest.raises(ReproError, match="closed"):
        session.backend


def test_tableless_session_has_no_backend():
    session = Session(None)
    with pytest.raises(ReproError, match="table-less"):
        session.backend


def test_session_owns_a_private_trace(covid, quick_config):
    with Session(covid, config=quick_config) as session:
        session.generate()
        spans = session.tracer.spans()
    assert any(span.name.startswith("stage.") for span in spans)
    # The surrounding capture() stack saw none of it.
    assert not any(
        span.name.startswith("stage.") for span in obs.current_tracer().spans()
    )


def test_generate_notebook_one_call(covid, quick_config, tmp_path):
    out = tmp_path / "one-call.ipynb"
    run = generate_notebook(covid, config=quick_config, out=out)
    assert run.selected
    assert json.loads(out.read_text(encoding="utf-8"))["nbformat"] == 4


def test_facade_is_exported_at_package_top():
    for name in ("Session", "generate_notebook", "ReproConfig", "ParallelConfig"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None


# ---------------------------------------------------------------------------
# Thread safety
# ---------------------------------------------------------------------------


def test_concurrent_generate_on_one_session_serializes(covid, quick_config):
    """Two threads racing one Session both succeed: runs serialize on the
    session/run locks instead of corrupting the ambient obs state."""
    import threading

    results: list = [None, None]
    errors: list = []

    with Session(covid, config=quick_config) as session:

        def worker(index: int) -> None:
            try:
                results[index] = session.generate()
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(t.is_alive() for t in threads)

    assert errors == []
    first, second = results
    assert [str(q.query) for q in first.selected] == [
        str(q.query) for q in second.selected
    ]
    # Both runs' spans landed in the session's private trace, untangled.
    stage_spans = [s for s in session.tracer.spans()
                   if s.name == "stage.stats"]
    assert len(stage_spans) == 2


def test_generate_on_a_closed_session_raises(covid, quick_config):
    session = Session(covid, config=quick_config)
    session.close()
    with pytest.raises(ReproError, match="closed"):
        session.generate()


def test_busy_probe_reflects_an_in_flight_run(covid, quick_config):
    with Session(covid, config=quick_config) as session:
        assert session.busy is False
        session.generate()
        assert session.busy is False  # released once the run returns


# ---------------------------------------------------------------------------
# ReproConfig
# ---------------------------------------------------------------------------


def test_config_round_trips_through_dict():
    config = ReproConfig(
        budget=7.5,
        solver="exact",
        generation=GenerationConfig(
            backend="sqlite",
            significance=SignificanceConfig(kernel="legacy", n_permutations=123),
            parallel=ParallelConfig(workers=3, chunk_size=17),
        ),
    )
    rebuilt = ReproConfig.from_dict(config.to_dict())
    assert rebuilt.to_dict() == config.to_dict()
    assert rebuilt.budget == 7.5
    assert rebuilt.backend == "sqlite"
    assert rebuilt.significance.n_permutations == 123
    assert rebuilt.parallel.workers == 3


def test_config_dict_is_json_serializable():
    json.dumps(ReproConfig().to_dict())


@pytest.mark.parametrize(
    "payload, match",
    [
        ({"budgett": 5}, "unknown ReproConfig keys"),
        ({"generation": {"bacckend": "sqlite"}}, "unknown generation keys"),
        ({"generation": {"significance": {"kernle": "batched"}}},
         "unknown significance keys"),
    ],
)
def test_from_dict_rejects_unknown_keys(payload, match):
    with pytest.raises(ReproError, match=match):
        ReproConfig.from_dict(payload)


def test_from_env_reads_the_ci_matrix_hooks():
    config = ReproConfig.from_env(
        {
            "REPRO_BACKEND": "sqlite",
            "REPRO_STATS_KERNEL": "legacy",
            "REPRO_WORKERS": "2",
            "REPRO_MQO": "0",
            "REPRO_BUDGET": "3.5",
            "REPRO_SOLVER": "exact",
            "REPRO_DEADLINE": "30",
        }
    )
    assert config.backend == "sqlite"
    assert config.significance.kernel == "legacy"
    assert config.generation.mqo is False
    assert config.parallel.workers == 2
    assert config.budget == 3.5
    assert config.solver == "exact"
    assert config.deadline_seconds == 30.0


def test_from_env_empty_is_default():
    assert ReproConfig.from_env({}).to_dict() == ReproConfig().to_dict()


def test_from_env_rejects_garbage_numbers():
    with pytest.raises(ReproError, match="REPRO_WORKERS"):
        ReproConfig.from_env({"REPRO_WORKERS": "many"})


def test_from_env_rejects_garbage_mqo_flag():
    with pytest.raises(ReproError, match="REPRO_MQO"):
        ReproConfig.from_env({"REPRO_MQO": "maybe"})


def test_mqo_round_trips_through_dict():
    config = ReproConfig().with_generation(mqo=False)
    restored = ReproConfig.from_dict(config.to_dict())
    assert restored.generation.mqo is False
    assert restored.to_dict() == config.to_dict()


def test_with_helpers_are_functional_updates():
    base = ReproConfig()
    changed = base.with_parallel(workers=4).with_significance(n_permutations=9)
    assert changed.parallel.workers == 4
    assert changed.significance.n_permutations == 9
    # The original is untouched (frozen + copy-on-write).
    assert base.parallel.workers == ParallelConfig().workers
    assert base.significance.n_permutations != 9


def test_config_validates_at_construction():
    with pytest.raises(ReproError, match="solver"):
        ReproConfig(solver="quantum")
    with pytest.raises(ReproError, match="budget"):
        ReproConfig(budget=0)


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def fresh_deprecations():
    from repro.deprecation import reset

    reset()
    yield
    reset()


def test_notebook_generator_warns_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        NotebookGenerator()
        NotebookGenerator()
    messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(messages) == 1
    assert "repro.Session" in str(messages[0].message)


def test_preset_does_not_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        preset("wsc-approx")
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_legacy_parallel_knobs_warn_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        config = GenerationConfig(n_threads=2, parallel_backend="processes")
        GenerationConfig(n_threads=4)
    messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(messages) == 1
    assert "ParallelConfig" in str(messages[0].message)
    # The shim still takes effect.
    assert config.effective_parallel().workers == 2
    assert config.effective_parallel().backend == "processes"


def test_modern_config_does_not_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        GenerationConfig(parallel=ParallelConfig(workers=8))
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
