"""The versioned mutation API: ``Session.append`` + ``generate(since=)``.

The headline acceptance test for incremental recompute: after appending
rows, an incremental run must render a notebook *byte-identical* to a
cold session over the concatenated data — across backends, permutation
kernels, and worker counts — while skipping untouched partitions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ReproConfig, Session, obs
from repro.datasets import covid_table
from repro.errors import ReproError
from repro.notebook.ipynb import to_ipynb_json
from repro.relational import write_csv
from repro.relational.table import content_token


@pytest.fixture(autouse=True)
def ambient_metrics():
    """Isolate ambient observability; yields the ambient registry.

    ``Session.generate`` redirects into ``session.metrics``, but
    ``Session.append`` runs outside any run scope — its cache-migration
    counters land here.
    """
    with obs.capture() as (_, metrics):
        yield metrics


FULL = covid_table(240)
BASE_ROWS = 200


def table_prefix(n):
    return FULL.take(np.arange(n))


def block(start, stop):
    """Rows ``start:stop`` of the full table, as an append mapping."""
    out = {}
    for name in FULL.schema.categorical_names:
        col = FULL.categorical_column(name)
        out[name] = [
            col.categories[c] if c >= 0 else None
            for c in col.codes[start:stop]
        ]
    for name in FULL.schema.measure_names:
        data = FULL.measure_column(name).data[start:stop]
        out[name] = [None if np.isnan(v) else float(v) for v in data]
    return out


def quick_config(backend="columnar", kernel="batched", workers=1):
    return (
        ReproConfig(budget=3.0)
        .with_generation(backend=backend)
        .with_significance(n_permutations=30, kernel=kernel)
        .with_parallel(workers=workers)
    )


def notebook_bytes(session, run):
    return to_ipynb_json(session.render(run)).encode("utf-8")


class TestVersion:
    def test_version_is_content_addressed(self):
        with Session(table_prefix(BASE_ROWS)) as session:
            assert session.version == content_token(table_prefix(BASE_ROWS))

    def test_append_returns_advanced_token(self):
        with Session(table_prefix(BASE_ROWS)) as session:
            before = session.version
            after = session.append(block(BASE_ROWS, 240))
            assert after == session.version != before
            assert after == content_token(FULL)
            assert session.table.n_rows == 240

    def test_tableless_session_refuses_append(self):
        with Session(None) as session:
            assert session.version is None
            with pytest.raises(ReproError, match="table-less"):
                session.append(block(BASE_ROWS, 240))

    def test_closed_session_refuses_append(self):
        session = Session(table_prefix(BASE_ROWS))
        session.close()
        with pytest.raises(ReproError, match="closed"):
            session.append(block(BASE_ROWS, 240))


class TestAppendParity:
    @pytest.mark.parametrize("backend", ["columnar", "sqlite"])
    @pytest.mark.parametrize("kernel", ["batched", "legacy"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_incremental_notebook_is_byte_identical(
        self, backend, kernel, workers
    ):
        config = quick_config(backend, kernel, workers)
        with Session(table_prefix(BASE_ROWS), config=config) as session:
            session.generate()
            since = session.version  # the version the stats memo covers
            session.append(block(BASE_ROWS, 240))
            warm_run = session.generate(since=since)
            warm = notebook_bytes(session, warm_run)
            skipped = session.metrics.snapshot()["counters"].get(
                "stats.partitions_skipped", 0
            )
        with Session(FULL, config=config) as session:
            cold = notebook_bytes(session, session.generate())
        assert warm == cold
        assert skipped > 0, "incremental run must actually skip partitions"

    def test_chained_appends_stay_byte_identical(self):
        config = quick_config()
        with Session(table_prefix(160), config=config) as session:
            session.generate()
            for start, stop in ((160, 200), (200, 240)):
                since = session.version
                session.append(block(start, stop))
                warm_run = session.generate(since=since)
            warm = notebook_bytes(session, warm_run)
        with Session(FULL, config=config) as session:
            cold = notebook_bytes(session, session.generate())
        assert warm == cold

    def test_unknown_since_token_falls_back_to_full_run(self):
        config = quick_config()
        with Session(table_prefix(BASE_ROWS), config=config) as session:
            session.generate()
            session.append(block(BASE_ROWS, 240))
            warm = notebook_bytes(
                session, session.generate(since="999-notaversion")
            )
            counters = session.metrics.snapshot()["counters"]
            assert counters.get("stats.partitions_skipped", 0) == 0
        with Session(FULL, config=config) as session:
            cold = notebook_bytes(session, session.generate())
        assert warm == cold

    def test_append_during_worker_fleet_refreshes_it(self):
        config = quick_config(workers=2)
        with Session(table_prefix(BASE_ROWS), config=config) as session:
            session.generate()  # spins the fleet up on the base table
            since = session.version
            session.append(block(BASE_ROWS, 240))
            session.generate(since=since)
            counters = session.metrics.snapshot()["counters"]
            assert counters.get("parallel.fleet_refreshes", 0) >= 1


class TestFromCsv:
    def test_from_csv_then_append(self, tmp_path):
        path = tmp_path / "metrics.csv"
        write_csv(table_prefix(BASE_ROWS), path)
        with Session.from_csv(path, config=quick_config()) as session:
            assert session.table_name == "metrics"
            session.append(block(BASE_ROWS, 240))
            assert session.version == content_token(FULL)


class TestAppendCacheCarryover:
    def test_untouched_partitions_keep_their_aggregates(self, ambient_metrics):
        with Session(table_prefix(BASE_ROWS), config=quick_config()) as session:
            session.generate()
            session.append(block(BASE_ROWS, 240))
            counters = session.metrics.snapshot()["counters"]
            assert counters["session.appends"] == 1
            assert counters["session.rows_appended"] == 40
            ambient = ambient_metrics.snapshot()["counters"]
            assert ambient.get("cache.groups_carried", 0) > 0
            assert ambient.get("cache.aggregates_migrated", 0) > 0
