"""Unit tests for repro.queries.cost."""

import pytest

from repro.queries import ComparisonQuery, MeasuredCost, UniformCost
from repro.relational import table_from_arrays


@pytest.fixture
def table():
    return table_from_arrays(
        {"month": ["4", "5"] * 20, "continent": ["EU", "AS"] * 20},
        {"cases": list(range(40))},
    )


@pytest.fixture
def query():
    return ComparisonQuery("continent", "month", "5", "4", "cases", "sum")


class TestUniformCost:
    def test_default_unit(self, query):
        assert UniformCost().cost(query) == 1.0

    def test_custom_unit(self, query):
        assert UniformCost(2.5).cost(query) == 2.5


class TestMeasuredCost:
    def test_positive_and_memoized(self, table, query):
        model = MeasuredCost(table, "t")
        first = model.cost(query)
        assert first > 0.0
        assert model.cost(query) == first  # memoized, no re-run
        assert model.timings() == {query.key: first}

    def test_distinct_queries_timed_separately(self, table, query):
        model = MeasuredCost(table, "t")
        other = ComparisonQuery("continent", "month", "4", "5", "cases", "avg")
        model.cost(query)
        model.cost(other)
        assert len(model.timings()) == 2
