"""Unit tests for repro.queries.evaluate — the three paths must agree."""

import numpy as np
import pytest

from repro.insights import MEAN_GREATER, VARIANCE_GREATER
from repro.queries import (
    ComparisonQuery,
    evaluate_comparison,
    evaluate_comparison_cached,
    evaluate_comparison_sql,
    supported_types,
)
from repro.relational import MaterializedAggregate, PartialAggregateCache, table_from_arrays
from repro.stats import derive_rng


@pytest.fixture
def table():
    rng = derive_rng(55, "eval")
    n = 300
    month = rng.choice(["4", "5", "6"], n)
    cont = rng.choice(["EU", "AS", "AF"], n)
    cases = rng.normal(50, 10, n) + np.where(month == "5", 40.0, 0.0)
    return table_from_arrays({"month": month, "continent": cont}, {"cases": cases})


@pytest.fixture
def query():
    return ComparisonQuery("continent", "month", "5", "4", "cases", "avg")


class TestDirectEvaluation:
    def test_groups_sorted(self, table, query):
        result = evaluate_comparison(table, query)
        assert list(result.groups) == sorted(result.groups)

    def test_theta_counts_selection_tuples(self, table, query):
        result = evaluate_comparison(table, query)
        month = table.categorical_column("month")
        expected = int(month.equals_mask("5").sum() + month.equals_mask("4").sum())
        assert result.tuples_aggregated == expected

    def test_supports_mean_greater(self, table, query):
        result = evaluate_comparison(table, query)
        assert result.supports(MEAN_GREATER)
        assert not evaluate_comparison(
            table, ComparisonQuery("continent", "month", "4", "5", "cases", "avg")
        ).supports(MEAN_GREATER)

    def test_empty_result_supports_nothing(self):
        t = table_from_arrays(
            {"a": ["a0", "a1"], "b": ["b0", "b1"]}, {"m": [1.0, 2.0]}
        )
        # b0 rows only under a0; b1 rows only under a1 -> empty join.
        query = ComparisonQuery("a", "b", "b0", "b1", "m", "sum")
        result = evaluate_comparison(t, query)
        assert result.n_groups == 0
        assert not result.supports(MEAN_GREATER)
        assert supported_types(result, [MEAN_GREATER, VARIANCE_GREATER]) == []

    def test_invalid_query_rejected(self, table):
        from repro.errors import QueryError

        bad = ComparisonQuery("cases", "month", "4", "5", "cases", "sum")
        with pytest.raises(QueryError):
            evaluate_comparison(table, bad)


class TestPathAgreement:
    @pytest.mark.parametrize("agg", ["sum", "avg", "min", "max", "count", "var"])
    def test_direct_vs_sql(self, table, agg):
        query = ComparisonQuery("continent", "month", "5", "6", "cases", agg)
        direct = evaluate_comparison(table, query)
        via_sql = evaluate_comparison_sql(table, "t", query)
        assert direct.groups == via_sql.groups
        np.testing.assert_allclose(direct.x, via_sql.x, rtol=1e-9, equal_nan=True)
        np.testing.assert_allclose(direct.y, via_sql.y, rtol=1e-9, equal_nan=True)
        assert direct.tuples_aggregated == via_sql.tuples_aggregated

    def test_direct_vs_cached_from_cover(self, table, query):
        cache = PartialAggregateCache()
        cache.add(MaterializedAggregate.build(table, ["month", "continent"]))
        direct = evaluate_comparison(table, query)
        cached = evaluate_comparison_cached(cache, query)
        assert direct.groups == cached.groups
        np.testing.assert_allclose(direct.x, cached.x, rtol=1e-9)
        assert direct.tuples_aggregated == cached.tuples_aggregated

    def test_cached_via_rollup_from_superset(self, table, query):
        bigger = table.with_column(
            table.schema["month"].__class__("extra", table.schema["month"].kind),
            table.column("month").take(np.arange(table.n_rows)),
        )
        cache = PartialAggregateCache()
        cache.add(MaterializedAggregate.build(bigger, ["month", "continent", "extra"]))
        cached = evaluate_comparison_cached(cache, query)
        direct = evaluate_comparison(table, query)
        assert cached.groups == direct.groups
        np.testing.assert_allclose(cached.x, direct.x, rtol=1e-9)


class TestSupportedTypes:
    def test_lists_only_supported(self, table, query):
        result = evaluate_comparison(table, query)
        types = supported_types(result, [MEAN_GREATER, VARIANCE_GREATER])
        assert MEAN_GREATER in types
