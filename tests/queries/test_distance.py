"""Unit + property tests: the query distance must be a true metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.queries import (
    DEFAULT_WEIGHTS,
    ComparisonQuery,
    DistanceWeights,
    query_distance,
    sequence_distance,
)

ATTRS = ["a1", "a2", "a3"]
VALUES = ["v1", "v2", "v3", "v4"]
MEASURES = ["m1", "m2"]
AGGS = ["sum", "avg"]


@st.composite
def queries(draw):
    b, a = draw(st.permutations(ATTRS).map(lambda p: p[:2]))
    val, val_other = draw(st.permutations(VALUES).map(lambda p: p[:2]))
    return ComparisonQuery(
        a, b, val, val_other, draw(st.sampled_from(MEASURES)), draw(st.sampled_from(AGGS))
    )


class TestWeights:
    def test_defaults_follow_paper_ordering(self):
        w = DEFAULT_WEIGHTS
        assert w.selection_values > w.selection_attribute > w.group_by >= w.measure
        assert w.measure == w.agg

    def test_negative_weight_rejected(self):
        with pytest.raises(QueryError):
            DistanceWeights(selection_values=-1.0)

    def test_maximum(self):
        w = DistanceWeights(1, 1, 1, 1, 1)
        assert w.maximum == 5.0


class TestPointwise:
    def test_identical_queries_zero(self):
        q = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        assert query_distance(q, q) == 0.0

    def test_flipped_values_zero_distance(self):
        q1 = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        q2 = ComparisonQuery("a1", "a2", "v2", "v1", "m1", "sum")
        assert query_distance(q1, q2) == 0.0  # unordered pair

    def test_one_shared_value_half_weight(self):
        q1 = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        q2 = ComparisonQuery("a1", "a2", "v1", "v3", "m1", "sum")
        assert query_distance(q1, q2) == DEFAULT_WEIGHTS.selection_values * 0.5

    def test_disjoint_values_full_weight(self):
        q1 = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        q2 = ComparisonQuery("a1", "a2", "v3", "v4", "m1", "sum")
        assert query_distance(q1, q2) == DEFAULT_WEIGHTS.selection_values

    def test_each_part_contributes(self):
        base = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        assert query_distance(
            base, ComparisonQuery("a3", "a2", "v1", "v2", "m1", "sum")
        ) == DEFAULT_WEIGHTS.group_by
        assert query_distance(
            base, ComparisonQuery("a1", "a2", "v1", "v2", "m2", "sum")
        ) == DEFAULT_WEIGHTS.measure
        assert query_distance(
            base, ComparisonQuery("a1", "a2", "v1", "v2", "m1", "avg")
        ) == DEFAULT_WEIGHTS.agg

    def test_selection_attribute_change(self):
        q1 = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        q2 = ComparisonQuery("a1", "a3", "v1", "v2", "m1", "sum")
        assert query_distance(q1, q2) == DEFAULT_WEIGHTS.selection_attribute


class TestMetricAxioms:
    @settings(max_examples=200, deadline=None)
    @given(queries(), queries())
    def test_symmetry(self, q1, q2):
        assert query_distance(q1, q2) == query_distance(q2, q1)

    @settings(max_examples=200, deadline=None)
    @given(queries(), queries())
    def test_non_negativity_and_bound(self, q1, q2):
        d = query_distance(q1, q2)
        assert 0.0 <= d <= DEFAULT_WEIGHTS.maximum

    @settings(max_examples=300, deadline=None)
    @given(queries(), queries(), queries())
    def test_triangle_inequality(self, q1, q2, q3):
        """The TAP's correctness hinges on this (Section 4.2)."""
        d12 = query_distance(q1, q2)
        d23 = query_distance(q2, q3)
        d13 = query_distance(q1, q3)
        assert d13 <= d12 + d23 + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(queries())
    def test_identity(self, q):
        assert query_distance(q, q) == 0.0


class TestSequenceDistance:
    def test_empty_and_single(self):
        q = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        assert sequence_distance([]) == 0.0
        assert sequence_distance([q]) == 0.0

    def test_sums_consecutive(self):
        q1 = ComparisonQuery("a1", "a2", "v1", "v2", "m1", "sum")
        q2 = ComparisonQuery("a1", "a2", "v1", "v2", "m2", "sum")
        q3 = ComparisonQuery("a1", "a2", "v1", "v2", "m2", "avg")
        assert sequence_distance([q1, q2, q3]) == pytest.approx(
            query_distance(q1, q2) + query_distance(q2, q3)
        )
