"""Unit tests for repro.queries.sqlgen — all emitted SQL must parse and run."""

import pytest

from repro.insights import MEAN_GREATER, VARIANCE_GREATER
from repro.queries import (
    ComparisonQuery,
    bind_table,
    comparison_aliases,
    comparison_sql,
    comparison_sql_pivot,
    hypothesis_sql,
    sql_identifier,
    sql_string,
    value_alias,
)
from repro.relational import table_from_arrays
from repro.sqlengine import Catalog, execute_sql, parse_sql


@pytest.fixture
def query():
    return ComparisonQuery("continent", "month", "5", "4", "cases", "sum")


@pytest.fixture
def table():
    return table_from_arrays(
        {"month": ["4", "5", "4", "5"], "continent": ["EU", "EU", "AS", "AS"]},
        {"cases": [10.0, 30.0, 20.0, 60.0]},
    )


class TestIdentifiers:
    def test_plain_identifier_unquoted(self):
        assert sql_identifier("continent") == "continent"

    def test_keyword_quoted(self):
        assert sql_identifier("order") == '"order"'

    def test_spaces_quoted(self):
        assert sql_identifier("nb meters") == '"nb meters"'

    def test_sql_string_escaping(self):
        assert sql_string("it's") == "'it''s'"

    def test_value_alias_plain(self):
        assert value_alias("May") == "May"

    def test_value_alias_numeric(self):
        assert value_alias("4") == "val_4"

    def test_value_alias_sanitized(self):
        assert value_alias("Île-de-France") == "val__le_de_France"

    def test_value_alias_collision_avoided(self):
        taken = set()
        first = value_alias("4", taken)
        second = value_alias("4", taken)
        assert first != second

    def test_comparison_aliases_distinct(self):
        q = ComparisonQuery("a", "b", "x!", "x?", "m", "sum")
        one, two = comparison_aliases(q)
        assert one != two


class TestGeneratedSQLParses:
    def test_comparison_sql_parses(self, query):
        parse_sql(bind_table(comparison_sql(query), "covid"))

    def test_pivot_sql_parses(self, query):
        parse_sql(bind_table(comparison_sql_pivot(query), "covid"))

    def test_hypothesis_sql_parses(self, query):
        for itype in (MEAN_GREATER, VARIANCE_GREATER):
            parse_sql(bind_table(hypothesis_sql(query, itype), "covid"))

    def test_weird_labels_still_parse(self):
        q = ComparisonQuery("group by", "sel'attr", "val'1", "val 2", "my measure", "avg")
        parse_sql(bind_table(comparison_sql(q), "the table"))
        parse_sql(bind_table(hypothesis_sql(q, MEAN_GREATER), "the table"))


class TestGeneratedSQLRuns:
    def test_comparison_sql_result(self, query, table):
        catalog = Catalog({"covid": table})
        out = execute_sql(bind_table(comparison_sql(query), "covid"), catalog)
        assert out.n_rows == 2
        assert out.to_dict()["continent"] == ["AS", "EU"]
        assert out.to_dict()["val_5"] == [60.0, 30.0]
        assert out.to_dict()["val_4"] == [20.0, 10.0]

    def test_pivot_sql_result(self, query, table):
        catalog = Catalog({"covid": table})
        out = execute_sql(bind_table(comparison_sql_pivot(query), "covid"), catalog)
        assert out.n_rows == 4  # (continent, month) combinations

    def test_hypothesis_sql_supports(self, query, table):
        catalog = Catalog({"covid": table})
        sql = bind_table(hypothesis_sql(query, MEAN_GREATER), "covid")
        out = execute_sql(sql, catalog)
        assert out.n_rows == 1
        assert out.to_dict()["hypothesis"] == ["mean greater"]

    def test_hypothesis_sql_not_supported(self, table):
        reversed_query = ComparisonQuery("continent", "month", "4", "5", "cases", "sum")
        catalog = Catalog({"covid": table})
        sql = bind_table(hypothesis_sql(reversed_query, MEAN_GREATER), "covid")
        assert execute_sql(sql, catalog).n_rows == 0

    def test_join_and_pivot_forms_agree(self, query, table):
        catalog = Catalog({"covid": table})
        join_form = execute_sql(bind_table(comparison_sql(query), "covid"), catalog)
        pivot_form = execute_sql(bind_table(comparison_sql_pivot(query), "covid"), catalog)
        # Reassemble the pivot rows into the join form's two columns.
        per_group: dict[str, dict[str, float]] = {}
        for cont, month, value in zip(*pivot_form.to_dict().values()):
            per_group.setdefault(cont, {})[month] = value
        for cont, v5, v4 in zip(*join_form.to_dict().values()):
            assert per_group[cont]["5"] == v5
            assert per_group[cont]["4"] == v4


class TestPivotAndJoinFormsProperty:
    """Property: the two comparison-query SQL forms agree on random data."""

    def test_forms_agree_on_random_tables(self):
        import numpy as np

        from repro.sqlengine import Catalog, execute_sql

        for seed in range(6):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(20, 80))
            t = table_from_arrays(
                {
                    "g": rng.choice(["g0", "g1", "g2"], n),
                    "s": rng.choice(["s0", "s1", "s2"], n),
                },
                {"m": rng.normal(0, 5, n)},
            )
            q = ComparisonQuery("g", "s", "s0", "s1", "m", "avg")
            catalog = Catalog({"d": t})
            join_form = execute_sql(bind_table(comparison_sql(q), "d"), catalog)
            pivot_form = execute_sql(bind_table(comparison_sql_pivot(q), "d"), catalog)
            per_group: dict[str, dict[str, float]] = {}
            for g, s, v in zip(*pivot_form.to_dict().values()):
                per_group.setdefault(g, {})[s] = v
            for g, x, y in zip(*join_form.to_dict().values()):
                assert per_group[g]["s0"] == pytest.approx(x)
                assert per_group[g]["s1"] == pytest.approx(y)
