"""Unit tests for the comparison-explanation extension."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.queries import ComparisonQuery
from repro.queries.evaluate import ComparisonResult
from repro.queries.explain import explain_comparison, explanation_sentence


def make_result(groups, x, y):
    query = ComparisonQuery("g", "b", "v1", "v2", "m", "sum")
    return ComparisonResult(
        query, tuple(groups), np.asarray(x, dtype=float), np.asarray(y, dtype=float), 100
    )


class TestExplain:
    def test_ranking_by_absolute_delta(self):
        result = make_result(["a", "b", "c"], [10, 100, 30], [5, 20, 29])
        ranked = explain_comparison(result)
        assert [c.group for c in ranked] == ["b", "a", "c"]

    def test_shares_sum_to_one(self):
        result = make_result(["a", "b", "c"], [10, 100, 30], [5, 20, 29])
        ranked = explain_comparison(result)
        assert sum(c.share for c in ranked) == pytest.approx(1.0)

    def test_direction_flags(self):
        # Overall gap positive, but 'c' moves against it.
        result = make_result(["a", "b", "c"], [10, 100, 5], [5, 20, 50])
        by_group = {c.group: c for c in explain_comparison(result)}
        assert by_group["a"].direction == 1
        assert by_group["b"].direction == 1
        assert by_group["c"].direction == -1

    def test_top_k(self):
        result = make_result(["a", "b", "c"], [10, 100, 30], [5, 20, 29])
        assert len(explain_comparison(result, top_k=2)) == 2

    def test_nan_groups_contribute_nothing(self):
        result = make_result(["a", "b"], [10, np.nan], [5, 3])
        by_group = {c.group: c for c in explain_comparison(result)}
        assert by_group["b"].delta == 0.0
        assert by_group["a"].share == pytest.approx(1.0)

    def test_empty_result_rejected(self):
        result = make_result([], [], [])
        with pytest.raises(QueryError):
            explain_comparison(result)

    def test_all_zero_deltas(self):
        result = make_result(["a", "b"], [5, 5], [5, 5])
        ranked = explain_comparison(result)
        assert all(c.share == 0.0 for c in ranked)


class TestSentence:
    def test_mentions_top_driver(self):
        result = make_result(["america", "asia", "europe"], [100, 40, 10], [20, 20, 9])
        text = explanation_sentence(result)
        assert "america" in text
        assert "% of the gap" in text

    def test_mentions_counter_trend_groups(self):
        result = make_result(["a", "b"], [100, 5], [20, 60])
        text = explanation_sentence(result)
        assert "against the trend" in text and "b" in text

    def test_degenerate(self):
        result = make_result(["a"], [5.0], [5.0])
        assert "no single group" in explanation_sentence(result)

    def test_end_to_end_on_real_comparison(self):
        from repro.datasets import covid_table
        from repro.queries import evaluate_comparison

        covid = covid_table(1000)
        query = ComparisonQuery("continent", "month", "5", "4", "cases", "sum")
        result = evaluate_comparison(covid, query)
        text = explanation_sentence(result)
        assert "gap" in text
