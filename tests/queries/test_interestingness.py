"""Unit tests for repro.queries.interestingness (Definition 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.insights import CandidateInsight, InsightEvidence, TestedInsight
from repro.queries import InterestingnessConfig, conciseness, insight_term, query_interest


def evidence(sig=0.99, supporting=1, postulating=4):
    tested = TestedInsight(
        CandidateInsight("m", "b", "x", "y", "M"), 1.0, 1 - sig, 1 - sig
    )
    return InsightEvidence(tested, n_supporting=supporting, n_postulating=postulating)


class TestConciseness:
    def test_zero_outside_domain(self):
        assert conciseness(0, 5) == 0.0
        assert conciseness(100, 0) == 0.0
        assert conciseness(10, 20) == 0.0  # more groups than tuples: undefined zone

    def test_peak_at_ideal_ratio(self):
        alpha = 0.02
        theta = 1000
        ideal = alpha * theta
        at_peak = conciseness(theta, ideal, alpha=alpha)
        assert at_peak == pytest.approx(1.0)
        assert conciseness(theta, ideal * 10, alpha=alpha) < at_peak
        assert conciseness(theta, max(1, ideal / 10), alpha=alpha) < at_peak

    def test_non_monotone_in_groups(self):
        values = [conciseness(2000, g) for g in (2, 40, 1500)]
        assert values[1] > values[0] and values[1] > values[2]

    def test_delta_spreads_tolerance(self):
        tight = conciseness(1000, 100, alpha=0.02, delta=1.0)
        loose = conciseness(1000, 100, alpha=0.02, delta=2.0)
        assert loose > tight

    @settings(max_examples=100, deadline=None)
    @given(st.floats(1, 1e6), st.floats(1, 1e6))
    def test_bounded_in_unit_interval(self, theta, gamma):
        assert 0.0 <= conciseness(theta, gamma) <= 1.0


class TestConfig:
    def test_parameters_validated(self):
        with pytest.raises(QueryError):
            InterestingnessConfig(alpha=0.0)
        with pytest.raises(QueryError):
            InterestingnessConfig(omega=-1.0)

    def test_with_components(self):
        base = InterestingnessConfig()
        sig_only = base.with_components(conciseness_on=False, credibility_on=False)
        assert not sig_only.use_conciseness and not sig_only.use_credibility
        assert sig_only.use_significance


class TestInsightTerm:
    def test_full_term(self):
        config = InterestingnessConfig(omega=2.0)
        # sig=0.99, 1 - cred/|Qi| = 1 - 1/4 = 0.75
        assert insight_term(evidence(), config) == pytest.approx(2.0 * 0.99 * 0.75)

    def test_sig_only(self):
        config = InterestingnessConfig().with_components(False, False)
        assert insight_term(evidence(), config) == pytest.approx(0.99)

    def test_fully_credible_insight_contributes_zero(self):
        config = InterestingnessConfig()
        assert insight_term(evidence(supporting=4, postulating=4), config) == 0.0


class TestQueryInterest:
    def test_sums_over_insights(self):
        config = InterestingnessConfig().with_components(False, False)
        total = query_interest(100, 5, [evidence(0.99), evidence(0.95)], config)
        assert total == pytest.approx(0.99 + 0.95)

    def test_conciseness_multiplies(self):
        config = InterestingnessConfig()
        with_conc = query_interest(100, 90, [evidence()], config)
        without = query_interest(
            100, 90, [evidence()], config.with_components(False, True)
        )
        assert with_conc == pytest.approx(without * conciseness(100, 90))

    def test_no_insights_zero(self):
        assert query_interest(100, 5, []) == 0.0

    def test_default_config(self):
        assert query_interest(100, 5, [evidence()]) > 0.0
