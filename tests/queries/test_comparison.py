"""Unit tests for repro.queries.comparison."""

import pytest

from repro.errors import QueryError
from repro.queries import ComparisonQuery
from repro.relational import table_from_arrays


@pytest.fixture
def query():
    return ComparisonQuery("continent", "month", "5", "4", "cases", "sum")


class TestValidation:
    def test_same_attribute_rejected(self):
        with pytest.raises(QueryError, match="must differ"):
            ComparisonQuery("month", "month", "4", "5", "cases", "sum")

    def test_same_values_rejected(self):
        with pytest.raises(QueryError, match="distinct"):
            ComparisonQuery("a", "b", "v", "v", "m", "sum")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            ComparisonQuery("a", "b", "v", "w", "m", "frob")

    def test_validate_against_schema(self, query):
        table = table_from_arrays(
            {"month": ["4"], "continent": ["EU"]}, {"cases": [1.0]}
        )
        query.validate_against(table)  # should not raise

    def test_validate_against_wrong_kinds(self, query):
        table = table_from_arrays({"month": ["4"]}, {"continent": [1.0], "cases": [1.0]})
        with pytest.raises(QueryError, match="does not fit"):
            query.validate_against(table)


class TestKeys:
    def test_key_tuple(self, query):
        assert query.key == ("continent", "month", "5", "4", "cases", "sum")

    def test_evidence_key_canonicalizes_pair(self, query):
        flipped = ComparisonQuery("continent", "month", "4", "5", "cases", "sum")
        assert query.evidence_key == flipped.evidence_key
        assert query.evidence_key == ("month", "4", "5", "cases")

    def test_evidence_key_ignores_grouping_and_agg(self, query):
        other = ComparisonQuery("country", "month", "5", "4", "cases", "avg")
        assert query.evidence_key == other.evidence_key

    def test_dedup_key_keeps_agg(self, query):
        avg = ComparisonQuery("continent", "month", "5", "4", "cases", "avg")
        assert query.dedup_key != avg.dedup_key
        other_group = ComparisonQuery("country", "month", "5", "4", "cases", "sum")
        assert query.dedup_key == other_group.dedup_key

    def test_parts(self, query):
        parts = query.parts
        assert parts["selection_values"] == frozenset({"4", "5"})
        assert parts["group_by"] == "continent"

    def test_describe(self, query):
        assert "sum(cases) by continent" in query.describe()
