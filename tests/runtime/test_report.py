"""RunReport / StageReport accounting and serialization."""

from repro.runtime import RunReport, StageReport
from repro.runtime.report import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_RESUMED,
)


def sample_report() -> RunReport:
    return RunReport(
        stages=[
            StageReport("stats", status=STATUS_RESUMED, rung="checkpoint"),
            StageReport(
                "generation",
                status=STATUS_DEGRADED,
                rung="top-k",
                seconds=1.25,
                retries=2,
                degradations=["evaluated only the top 60 insights"],
                warnings=["rung 'setcover' failed: injected fault"],
            ),
            StageReport("tap", status=STATUS_COMPLETED, rung="heuristic", seconds=0.1),
        ],
        deadline_seconds=5.0,
        total_seconds=2.5,
        resumed_from="run.ckpt.json",
    )


class TestProperties:
    def test_degraded_and_ok(self):
        report = sample_report()
        assert report.degraded
        assert report.ok  # degraded but nothing failed
        report.stages.append(StageReport("render", status=STATUS_FAILED, error="boom"))
        assert not report.ok

    def test_clean_report_not_degraded(self):
        report = RunReport(stages=[StageReport("stats"), StageReport("tap")])
        assert not report.degraded
        assert report.ok

    def test_degradations_are_stage_prefixed(self):
        notes = sample_report().degradations
        assert notes == ["generation: evaluated only the top 60 insights"]

    def test_stage_lookup(self):
        report = sample_report()
        assert report.stage("tap").rung == "heuristic"
        assert report.stage("nope") is None


class TestSerialization:
    def test_round_trip(self):
        report = sample_report()
        restored = RunReport.from_dict(report.as_dict())
        assert restored == report

    def test_mqo_fields_round_trip(self):
        report = sample_report()
        report.mqo = False
        report.mqo_plan = {"batches": 3, "sets": 17}
        restored = RunReport.from_dict(report.as_dict())
        assert restored.mqo is False
        assert restored.mqo_plan == {"batches": 3, "sets": 17}

    def test_old_checkpoints_default_mqo_on(self):
        restored = RunReport.from_dict({})
        assert restored.mqo is True
        assert restored.mqo_plan is None

    def test_from_dict_defaults(self):
        restored = RunReport.from_dict({})
        assert restored.stages == []
        assert restored.deadline_seconds is None
        assert restored.resumed_from is None


class TestSummaryLines:
    def test_header_mentions_deadline_and_resume(self):
        lines = sample_report().summary_lines()
        assert "deadline 5s" in lines[0]
        assert "resumed from run.ckpt.json" in lines[0]

    def test_stage_lines_show_rung_retries_and_notes(self):
        text = "\n".join(sample_report().summary_lines())
        assert "rung=top-k" in text
        assert "retries=2" in text
        assert "~ evaluated only the top 60 insights" in text
        assert "! rung 'setcover' failed" in text

    def test_error_line_marked(self):
        report = RunReport(stages=[StageReport("render", status=STATUS_FAILED, error="boom")])
        assert any(line.strip() == "x boom" for line in report.summary_lines())

    def test_backend_line_shows_the_mqo_plan(self):
        report = RunReport(backend="sqlite", mqo_plan={"batches": 2, "sets": 9})
        text = "\n".join(report.summary_lines())
        assert "mqo=9 sets/2 batches" in text

    def test_backend_line_shows_mqo_off(self):
        report = RunReport(backend="sqlite", mqo=False)
        assert any("mqo=off" in line for line in report.summary_lines())
