"""The shared retry/backoff primitive: policy, state budget, retry_call."""

from __future__ import annotations

import random

import pytest

from repro.errors import DeadlineExceeded, ReproError
from repro.runtime.deadline import Deadline
from repro.runtime.retry import RetryPolicy, RetryState, retry_call


class Boom(ReproError):
    pass


class Unrelated(RuntimeError):
    pass


# -- RetryPolicy ---------------------------------------------------------------


def test_policy_validates_its_fields():
    with pytest.raises(ReproError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ReproError, match="negative"):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ReproError, match="multiplier"):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ReproError, match="jitter"):
        RetryPolicy(jitter=1.5)


def test_delay_curve_is_exponential_and_capped_without_jitter():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                         jitter=0.0)
    delays = [policy.delay_for(i) for i in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jitter_stays_within_the_equal_jitter_band():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                         jitter=0.5)
    rng = random.Random(7)
    for index in range(6):
        raw = min(10.0, 0.1 * 2.0 ** index)
        delay = policy.delay_for(index, rng)
        assert raw * 0.5 <= delay <= raw


def test_jitter_is_deterministic_under_a_seed():
    policy = RetryPolicy()
    a = [policy.delay_for(i, random.Random(3)) for i in range(4)]
    b = [policy.delay_for(i, random.Random(3)) for i in range(4)]
    assert a == b


# -- RetryState ----------------------------------------------------------------


def test_state_budget_is_consumed_then_none():
    state = RetryState(RetryPolicy(base_delay=0.01, jitter=0.0), retries=2)
    assert state.next_delay() == pytest.approx(0.01)
    assert state.next_delay() == pytest.approx(0.02)
    assert state.used == 2
    assert state.exhausted
    assert state.next_delay() is None


def test_state_defaults_to_policy_attempts_minus_one():
    state = RetryState(RetryPolicy(max_attempts=3))
    assert not state.exhausted
    state.next_delay()
    state.next_delay()
    assert state.exhausted


def test_state_rejects_negative_budgets():
    with pytest.raises(ReproError, match="negative"):
        RetryState(retries=-1)


# -- retry_call ----------------------------------------------------------------


def test_success_on_first_attempt_never_sleeps():
    sleeps = []
    assert retry_call(lambda: 42, sleep=sleeps.append) == 42
    assert sleeps == []


def test_retries_then_succeeds_with_observer():
    calls, sleeps, seen = [], [], []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise Boom(f"attempt {len(calls)}")
        return "ok"

    result = retry_call(
        flaky,
        policy=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        retry_on=(Boom,),
        sleep=sleeps.append,
        on_retry=lambda i, d, e: seen.append((i, round(d, 3), str(e))),
    )
    assert result == "ok"
    assert len(calls) == 3
    assert sleeps == [0.01, 0.02]
    assert seen == [(0, 0.01, "attempt 1"), (1, 0.02, "attempt 2")]


def test_last_attempt_exception_propagates():
    calls = []

    def doomed():
        calls.append(1)
        raise Boom("always")

    with pytest.raises(Boom, match="always"):
        retry_call(doomed, policy=RetryPolicy(max_attempts=3, base_delay=0),
                   retry_on=(Boom,), sleep=lambda s: None)
    assert len(calls) == 3


def test_non_retryable_errors_propagate_immediately():
    calls = []

    def wrong():
        calls.append(1)
        raise Unrelated("nope")

    with pytest.raises(Unrelated):
        retry_call(wrong, retry_on=(Boom,), sleep=lambda s: None)
    assert len(calls) == 1


def test_expired_deadline_stops_before_the_attempt():
    clock = [0.0]
    deadline = Deadline(1.0, clock=lambda: clock[0])
    calls = []

    def flaky():
        calls.append(1)
        clock[0] += 2.0  # the attempt burns past the deadline
        raise Boom("slow")

    with pytest.raises(DeadlineExceeded):
        retry_call(flaky, policy=RetryPolicy(max_attempts=5, base_delay=0),
                   retry_on=(Boom,), deadline=deadline, sleep=lambda s: None)
    assert len(calls) == 1  # no doomed second attempt


def test_backoff_sleep_is_capped_to_remaining_budget():
    clock = [0.0]
    deadline = Deadline(10.0, clock=lambda: clock[0])
    sleeps = []

    def flaky():
        if not sleeps:
            clock[0] = 9.95  # 0.05 s of budget left when the retry backs off
            raise Boom("first")
        return "ok"

    result = retry_call(
        flaky,
        policy=RetryPolicy(max_attempts=2, base_delay=5.0, jitter=0.0),
        retry_on=(Boom,), deadline=deadline, sleep=sleeps.append,
    )
    assert result == "ok"
    assert sleeps == [pytest.approx(0.05)]


def test_unlimited_deadline_does_not_cap_sleeps():
    sleeps = []

    def flaky():
        if not sleeps:
            raise Boom("first")
        return "ok"

    retry_call(flaky, policy=RetryPolicy(max_attempts=2, base_delay=3.0,
                                         max_delay=5.0, jitter=0.0),
               retry_on=(Boom,), deadline=Deadline.unlimited(),
               sleep=sleeps.append)
    assert sleeps == [3.0]
