"""Deadline semantics: cooperative cancellation, consume, grace extension."""

import pytest

from repro.errors import DeadlineExceeded
from repro.runtime import Deadline


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


class TestUnlimited:
    def test_never_expires(self, clock):
        d = Deadline(None, clock)
        assert not d.limited
        assert d.remaining() == float("inf")
        clock.advance(1e9)
        assert not d.expired
        d.check("stats")  # must not raise

    def test_unlimited_constructor(self):
        assert not Deadline.unlimited().limited

    def test_consume_is_noop(self, clock):
        d = Deadline(None, clock)
        d.consume(1e9)
        assert d.remaining() == float("inf")


class TestLimited:
    def test_remaining_tracks_clock(self, clock):
        d = Deadline(10.0, clock)
        assert d.limited
        assert d.seconds == 10.0
        assert d.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert d.remaining() == pytest.approx(6.0)
        assert not d.expired

    def test_check_raises_when_expired(self, clock):
        d = Deadline(2.0, clock)
        d.check()
        clock.advance(2.5)
        assert d.expired
        with pytest.raises(DeadlineExceeded) as err:
            d.check("tap")
        assert err.value.stage == "tap"
        assert "tap" in str(err.value)

    def test_consume_moves_deadline_earlier(self, clock):
        d = Deadline(10.0, clock)
        d.consume(8.0)
        assert d.remaining() == pytest.approx(2.0)
        d.consume(5.0)
        assert d.expired

    def test_non_positive_budget_rejected(self, clock):
        with pytest.raises(DeadlineExceeded):
            Deadline(0.0, clock)
        with pytest.raises(DeadlineExceeded):
            Deadline(-1.0, clock)


class TestExtended:
    def test_grace_adds_to_remaining(self, clock):
        d = Deadline(10.0, clock)
        clock.advance(9.0)
        child = d.extended(2.0)
        assert child.remaining() == pytest.approx(3.0)

    def test_expired_parent_gets_grace_only(self, clock):
        d = Deadline(1.0, clock)
        clock.advance(5.0)
        child = d.extended(1.5)
        assert child.remaining() == pytest.approx(1.5)
        child.check()  # inside the grace window

    def test_unlimited_parent_stays_unlimited(self, clock):
        child = Deadline(None, clock).extended(1.0)
        assert not child.limited

    def test_child_is_independent(self, clock):
        d = Deadline(1.0, clock)
        clock.advance(2.0)
        child = d.extended(1.0)
        assert d.expired
        assert not child.expired
