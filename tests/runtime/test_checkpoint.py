"""Stage checkpoints and resume: never re-run a completed expensive stage."""

import pytest

from repro.generation import GenerationConfig
from repro.persistence import PersistenceError, load_checkpoint, save_checkpoint
from repro.runtime import FaultInjector, FaultSpec, resilient_generate
from repro.runtime.report import STATUS_RESUMED


@pytest.fixture
def fast_config() -> GenerationConfig:
    return GenerationConfig()


class TestCheckpointWriting:
    def test_full_run_checkpoints_the_generation_stage(self, two_measure_table,
                                                       fast_config, tmp_path):
        path = tmp_path / "run.ckpt.json"
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 checkpoint_path=path)
        assert run.selected
        ck = load_checkpoint(path)
        assert ck.stage == "generation"
        assert ck.outcome is not None
        assert len(ck.outcome.queries) == len(run.outcome.queries)

    def test_failed_generation_keeps_the_stats_checkpoint(self, two_measure_table,
                                                          fast_config, tmp_path):
        path = tmp_path / "run.ckpt.json"
        faults = FaultInjector([FaultSpec("generation", times=None)])
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 checkpoint_path=path, faults=faults)
        assert not run.report.ok
        # The failed stage's empty stand-in must never poison the snapshot:
        # the file still holds the completed stats stage.
        ck = load_checkpoint(path)
        assert ck.stage == "stats"
        assert ck.stats is not None
        assert ck.stats.significant

    def test_save_checkpoint_requires_a_payload(self, tmp_path):
        with pytest.raises(PersistenceError):
            save_checkpoint(tmp_path / "x.json")

    def test_load_rejects_non_checkpoints(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{\"kind\": \"something-else\"}")
        with pytest.raises(PersistenceError):
            load_checkpoint(path)
        path.write_text("not json at all")
        with pytest.raises(PersistenceError):
            load_checkpoint(path)


class TestResume:
    def test_stats_checkpoint_resumes_without_rerunning_tests(
        self, two_measure_table, fast_config, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.ckpt.json"
        faults = FaultInjector([FaultSpec("generation", times=None)])
        interrupted = resilient_generate(two_measure_table, fast_config, budget=4,
                                         checkpoint_path=path, faults=faults)
        assert interrupted.selected == []

        def fail_if_called(*args, **kwargs):
            raise AssertionError("stats stage must not re-run on resume")

        monkeypatch.setattr("repro.runtime.controller.run_stats_stage", fail_if_called)
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 resume=load_checkpoint(path))
        assert run.selected
        assert run.report.stage("stats").status == STATUS_RESUMED
        assert run.report.stage("stats").rung == "checkpoint"
        assert run.report.resumed_from == str(path)

    def test_generation_checkpoint_resumes_without_a_table(
        self, two_measure_table, fast_config, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.ckpt.json"
        baseline = resilient_generate(two_measure_table, fast_config, budget=4,
                                      checkpoint_path=path)

        def fail_if_called(*args, **kwargs):
            raise AssertionError("completed stages must not re-run on resume")

        monkeypatch.setattr("repro.runtime.controller.run_stats_stage", fail_if_called)
        monkeypatch.setattr("repro.runtime.controller.run_support_stage", fail_if_called)
        run = resilient_generate(None, fast_config, budget=4,
                                 resume=load_checkpoint(path))
        assert run.report.stage("stats").status == STATUS_RESUMED
        assert run.report.stage("generation").status == STATUS_RESUMED
        assert [g.query.describe() for g in run.selected] == [
            g.query.describe() for g in baseline.selected
        ]

    def test_resume_survives_different_budget(self, two_measure_table,
                                              fast_config, tmp_path):
        path = tmp_path / "run.ckpt.json"
        resilient_generate(two_measure_table, fast_config, budget=6,
                           checkpoint_path=path)
        run = resilient_generate(None, fast_config, budget=2,
                                 resume=load_checkpoint(path))
        assert len(run.selected) <= 2
