"""Fault-injection plumbing: spec parsing and firing semantics."""

import time

import pytest

from repro.errors import ReproError
from repro.runtime import Deadline, FaultInjector, FaultSpec, InjectedFault, parse_fault_plan

from .test_deadline import FakeClock


class TestParseFaultPlan:
    def test_empty_plans_are_inactive(self):
        assert not parse_fault_plan(None).active
        assert not parse_fault_plan("").active
        assert not parse_fault_plan("  ").active

    def test_simple_kill(self):
        injector = parse_fault_plan("stats:kill")
        assert injector.active
        (spec,) = injector.specs
        assert spec == FaultSpec("stats", "kill", 0.0, 1)

    def test_stall_with_duration(self):
        (spec,) = parse_fault_plan("tap:stall:10").specs
        assert spec.action == "stall"
        assert spec.seconds == 10.0
        assert spec.times == 1

    def test_repeat_counts(self):
        (spec,) = parse_fault_plan("generation:kill:x3").specs
        assert spec.times == 3
        (spec,) = parse_fault_plan("tap:kill:xall").specs
        assert spec.times is None

    def test_comma_separated_entries(self):
        injector = parse_fault_plan("stats:kill, tap:stall:5:x2")
        assert [s.stage for s in injector.specs] == ["stats", "tap"]
        assert injector.specs[1].seconds == 5.0
        assert injector.specs[1].times == 2

    def test_malformed_entry_rejected(self):
        with pytest.raises(ReproError):
            parse_fault_plan("stats")

    def test_unknown_action_rejected(self):
        with pytest.raises(ReproError):
            parse_fault_plan("stats:explode")

    def test_stall_needs_duration(self):
        with pytest.raises(ReproError):
            parse_fault_plan("stats:stall")


class TestFire:
    def test_kill_is_one_shot_by_default(self):
        injector = FaultInjector([FaultSpec("stats")])
        with pytest.raises(InjectedFault):
            injector.fire("stats")
        injector.fire("stats")  # spent: second attempt proceeds

    def test_other_stages_unaffected(self):
        injector = FaultInjector([FaultSpec("tap")])
        injector.fire("stats")
        injector.fire("render")

    def test_xall_fires_every_attempt(self):
        injector = FaultInjector([FaultSpec("tap", times=None)])
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector.fire("tap")

    def test_stall_consumes_deadline_budget(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock)
        injector = FaultInjector([FaultSpec("tap", "stall", seconds=30.0)])
        start = time.perf_counter()
        injector.fire("tap", deadline)
        assert time.perf_counter() - start < 1.0  # no real sleeping
        assert deadline.expired

    def test_stall_without_deadline_sleeps_capped(self):
        injector = FaultInjector([FaultSpec("tap", "stall", seconds=0.01)])
        injector.fire("tap", Deadline(None))  # returns promptly, no error

    def test_none_injector(self):
        injector = FaultInjector.none()
        assert not injector.active
        injector.fire("stats")
