"""The resilient controller: degradation ladders under injected faults.

Every test asserts the acceptance property of the issue: killing or
stalling any single stage still yields a *valid* NotebookRun whose report
names the degradation that was applied.
"""

from dataclasses import replace

import pytest

from repro.errors import ReproError, SolverTimeout
from repro.generation import GenerationConfig, NotebookRun
from repro.runtime import (
    Deadline,
    FaultInjector,
    FaultSpec,
    RuntimePolicy,
    resilient_generate,
    resilient_render,
)
from repro.notebook.cells import SQLCell
from repro.runtime.report import STATUS_COMPLETED, STATUS_DEGRADED, STATUS_FAILED
from repro.tap.instance import TAPSolution


@pytest.fixture
def fast_config() -> GenerationConfig:
    # The default config takes ~20ms on the 200-row fixture; fewer
    # permutations would starve the BH correction of resolution and leave
    # no significant insights to select from.
    return GenerationConfig()


def kill(stage: str, times: int | None = 1) -> FaultInjector:
    return FaultInjector([FaultSpec(stage, "kill", times=times)])


def assert_valid_run(run: NotebookRun) -> None:
    assert isinstance(run, NotebookRun)
    assert run.solution is not None
    assert len(run.selected) == len(run.solution.indices)
    assert all(g in run.outcome.queries for g in run.selected)
    assert run.report is not None


class TestHappyPath:
    def test_no_faults_no_degradation(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4)
        assert_valid_run(run)
        assert run.selected
        assert not run.degraded
        for name in ("stats", "generation", "tap"):
            assert run.report.stage(name).status == STATUS_COMPLETED
        assert run.report.stage("tap").rung == "heuristic"

    def test_deadline_recorded_in_report(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=3,
                                 deadline_seconds=60.0)
        assert run.report.deadline_seconds == 60.0
        assert run.report.total_seconds > 0

    def test_unknown_solver_rejected(self, two_measure_table):
        with pytest.raises(ReproError):
            resilient_generate(two_measure_table, solver="cplex")

    def test_table_required_without_resume(self):
        with pytest.raises(ReproError):
            resilient_generate(None)


class TestStatsLadder:
    def test_kill_falls_back_to_reduced_permutations(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 faults=kill("stats"),
                                 policy=RuntimePolicy(permutation_cut_factor=2))
        assert_valid_run(run)
        stats = run.report.stage("stats")
        assert stats.status == STATUS_DEGRADED
        assert stats.rung == "reduced"
        assert stats.retries == 1
        assert any("permutations cut 200 -> 100" in d for d in stats.degradations)
        assert run.selected  # the reduced rung still finds the planted effects

    def test_two_kills_reach_parametric_rung(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 faults=kill("stats", times=2))
        stats = run.report.stage("stats")
        assert stats.rung == "parametric"
        assert any("parametric" in d for d in stats.degradations)
        assert_valid_run(run)

    def test_all_rungs_killed_still_returns_a_run(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 faults=kill("stats", times=None))
        assert_valid_run(run)
        assert run.report.stage("stats").status == STATUS_FAILED
        assert not run.report.ok
        assert run.selected == []  # empty stand-in propagates to an empty notebook


class TestGenerationLadder:
    def test_kill_falls_back_to_pairwise(self, two_measure_table, fast_config):
        config = replace(fast_config, evaluator="setcover")
        run = resilient_generate(two_measure_table, config, budget=4,
                                 faults=kill("generation"))
        assert_valid_run(run)
        generation = run.report.stage("generation")
        assert generation.status == STATUS_DEGRADED
        assert generation.rung == "pairwise"
        assert any("Algorithm 1" in d for d in generation.degradations)

    def test_kill_on_pairwise_reaches_top_k(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 faults=kill("generation"))
        generation = run.report.stage("generation")
        assert generation.rung == "top-k"
        assert any("top" in d for d in generation.degradations)
        assert_valid_run(run)


class TestTapLadder:
    def test_kill_falls_back_to_baseline(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 faults=kill("tap"))
        assert_valid_run(run)
        tap = run.report.stage("tap")
        assert tap.status == STATUS_DEGRADED
        assert tap.rung == "baseline"
        assert any("baseline" in d for d in tap.degradations)
        assert 0 < len(run.selected) <= 4

    def test_stall_consumes_deadline_and_degrades(self, two_measure_table, fast_config):
        faults = FaultInjector([FaultSpec("tap", "stall", seconds=120.0)])
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 deadline_seconds=60.0, faults=faults)
        assert_valid_run(run)
        tap = run.report.stage("tap")
        # The stall burns the whole budget, so the heuristic rung's deadline
        # check fires and the final rung finishes under the grace extension.
        assert tap.status == STATUS_DEGRADED
        assert tap.rung == "baseline"
        assert run.selected

    def test_exact_solver_kill_falls_back_to_heuristic(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 solver="exact", faults=kill("tap"))
        assert_valid_run(run)
        tap = run.report.stage("tap")
        assert tap.rung == "heuristic"
        assert any("heuristic" in d for d in tap.degradations)

    def test_anytime_incumbent_consumed_on_timeout(self, two_measure_table,
                                                   fast_config, monkeypatch):
        incumbent = TAPSolution((0,), 1.0, 1.0, 0.0, optimal=False)

        def fake_solve_exact(instance, config):
            assert config.raise_on_timeout
            raise SolverTimeout("exact TAP solver exceeded 0.1s", incumbent=incumbent)

        monkeypatch.setattr("repro.runtime.controller.solve_exact", fake_solve_exact)
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 solver="exact")
        assert_valid_run(run)
        assert run.solution is incumbent
        assert not run.solution.optimal
        assert run.selected == [run.outcome.queries[0]]
        tap = run.report.stage("tap")
        assert tap.status == STATUS_DEGRADED
        assert tap.rung == "exact"
        assert any("incumbent" in d for d in tap.degradations)

    def test_timeout_without_incumbent_falls_through(self, two_measure_table,
                                                     fast_config, monkeypatch):
        def fake_solve_exact(instance, config):
            raise SolverTimeout("no incumbent yet")

        monkeypatch.setattr("repro.runtime.controller.solve_exact", fake_solve_exact)
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 solver="exact")
        assert_valid_run(run)
        assert run.report.stage("tap").rung == "heuristic"


class TestDeadline:
    def test_tiny_deadline_still_returns_a_valid_run(self, two_measure_table, fast_config):
        run = resilient_generate(two_measure_table, fast_config, budget=4,
                                 deadline_seconds=0.001,
                                 policy=RuntimePolicy(grace_seconds=5.0))
        assert_valid_run(run)
        assert run.degraded
        # Every stage ended on its grace-extended final rung (or failed into
        # a valid stand-in) — the run never escapes as an exception.
        assert run.report.stage("stats").rung in ("parametric", "")


class TestRenderLadder:
    @pytest.fixture
    def run(self, two_measure_table, fast_config):
        return resilient_generate(two_measure_table, fast_config, budget=3)

    def test_kill_falls_back_to_sql_only(self, run, two_measure_table):
        notebook = resilient_render(
            run, two_measure_table, table_name="t",
            faults=kill("render"),
        )
        render = run.report.stage("render")
        assert render.status == STATUS_DEGRADED
        assert render.rung == "sql-only"
        assert any("previews" in d for d in render.degradations)
        assert any(isinstance(cell, SQLCell) for cell in notebook.cells)

    def test_two_kills_reach_skeleton(self, run, two_measure_table):
        notebook = resilient_render(
            run, two_measure_table, table_name="t",
            faults=kill("render", times=2),
        )
        assert run.report.stage("render").rung == "skeleton"
        sql_cells = [c for c in notebook.cells if isinstance(c, SQLCell)]
        assert len(sql_cells) == len(run.selected)

    def test_all_kills_yield_empty_notebook(self, run, two_measure_table):
        notebook = resilient_render(
            run, two_measure_table, table_name="t",
            faults=kill("render", times=None),
        )
        assert run.report.stage("render").status == STATUS_FAILED
        assert notebook.cells  # header survives; the notebook is still valid

    def test_render_without_report_attaches_one(self, run, two_measure_table):
        run = replace_report(run)
        notebook = resilient_render(run, two_measure_table, table_name="t")
        assert notebook.cells
        assert run.report.stage("render").status == STATUS_COMPLETED

    def test_render_honours_deadline(self, run, two_measure_table):
        deadline = Deadline(30.0)
        deadline.consume(120.0)  # already blown: first rungs refuse
        notebook = resilient_render(
            run, two_measure_table, table_name="t", deadline=deadline,
        )
        assert run.report.stage("render").rung == "skeleton"
        assert notebook.cells


def replace_report(run: NotebookRun) -> NotebookRun:
    run.report = None
    return run
