"""Counter / gauge / histogram semantics and the registry namespace."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("contended")
        per_thread = 5000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4 * per_thread


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1.0

    def test_max_keeps_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("peak")
        g.max(10)
        g.max(4)
        assert g.value == 10.0


class TestHistogram:
    def test_streaming_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_empty_summary(self):
        reg = MetricsRegistry()
        s = reg.histogram("nothing").summary()
        assert s["count"] == 0
        assert s["min"] is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_partitions_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_record_peak_rss_is_positive_on_posix(self):
        reg = MetricsRegistry()
        peak = reg.record_peak_rss()
        if peak is None:  # non-POSIX platform: nothing recorded
            return
        assert peak > 0
        assert reg.gauge("process.peak_rss_bytes").value == peak
