"""Counter / gauge / histogram semantics and the registry namespace."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("contended")
        per_thread = 5000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4 * per_thread


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1.0

    def test_max_keeps_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("peak")
        g.max(10)
        g.max(4)
        assert g.value == 10.0


class TestHistogram:
    def test_streaming_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert (s["count"], s["sum"], s["min"], s["max"], s["mean"]) == (
            3, 6.0, 1.0, 3.0, 2.0
        )

    def test_empty_summary(self):
        reg = MetricsRegistry()
        s = reg.histogram("nothing").summary()
        assert s["count"] == 0
        assert s["min"] is None
        assert set(s["buckets"].values()) == {0}

    def test_bucket_counts_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.cumulative_buckets() == [(0.1, 1), (1.0, 3), (10.0, 4)]
        assert h.summary()["buckets"] == {"0.1": 1, "1": 3, "10": 4}
        assert h.count == 5  # the implicit +Inf bucket

    def test_bucket_bounds_fixed_by_first_caller(self):
        reg = MetricsRegistry()
        a = reg.histogram("latency", buckets=(1.0, 2.0))
        b = reg.histogram("latency", buckets=(5.0,))
        assert a is b
        assert a.buckets == (1.0, 2.0)


class TestLabels:
    def test_label_sets_are_distinct_instruments(self):
        reg = MetricsRegistry()
        reg.counter("jobs", {"dataset": "covid"}).inc(2)
        reg.counter("jobs", {"dataset": "enedis"}).inc(5)
        reg.counter("jobs").inc()
        snap = reg.snapshot()["counters"]
        assert snap == {
            "jobs": 1.0,
            "jobs{dataset=covid}": 2.0,
            "jobs{dataset=enedis}": 5.0,
        }

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs", {"a": "1", "b": "2"})
        b = reg.counter("jobs", {"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_across_label_sets_raises(self):
        reg = MetricsRegistry()
        reg.counter("jobs", {"dataset": "covid"})
        with pytest.raises(TypeError):
            reg.gauge("jobs", {"dataset": "enedis"})


class TestMerge:
    def test_counters_add_gauges_high_water(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits", {"outcome": "ok"}).inc(2)
        b.counter("hits", {"outcome": "ok"}).inc(3)
        a.gauge("peak").set(10)
        b.gauge("peak").set(4)
        a.merge(b.export())
        assert a.counter("hits", {"outcome": "ok"}).value == 5.0
        assert a.gauge("peak").value == 10.0

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.05, 0.5):
            a.histogram("lat", buckets=(0.1, 1.0)).observe(v)
        for v in (0.07, 7.0):
            b.histogram("lat", buckets=(0.1, 1.0)).observe(v)
        a.merge(b.export())
        h = a.histogram("lat")
        assert h.count == 4
        assert h.cumulative_buckets() == [(0.1, 2), (1.0, 3)]
        assert h.minimum == 0.05 and h.maximum == 7.0

    def test_merge_into_empty_registry_reproduces_snapshot(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.counter("c", {"k": "v"}).inc(3)
        src.gauge("g").set(2)
        src.histogram("h").observe(0.2)
        dst.merge(src.export())
        assert dst.snapshot() == src.snapshot()

    def test_merge_is_json_safe(self):
        import json

        src = MetricsRegistry()
        src.histogram("h").observe(1.0)
        src.counter("c").inc()
        dst = MetricsRegistry()
        dst.merge(json.loads(json.dumps(src.export())))
        assert dst.snapshot() == src.snapshot()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_partitions_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_record_peak_rss_is_positive_on_posix(self):
        reg = MetricsRegistry()
        peak = reg.record_peak_rss()
        if peak is None:  # non-POSIX platform: nothing recorded
            return
        assert peak > 0
        assert reg.gauge("process.peak_rss_bytes").value == peak
