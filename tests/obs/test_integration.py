"""Pipeline instrumentation end-to-end: spans ARE the stage timings.

The acceptance property of the observability issue: every pipeline stage
is covered by a span, and the RunReport / PipelineTimings numbers the
pipeline already exposes are *derived from* those spans — so the two
accountings agree exactly, not approximately.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.generation import GenerationConfig
from repro.runtime import resilient_generate, resilient_render

STAGE_SPANS = ("stage.stats", "stage.generation", "stage.tap", "stage.render")


@pytest.fixture
def captured_run(two_measure_table):
    with obs.capture() as (tracer, metrics):
        run = resilient_generate(two_measure_table, GenerationConfig(), budget=4)
        notebook = resilient_render(run, two_measure_table, table_name="t")
    return run, notebook, tracer, metrics


class TestStageCoverage:
    def test_all_four_stages_have_spans(self, captured_run):
        _, _, tracer, _ = captured_run
        names = {s.name for s in tracer.spans()}
        for stage in STAGE_SPANS:
            assert stage in names, f"missing span {stage}"

    def test_all_spans_closed(self, captured_run):
        _, _, tracer, _ = captured_run
        assert all(s.closed for s in tracer.spans())

    def test_stage_spans_nest_under_run(self, captured_run):
        _, _, tracer, _ = captured_run
        (run_span,) = tracer.find("run")
        under_run = {c.name for c in tracer.children_of(run_span)}
        assert {"stage.stats", "stage.generation", "stage.tap"} <= under_run

    def test_substage_spans_present(self, captured_run):
        _, _, tracer, _ = captured_run
        names = {s.name for s in tracer.spans()}
        assert "stats.tests" in names
        assert "stats.test_attribute" in names
        assert "stats.bh_correction" in names
        assert "generation.support" in names
        assert "tap.heuristic" in names
        assert "render.notebook" in names


class TestSpanReportAgreement:
    def test_stage_report_seconds_equal_span_durations(self, captured_run):
        run, _, tracer, _ = captured_run
        for stage in ("stats", "generation", "tap"):
            entry = run.report.stage(stage)
            span_total = tracer.duration_of(f"stage.{stage}")
            assert entry.seconds == span_total, stage

    def test_pipeline_timings_derive_from_spans(self, captured_run):
        run, _, tracer, _ = captured_run
        timings = run.outcome.timings
        assert timings.statistical_tests == tracer.duration_of("stats.tests")
        assert timings.hypothesis_evaluation == tracer.duration_of("generation.support")
        assert timings.tap_solving == run.report.stage("tap").seconds

    def test_total_covers_stages(self, captured_run):
        run, _, tracer, _ = captured_run
        staged = sum(
            run.report.stage(s).seconds for s in ("stats", "generation", "tap")
        )
        assert run.report.total_seconds >= staged


class TestMetrics:
    def test_core_counters_recorded(self, captured_run):
        run, notebook, _, metrics = captured_run
        snap = metrics.snapshot()["counters"]
        assert snap["stats.candidates_tested"] > 0
        assert snap["stats.permutation_tests"] > 0
        assert snap["generation.hypothesis_queries"] > 0
        assert snap["generation.queries_final"] == len(run.outcome.queries)
        assert snap["notebook.cells"] == len(notebook.cells)

    def test_peak_rss_gauge_recorded(self, captured_run):
        _, _, _, metrics = captured_run
        assert metrics.snapshot()["gauges"]["process.peak_rss_bytes"] > 0

    def test_capture_left_ambient_state_clean(self, captured_run):
        # the fixture's capture() exited: the ambient tracer saw nothing
        assert not obs.current_tracer().find("stage.stats")


class TestExactSolverSpans:
    def test_exact_path_records_nodes_and_matrix_span(self, two_measure_table):
        with obs.capture() as (tracer, metrics):
            run = resilient_generate(
                two_measure_table, GenerationConfig(), budget=3, solver="exact"
            )
        assert run.report.stage("tap").status is not None
        names = {s.name for s in tracer.spans()}
        assert "tap.exact" in names
        assert "tap.distance_matrix" in names
        assert metrics.snapshot()["counters"]["tap.exact.solves"] >= 1
