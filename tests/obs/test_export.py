"""Exporter contracts: Chrome trace schema, Prometheus text, summaries."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    chrome_trace_events,
    format_hotspots,
    format_span_tree,
    metrics_summary_line,
    prometheus_name,
    summarize_spans,
    to_chrome_trace,
    to_prometheus_text,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def traced_run() -> Tracer:
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("run", budget=5):
        clock.tick(0.010)
        with tracer.span("stage.stats", rows=100):
            clock.tick(0.200)
        with tracer.span("stage.tap"):
            clock.tick(0.050)
    return tracer


class TestChromeTrace:
    def test_event_schema(self):
        events = chrome_trace_events(traced_run())
        assert [e["name"] for e in events] == ["run", "stage.stats", "stage.tap"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)

    def test_timestamps_rebased_microseconds(self):
        events = chrome_trace_events(traced_run())
        run, stats, tap = events
        assert run["ts"] == pytest.approx(0.0)
        assert run["dur"] == pytest.approx(260_000)  # 260ms in µs
        assert stats["ts"] == pytest.approx(10_000)
        assert stats["dur"] == pytest.approx(200_000)
        assert tap["dur"] == pytest.approx(50_000)

    def test_args_carry_attrs_and_parentage(self):
        events = chrome_trace_events(traced_run())
        run, stats, _ = events
        assert run["args"]["budget"] == 5
        assert "parent_id" not in run["args"]
        assert stats["args"]["rows"] == 100
        assert stats["args"]["parent_id"] == run["args"]["span_id"]

    def test_open_spans_excluded(self):
        tracer = Tracer()
        tracer.start("never-closed")
        assert chrome_trace_events(tracer) == []

    def test_include_open_emits_live_spans_marked_open(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.start("serve.request")
        clock.tick(0.1)
        with tracer.span("serve.submit"):
            clock.tick(0.05)
        events = chrome_trace_events(tracer, include_open=True)
        by_name = {e["name"]: e for e in events}
        assert by_name["serve.request"]["args"]["open"] is True
        assert by_name["serve.request"]["dur"] == pytest.approx(150_000)
        assert "open" not in by_name["serve.submit"]["args"]
        tracer.finish(root)

    def test_error_recorded_in_args(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("nope")
        (event,) = chrome_trace_events(tracer)
        assert event["args"]["error"] == "ValueError: nope"

    def test_round_trip_through_file(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("stats.candidates_tested").inc(42)
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_run(), path, metrics)
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["displayTimeUnit"] == "ms"
        assert {e["name"] for e in doc["traceEvents"]} == {"run", "stage.stats", "stage.tap"}
        assert doc["otherData"]["metrics"]["counters"]["stats.candidates_tested"] == 42

    def test_non_scalar_attrs_serialized_as_repr(self, tmp_path):
        tracer = Tracer()
        with tracer.span("weird", payload={"a": 1}):
            pass
        doc = to_chrome_trace(tracer)
        json.dumps(doc)  # must be JSON-serializable
        assert doc["traceEvents"][0]["args"]["payload"] == repr({"a": 1})


class TestPrometheus:
    def test_name_mangling(self):
        assert prometheus_name("stats.candidates_tested") == "repro_stats_candidates_tested"
        assert prometheus_name("tap.exact.nodes") == "repro_tap_exact_nodes"

    def test_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("stats.tests").inc(10)
        reg.gauge("process.peak_rss_bytes").set(2048)
        reg.histogram("render.query_seconds").observe(0.5)
        text = to_prometheus_text(reg)
        assert "# TYPE repro_stats_tests counter" in text
        assert "repro_stats_tests_total 10" in text
        assert "repro_process_peak_rss_bytes 2048" in text
        assert "repro_render_query_seconds_count 1" in text
        assert "repro_render_query_seconds_sum 0.5" in text
        assert text.endswith("\n")

    def test_empty_registry_yields_empty_text(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_labeled_series_render_prometheus_labels(self):
        reg = MetricsRegistry()
        reg.counter("serve.jobs", {"dataset": "covid", "outcome": "completed"}).inc(3)
        reg.gauge("serve.breaker_state", {"dataset": "covid"}).set(1)
        text = to_prometheus_text(reg)
        assert 'repro_serve_jobs_total{dataset="covid",outcome="completed"} 3' in text
        assert 'repro_serve_breaker_state{dataset="covid"} 1' in text

    def test_histogram_exposition_has_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("serve.job_latency_seconds", {"dataset": "covid"},
                          buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = to_prometheus_text(reg)
        assert "# TYPE repro_serve_job_latency_seconds histogram" in text
        assert 'repro_serve_job_latency_seconds_bucket{dataset="covid",le="0.1"} 1' in text
        assert 'repro_serve_job_latency_seconds_bucket{dataset="covid",le="1"} 2' in text
        assert 'repro_serve_job_latency_seconds_bucket{dataset="covid",le="+Inf"} 3' in text
        assert 'repro_serve_job_latency_seconds_count{dataset="covid"} 3' in text
        # One TYPE line per family even with several label sets.
        reg.histogram("serve.job_latency_seconds", {"dataset": "enedis"},
                      buckets=(0.1, 1.0)).observe(0.2)
        text = to_prometheus_text(reg)
        assert text.count("# TYPE repro_serve_job_latency_seconds histogram") == 1


class TestSummarizeSpans:
    def test_aggregates_by_name_heaviest_first(self):
        summary = summarize_spans(traced_run())
        names = [entry["name"] for entry in summary]
        assert names[0] == "run"  # encloses everything, so heaviest
        by_name = {entry["name"]: entry for entry in summary}
        assert by_name["stage.stats"]["count"] == 1
        assert by_name["stage.stats"]["seconds"] == pytest.approx(0.2)
        assert by_name["stage.stats"]["errors"] == 0

    def test_counts_open_spans_and_errors(self):
        tracer = Tracer()
        tracer.start("serve.request")
        with pytest.raises(ValueError):
            with tracer.span("stage.stats"):
                raise ValueError("boom")
        by_name = {e["name"]: e for e in summarize_spans(tracer)}
        assert by_name["serve.request"]["open"] == 1
        assert by_name["stage.stats"]["errors"] == 1

    def test_top_truncates(self):
        tracer = Tracer()
        for i in range(30):
            with tracer.span(f"s{i}"):
                pass
        assert len(summarize_spans(tracer, top=5)) == 5


class TestSummaries:
    def test_span_tree_lists_stages_with_shares(self):
        text = format_span_tree(traced_run())
        assert "run" in text
        assert "stage.stats" in text
        assert "stage.tap" in text
        assert "rows=100" in text
        assert "%" in text

    def test_span_tree_collapses_large_sibling_families(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run"):
            for _ in range(20):
                with tracer.span("unit"):
                    clock.tick(0.01)
        text = format_span_tree(tracer)
        assert "unit ×20" in text
        assert text.count("unit") == 1  # one aggregate line, not 20

    def test_empty_tracer(self):
        assert format_span_tree(Tracer()) == "(no spans recorded)"
        assert format_hotspots(Tracer()) == "(no spans recorded)"

    def test_hotspots_ranked_by_self_time(self):
        text = format_hotspots(traced_run(), top_k=2)
        lines = text.splitlines()
        assert lines[0] == "top 2 hotspots (self time):"
        # stats (200ms self) outranks tap (50ms) and run (10ms self)
        assert "stage.stats" in lines[1]

    def test_metrics_summary_line(self):
        reg = MetricsRegistry()
        reg.counter("stats.candidates_tested").inc(7)
        reg.counter("notebook.cells").inc(3)
        line = metrics_summary_line(reg)
        assert line == "metrics: 7 candidates tested, 3 cells"
        assert metrics_summary_line(MetricsRegistry()) == "metrics: (none recorded)"


class TestAmbientHelpers:
    def test_capture_isolates_and_restores(self):
        before = obs.current_tracer()
        with obs.capture() as (tracer, metrics):
            assert obs.current_tracer() is tracer
            assert obs.current_metrics() is metrics
            with obs.span("inside"):
                pass
            obs.counter("n").inc()
        assert obs.current_tracer() is before
        assert tracer.find("inside")
        assert not before.find("inside")
        assert metrics.counter("n").value == 1
