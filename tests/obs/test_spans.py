"""Span/tracer correctness: nesting, clocks, exceptions, threads."""

from __future__ import annotations

import threading

import pytest

from repro.obs import Tracer


class FakeClock:
    """Deterministic monotonic clock: advances only when told to."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_walk_is_depth_first_with_depths(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        walked = [(s.name, d) for s, d in tracer.walk()]
        assert walked == [("root", 0), ("a", 1), ("a1", 2), ("b", 1)]

    def test_roots_and_children_of(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("kid"):
                pass
        (found_root,) = tracer.roots()
        assert found_root is root
        assert [c.name for c in tracer.children_of(root)] == ["kid"]


class TestDurations:
    def test_duration_from_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work") as span:
            clock.tick(2.5)
        assert span.duration == pytest.approx(2.5)
        assert tracer.duration_of("work") == pytest.approx(2.5)

    def test_open_span_duration_zero_but_elapsed_live(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.start("open")
        clock.tick(1.0)
        assert not span.closed
        assert span.duration == 0.0
        assert span.elapsed == pytest.approx(1.0)
        tracer.finish(span)
        assert span.duration == pytest.approx(1.0)

    def test_finish_is_idempotent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.start("once")
        clock.tick(1.0)
        tracer.finish(span)
        clock.tick(5.0)
        tracer.finish(span)
        assert span.duration == pytest.approx(1.0)

    def test_duration_of_sums_same_name(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for _ in range(3):
            with tracer.span("repeat"):
                clock.tick(1.0)
        assert tracer.duration_of("repeat") == pytest.approx(3.0)

    def test_self_times_subtract_children(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("parent"):
            clock.tick(1.0)
            with tracer.span("child"):
                clock.tick(4.0)
        times = tracer.self_times()
        assert times["parent"] == pytest.approx(1.0)
        assert times["child"] == pytest.approx(4.0)


class TestExceptionSafety:
    def test_exception_closes_span_records_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fails") as span:
                raise ValueError("boom")
        assert span.closed
        assert span.error == "ValueError: boom"

    def test_exception_unwinds_manually_opened_children(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer") as outer:
                tracer.start("leaked")  # never explicitly finished
                raise RuntimeError("bail")
        (leaked,) = tracer.find("leaked")
        assert leaked.closed  # unwound when the outer span closed
        assert outer.closed
        assert tracer.current() is None

    def test_set_attrs_survive_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails") as span:
                span.set(progress=3)
                raise ValueError("x")
        assert span.attrs["progress"] == 3


class TestThreads:
    def test_worker_spans_attach_to_open_root(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker.task"):
                pass
            done.set()

        with tracer.span("run") as root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.wait(1)
        (task,) = tracer.find("worker.task")
        assert task.parent_id == root.span_id

    def test_concurrent_spans_all_recorded(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 25

        def worker(i: int):
            for j in range(per_thread):
                with tracer.span("unit", worker=i, j=j):
                    pass

        with tracer.span("run"):
            threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        units = tracer.find("unit")
        assert len(units) == n_threads * per_thread
        assert all(u.closed for u in units)
        # span ids are unique across threads
        ids = {u.span_id for u in units}
        assert len(ids) == len(units)

    def test_reset_clears_everything(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.roots() == []
