"""Tests for repro.evaluation: quality metrics, reporting, runtime, user study."""

import numpy as np
import pytest

from repro.datasets import covid_table
from repro.errors import ReproError, TAPError
from repro.evaluation import (
    CRITERIA,
    AggregateStat,
    NotebookFeatures,
    Stopwatch,
    objective_deviation_percent,
    render_histogram,
    render_series,
    render_table,
    run_preset,
    simulate_user_study,
    solution_recall,
)
from repro.generation import preset
from repro.tap import TAPSolution


def solution(indices, interest):
    return TAPSolution(tuple(indices), interest, float(len(indices)), 0.0)


class TestQualityMetrics:
    def test_deviation_zero_when_equal(self):
        exact = solution([0, 1], 2.0)
        assert objective_deviation_percent(exact, solution([1, 0], 2.0)) == 0.0

    def test_deviation_percent(self):
        exact = solution([0, 1], 4.0)
        approx = solution([0], 3.0)
        assert objective_deviation_percent(exact, approx) == pytest.approx(25.0)

    def test_deviation_negative_when_approx_better(self):
        assert objective_deviation_percent(solution([0], 2.0), solution([1], 3.0)) < 0

    def test_deviation_zero_exact_rejected(self):
        with pytest.raises(TAPError):
            objective_deviation_percent(solution([], 0.0), solution([0], 1.0))

    def test_recall(self):
        exact = solution([0, 1, 2, 3], 4.0)
        approx = solution([2, 3, 9], 3.0)
        assert solution_recall(exact, approx) == 0.5

    def test_recall_empty_exact_rejected(self):
        with pytest.raises(TAPError):
            solution_recall(solution([], 0.0), solution([0], 1.0))

    def test_aggregate_stat(self):
        stat = AggregateStat.of([1.0, 2.0, 3.0])
        assert stat.mean == 2.0
        assert stat.minimum == 1.0 and stat.maximum == 3.0
        assert stat.n == 3
        assert "2.00" in stat.format()

    def test_aggregate_stat_single_value(self):
        assert AggregateStat.of([5.0]).std == 0.0

    def test_aggregate_stat_empty_rejected(self):
        with pytest.raises(TAPError):
            AggregateStat.of([])


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "---" in lines[2]

    def test_render_series(self):
        assert render_series("s", [1, 2], [10.0, 20.0]) == "s: 1=10, 2=20"

    def test_render_histogram(self):
        text = render_histogram([1.0] * 5 + [2.0] * 10 + [3.0], n_bins=4)
        assert "#" in text

    def test_render_histogram_degenerate(self):
        assert "values" in render_histogram([2.0, 2.0])
        assert render_histogram([]) == "(no data)"


class TestStopwatchAndRunner:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.lap("phase"):
            pass
        with watch.lap("phase"):
            pass
        assert watch.laps["phase"] >= 0.0
        assert watch.total() == sum(watch.laps.values())

    def test_stopwatch_restores_timing_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch.lap("phase"):
                raise ValueError("interrupted")
        assert "phase" in watch.laps  # the lap still landed

    def test_run_preset(self):
        covid = covid_table(300)
        outcome = run_preset(preset("wsc-approx"), covid, "wsc-approx", budget=3)
        assert outcome.preset_name == "wsc-approx"
        assert outcome.wall_seconds > 0
        assert outcome.n_queries >= len(outcome.run.selected)
        assert set(outcome.breakdown) == {
            "preprocessing", "sampling", "statistical_tests",
            "hypothesis_evaluation", "tap_solving",
        }

    def test_run_preset_wall_seconds_matches_span(self):
        from repro import obs

        covid = covid_table(300)
        with obs.capture() as (tracer, _):
            outcome = run_preset(preset("wsc-approx"), covid, "wsc-approx", budget=3)
        (bench_span,) = tracer.find("bench.preset")
        assert outcome.wall_seconds == bench_span.duration
        assert bench_span.attrs["preset"] == "wsc-approx"
        # the span encloses the pipeline: breakdown phases cannot exceed it
        assert sum(outcome.breakdown.values()) <= outcome.wall_seconds


@pytest.fixture(scope="module")
def notebooks():
    covid = covid_table(400)
    runs = {}
    for name in ("wsc-approx", "wsc-approx-sig"):
        runs[name] = preset(name).generate(covid, budget=4).selected
    return runs


class TestUserStudy:
    def test_features_computed(self, notebooks):
        features = NotebookFeatures.of(notebooks["wsc-approx"])
        assert features.n_distinct_insights >= 1
        assert 0 <= features.mean_significance <= 1
        assert 0 < features.coherence <= 1
        assert 0 < features.diversity <= 1

    def test_empty_notebook_rejected(self):
        with pytest.raises(ReproError):
            NotebookFeatures.of([])

    def test_study_shape(self, notebooks):
        study = simulate_user_study(notebooks, n_raters=9, seed=1)
        for name, matrix in study.ratings.items():
            assert matrix.shape == (9, len(CRITERIA))
            assert np.all((1 <= matrix) & (matrix <= 7))

    def test_study_deterministic(self, notebooks):
        one = simulate_user_study(notebooks, seed=7)
        two = simulate_user_study(notebooks, seed=7)
        for name in notebooks:
            np.testing.assert_array_equal(one.ratings[name], two.ratings[name])

    def test_t_test_symmetric(self, notebooks):
        study = simulate_user_study(notebooks, seed=3)
        a, b = list(notebooks)
        assert study.t_test(a, b, "informativity") == pytest.approx(
            study.t_test(b, a, "informativity")
        )

    def test_identical_notebooks_not_significant(self, notebooks):
        name = "wsc-approx"
        pair = {"one": notebooks[name], "two": notebooks[name]}
        study = simulate_user_study(pair, n_raters=9, seed=5)
        assert not study.significant_difference("one", "two", "comprehensibility")

    def test_mean_table(self, notebooks):
        study = simulate_user_study(notebooks, seed=2)
        rows = study.mean_table()
        assert len(rows) == len(notebooks)
        assert all(len(r) == 1 + len(CRITERIA) for r in rows)

    def test_empty_study_rejected(self):
        with pytest.raises(ReproError):
            simulate_user_study({})
