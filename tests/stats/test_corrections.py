"""Unit + property tests for repro.stats.corrections."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats import benjamini_hochberg, bh_reject, bonferroni


class TestBenjaminiHochberg:
    def test_known_example(self):
        # Classic worked example.
        p = [0.01, 0.04, 0.03, 0.005]
        adjusted = benjamini_hochberg(p)
        # sorted: 0.005*4/1=0.02, 0.01*4/2=0.02, 0.03*4/3=0.04, 0.04*4/4=0.04
        assert adjusted.tolist() == pytest.approx([0.02, 0.04, 0.04, 0.02])

    def test_single_p_value_unchanged(self):
        assert benjamini_hochberg([0.2]).tolist() == [0.2]

    def test_empty_input(self):
        assert benjamini_hochberg([]).size == 0

    def test_all_ones(self):
        assert benjamini_hochberg([1.0, 1.0]).tolist() == [1.0, 1.0]

    def test_invalid_values_rejected(self):
        with pytest.raises(StatisticsError):
            benjamini_hochberg([0.5, 1.5])
        with pytest.raises(StatisticsError):
            benjamini_hochberg([-0.1])
        with pytest.raises(StatisticsError):
            benjamini_hochberg([float("nan")])

    def test_2d_rejected(self):
        with pytest.raises(StatisticsError):
            benjamini_hochberg(np.zeros((2, 2)))  # type: ignore[arg-type]

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=50))
    def test_adjusted_at_least_raw(self, ps):
        adjusted = benjamini_hochberg(ps)
        assert np.all(adjusted >= np.asarray(ps) - 1e-12)

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=50))
    def test_adjusted_within_unit_interval(self, ps):
        adjusted = benjamini_hochberg(ps)
        assert np.all((0 <= adjusted) & (adjusted <= 1))

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=50))
    def test_order_preserving(self, ps):
        """Smaller raw p-values never get larger adjusted p-values."""
        adjusted = benjamini_hochberg(ps)
        order = np.argsort(ps, kind="stable")
        assert np.all(np.diff(adjusted[order]) >= -1e-12)

    def test_rejection_mask(self):
        mask = bh_reject([0.001, 0.5, 0.002], alpha=0.05)
        assert mask.tolist() == [True, False, True]

    def test_alpha_validated(self):
        with pytest.raises(StatisticsError):
            bh_reject([0.1], alpha=1.5)


class TestBonferroni:
    def test_scaling(self):
        assert bonferroni([0.01, 0.02]).tolist() == [0.02, 0.04]

    def test_clipped_at_one(self):
        assert bonferroni([0.5, 0.9]).tolist() == [1.0, 1.0]

    def test_more_conservative_than_bh(self):
        p = [0.001, 0.01, 0.02, 0.04, 0.9]
        assert np.all(bonferroni(p) >= benjamini_hochberg(p) - 1e-12)

    def test_invalid_rejected(self):
        with pytest.raises(StatisticsError):
            bonferroni([2.0])
