"""Unit tests for repro.stats.parametric."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats import (
    derive_rng,
    f_variance_greater,
    levene_variance_greater,
    welch_mean_greater,
)


@pytest.fixture
def prng():
    return derive_rng(31, "parametric")


class TestWelch:
    def test_detects_mean_shift(self, prng):
        x = prng.normal(2, 1, 80)
        y = prng.normal(0, 1, 80)
        assert welch_mean_greater(x, y).p_value < 0.001

    def test_wrong_direction(self, prng):
        x = prng.normal(0, 1, 80)
        y = prng.normal(2, 1, 80)
        assert welch_mean_greater(x, y).p_value > 0.99

    def test_tiny_samples_inconclusive(self):
        assert welch_mean_greater(np.array([5.0]), np.array([1.0])).p_value == 1.0

    def test_constant_samples_degenerate(self):
        bigger = welch_mean_greater(np.array([2.0, 2.0]), np.array([1.0, 1.0]))
        assert bigger.p_value == 0.0
        smaller = welch_mean_greater(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert smaller.p_value == 1.0

    def test_nan_stripped(self, prng):
        x = np.concatenate([prng.normal(3, 1, 50), [np.nan]])
        y = prng.normal(0, 1, 50)
        assert welch_mean_greater(x, y).p_value < 0.01

    def test_empty_rejected(self):
        with pytest.raises(StatisticsError):
            welch_mean_greater(np.array([]), np.array([1.0]))


class TestVarianceTests:
    def test_f_test_detects_spread(self, prng):
        x = prng.normal(0, 4, 100)
        y = prng.normal(0, 1, 100)
        assert f_variance_greater(x, y).p_value < 0.001

    def test_f_test_wrong_direction(self, prng):
        x = prng.normal(0, 1, 100)
        y = prng.normal(0, 4, 100)
        assert f_variance_greater(x, y).p_value > 0.5

    def test_f_zero_variance_baseline(self):
        result = f_variance_greater(np.array([1.0, 2.0]), np.array([3.0, 3.0]))
        assert result.p_value == 0.0
        result = f_variance_greater(np.array([3.0, 3.0]), np.array([3.0, 3.0]))
        assert result.p_value == 1.0

    def test_levene_detects_spread(self, prng):
        x = prng.normal(0, 4, 120)
        y = prng.normal(0, 1, 120)
        assert levene_variance_greater(x, y).p_value < 0.01

    def test_levene_direction(self, prng):
        x = prng.normal(0, 1, 120)
        y = prng.normal(0, 4, 120)
        assert levene_variance_greater(x, y).p_value > 0.5

    def test_levene_small_samples(self):
        assert levene_variance_greater(np.array([1.0]), np.array([2.0, 3.0])).p_value == 1.0

    def test_agreement_between_tests_on_strong_effect(self, prng):
        x = prng.normal(0, 5, 200)
        y = prng.normal(0, 1, 200)
        assert f_variance_greater(x, y).p_value < 0.01
        assert levene_variance_greater(x, y).p_value < 0.01
