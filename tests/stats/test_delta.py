"""Unit tests for the delta-aware stats planner (repro.stats.delta)."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.generation.config import GenerationConfig, SamplingSpec
from repro.insights.insight import CandidateInsight
from repro.stats.delta import (
    StatsMemo,
    incremental_config_token,
    merge_attribute,
    plan_incremental,
    segment_families,
    split_families,
)
from repro.stats.permutation import TestResult as Result


def cand(val, other, measure="m", type_code="M", attribute="a"):
    return CandidateInsight(measure, attribute, val, other, type_code)


def with_significance(config, **changes):
    return dataclasses.replace(
        config,
        significance=dataclasses.replace(config.significance, **changes),
    )


# Two families over attribute 'a': (x, y) with both orientations × 2 types,
# and (x, z) with a single candidate.
FAMILY_XY = (
    cand("x", "y"), cand("y", "x"), cand("x", "y", type_code="V"),
)
FAMILY_XZ = (cand("x", "z"),)
CANDIDATES = FAMILY_XY + FAMILY_XZ


class TestConfigToken:
    def test_stable_across_equivalent_configs(self):
        one = GenerationConfig()
        # Backend, chunking, and parallelism are row-level-invariant: the
        # token must not move, or appends could never reuse a memo.
        two = dataclasses.replace(one, backend="sqlite", mqo=False)
        assert incremental_config_token(one) == incremental_config_token(two)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c: dataclasses.replace(c, insight_types=("M",)),
            lambda c: dataclasses.replace(c, max_pairs_per_attribute=3),
            lambda c: dataclasses.replace(
                c, sampling=SamplingSpec("random", 0.5)
            ),
            lambda c: with_significance(c, n_permutations=77),
            lambda c: with_significance(c, seed=1),
            lambda c: with_significance(c, threshold=0.9),
            lambda c: with_significance(c, kernel="legacy"),
        ],
    )
    def test_sensitive_to_result_shaping_fields(self, mutate):
        base = GenerationConfig()
        assert incremental_config_token(base) != incremental_config_token(
            mutate(base)
        )


class TestSplitFamilies:
    def test_contiguous_runs_cut_at_pair_boundaries(self):
        families = split_families(CANDIDATES)
        assert [key for key, _ in families] == [
            ("a", frozenset({"x", "y"})),
            ("a", frozenset({"x", "z"})),
        ]
        assert families[0][1] == FAMILY_XY
        assert families[1][1] == FAMILY_XZ

    def test_empty(self):
        assert split_families(()) == []


class TestSegmentFamilies:
    def test_round_trip_with_dropped_candidates(self):
        # The runner dropped the middle candidate of family one (unusable
        # sample); segmentation must still attribute results correctly.
        oriented = (CANDIDATES[0], CANDIDATES[2], CANDIDATES[3])
        results = tuple(Result(float(i), 0.1 * i) for i in range(3))
        records = segment_families(CANDIDATES, oriented, results)
        assert [len(r.results) for r in records] == [2, 1]
        assert records[0].oriented == (CANDIDATES[0], CANDIDATES[2])
        assert records[1].results == (results[2],)

    def test_orientation_flip_still_matches(self):
        flipped = (cand("y", "x"), cand("z", "x"))
        records = segment_families(
            (cand("x", "y"), cand("x", "z")),
            flipped,
            (Result(1.0, 0.5), Result(2.0, 0.25)),
        )
        assert [r.oriented for r in records] == [(flipped[0],), (flipped[1],)]

    def test_orphan_results_rejected(self):
        with pytest.raises(ReproError, match="orphan"):
            segment_families(
                FAMILY_XZ,
                (cand("x", "z"), cand("q", "r", measure="other")),
                (Result(1.0, 0.5), Result(2.0, 0.25)),
            )


def make_memo(config, families=None):
    if families is None:
        records = segment_families(
            CANDIDATES,
            CANDIDATES,
            tuple(Result(float(i), 0.01 * i) for i in range(len(CANDIDATES))),
        )
        families = {"a": records}
    return StatsMemo(
        "100-abc", 100, incremental_config_token(config), families
    )


WORK = [("a", None, list(CANDIDATES))]


class TestPlanIncremental:
    def test_clean_and_dirty_classification(self):
        config = GenerationConfig()
        memo = make_memo(config)
        plan = plan_incremental(memo, WORK, {"a": frozenset({"z"})}, config)
        assert plan is not None
        assert plan.skipped == 1 and plan.retested == 1
        entries = plan.order["a"]
        assert entries[0][2] is not None  # (x, y) untouched -> clean
        assert entries[1][2] is None  # (x, z) contains dirty 'z'
        assert plan.dirty_work == [("a", None, list(FAMILY_XZ))]

    def test_no_dirty_values_skips_everything(self):
        config = GenerationConfig()
        plan = plan_incremental(make_memo(config), WORK, {}, config)
        assert plan.skipped == 2 and plan.retested == 0
        assert plan.dirty_work == []

    def test_changed_candidate_list_is_dirty(self):
        # A new value pair appears in the enumeration (e.g. appended rows
        # introduced a label): no stored record -> dirty.
        config = GenerationConfig()
        memo = make_memo(config)
        new_family = (cand("x", "w"),)
        work = [("a", None, list(CANDIDATES + new_family))]
        plan = plan_incremental(memo, work, {}, config)
        assert plan.retested == 1
        assert plan.dirty_work == [("a", None, list(new_family))]

    def test_sampling_falls_back(self):
        config = GenerationConfig()
        sampled = dataclasses.replace(config, sampling=SamplingSpec("random", 0.5))
        assert plan_incremental(make_memo(config), WORK, {}, sampled) is None

    def test_unshared_permutations_fall_back(self):
        config = with_significance(GenerationConfig(), share_across_pairs=False)
        assert plan_incremental(make_memo(config), WORK, {}, config) is None

    def test_config_token_mismatch_falls_back(self):
        config = GenerationConfig()
        changed = with_significance(config, n_permutations=999)
        assert plan_incremental(make_memo(config), WORK, {}, changed) is None


class TestMergeAttribute:
    def test_merged_sequence_matches_cold_order(self):
        config = GenerationConfig()
        memo = make_memo(config)
        plan = plan_incremental(memo, WORK, {"a": frozenset({"z"})}, config)
        fresh_result = Result(9.0, 0.009)
        oriented, results, records = merge_attribute(
            plan, "a", (list(FAMILY_XZ), [fresh_result])
        )
        # Clean family served verbatim from the memo, dirty family spliced
        # from the fresh raw output, in enumeration order.
        assert tuple(oriented) == CANDIDATES
        assert results[:3] == list(memo.families["a"][0].results)
        assert results[3] == fresh_result
        assert [r.pair_key for r in records] == [
            ("a", frozenset({"x", "y"})),
            ("a", frozenset({"x", "z"})),
        ]


class TestMemoSerialization:
    def test_json_round_trip(self):
        memo = make_memo(GenerationConfig())
        clone = StatsMemo.from_dict(memo.to_dict())
        assert clone.version == memo.version
        assert clone.n_rows == memo.n_rows
        assert clone.token == memo.token
        assert clone.families == memo.families

    def test_unsupported_schema_version_rejected(self):
        data = make_memo(GenerationConfig()).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ReproError, match="version"):
            StatsMemo.from_dict(data)

    def test_empty_family_rejected(self):
        data = make_memo(GenerationConfig()).to_dict()
        data["families"]["a"][0]["candidates"] = []
        with pytest.raises(ReproError, match="empty"):
            StatsMemo.from_dict(data)
