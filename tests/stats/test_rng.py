"""Unit tests for repro.stats.rng (deterministic sub-streams)."""

from repro.stats import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(1, part) for part in ("a", "b", "c", "d", ("a", "b"))}
        assert len(seeds) == 5

    def test_root_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_key_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestDeriveRng:
    def test_same_stream_same_draws(self):
        one = derive_rng(5, "stream").random(4)
        two = derive_rng(5, "stream").random(4)
        assert one.tolist() == two.tolist()

    def test_different_streams_differ(self):
        one = derive_rng(5, "s1").random(4)
        two = derive_rng(5, "s2").random(4)
        assert one.tolist() != two.tolist()
