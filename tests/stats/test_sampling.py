"""Unit tests for repro.stats.sampling."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.relational import table_from_arrays
from repro.stats import (
    derive_rng,
    minority_preservation,
    random_sample,
    random_sample_indices,
    unbalanced_sample,
    unbalanced_sample_indices,
)


@pytest.fixture
def prng():
    return derive_rng(77, "sampling")


@pytest.fixture
def skewed(prng):
    """900 rows of a majority value, 90 of a medium one, 10 of a minority."""
    values = ["big"] * 900 + ["mid"] * 90 + ["tiny"] * 10
    return table_from_arrays({"attr": values}, {"m": list(range(1000))})


class TestRandomSampling:
    def test_size(self, skewed, prng):
        sample = random_sample(skewed, 0.1, prng)
        assert sample.n_rows == 100

    def test_indices_sorted_and_unique(self, prng):
        idx = random_sample_indices(1000, 0.2, prng)
        assert len(set(idx.tolist())) == len(idx)
        assert np.all(np.diff(idx) > 0)

    def test_rate_validation(self, skewed, prng):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(SamplingError):
                random_sample(skewed, bad, prng)

    def test_empty_table_rejected(self, prng):
        empty = table_from_arrays({"a": []}, {"m": []})
        with pytest.raises(SamplingError):
            random_sample(empty, 0.5, prng)

    def test_full_rate_returns_everything(self, skewed, prng):
        assert random_sample(skewed, 1.0, prng).n_rows == skewed.n_rows

    def test_tiny_rate_at_least_one_row(self, prng):
        t = table_from_arrays({"a": ["x"] * 10}, {"m": range(10)})
        assert random_sample(t, 0.01, prng).n_rows >= 1


class TestUnbalancedSampling:
    def test_size_roughly_rate(self, skewed, prng):
        sample = unbalanced_sample(skewed, 0.1, prng)
        assert 50 <= sample.n_rows <= 110  # union of per-attribute draws

    def test_minority_values_preserved(self, skewed, prng):
        """The signature property: all attribute values survive a 10% sample."""
        sample = unbalanced_sample(skewed, 0.1, prng)
        assert minority_preservation(skewed, sample, "attr") == 1.0

    def test_random_sampling_loses_minorities_more(self, prng):
        """At very low rates, unbalanced must preserve >= values vs random."""
        values = ["big"] * 990 + [f"rare{i}" for i in range(10)]
        t = table_from_arrays({"attr": values}, {"m": range(1000)})
        unb, rnd = [], []
        for trial in range(10):
            r1 = derive_rng(trial, "u")
            r2 = derive_rng(trial, "r")
            unb.append(minority_preservation(t, unbalanced_sample(t, 0.05, r1), "attr"))
            rnd.append(minority_preservation(t, random_sample(t, 0.05, r2), "attr"))
        assert np.mean(unb) > np.mean(rnd)

    def test_indices_valid(self, skewed, prng):
        idx = unbalanced_sample_indices(skewed, 0.2, prng)
        assert idx.min() >= 0 and idx.max() < skewed.n_rows
        assert len(set(idx.tolist())) == len(idx)

    def test_multi_attribute_union(self, prng):
        t = table_from_arrays(
            {"a": ["x", "x", "y", "y"] * 25, "b": ["p", "q", "p", "q"] * 25},
            {"m": range(100)},
        )
        sample = unbalanced_sample(t, 0.2, prng)
        assert sample.n_rows >= 4  # at least one row per (attribute, value)
        assert minority_preservation(t, sample, "a") == 1.0
        assert minority_preservation(t, sample, "b") == 1.0

    def test_no_categorical_falls_back_to_random(self, prng):
        t = table_from_arrays({}, {"m": range(50)})
        idx = unbalanced_sample_indices(t, 0.1, prng)
        assert idx.size == 5

    def test_rate_validation(self, skewed, prng):
        with pytest.raises(SamplingError):
            unbalanced_sample(skewed, 0.0, prng)


class TestMinorityPreservation:
    def test_bounds(self, skewed, prng):
        sample = random_sample(skewed, 0.2, prng)
        value = minority_preservation(skewed, sample, "attr")
        assert 0.0 <= value <= 1.0

    def test_full_sample_is_one(self, skewed):
        assert minority_preservation(skewed, skewed, "attr") == 1.0


class TestPerAttributeBalancedSamples:
    def test_full_budget_per_attribute(self, prng):
        from repro.stats import balanced_sample_for_attribute, per_attribute_balanced_samples

        values = ["big"] * 900 + ["mid"] * 90 + ["tiny"] * 10
        t = table_from_arrays({"attr": values, "other": ["x", "y"] * 500}, {"m": range(1000)})
        samples = per_attribute_balanced_samples(t, 0.2, prng)
        assert set(samples) == {"attr", "other"}
        # Each attribute's sample uses the full rate*n budget, not a split.
        for sample in samples.values():
            assert sample.n_rows == 200

    def test_minority_values_get_equal_quota(self, prng):
        from repro.stats import balanced_sample_for_attribute

        values = ["big"] * 950 + ["rare"] * 50
        t = table_from_arrays({"attr": values}, {"m": range(1000)})
        sample = balanced_sample_for_attribute(t, "attr", 0.1, prng)
        col = sample.categorical_column("attr")
        n_rare = int(col.equals_mask("rare").sum())
        n_big = int(col.equals_mask("big").sum())
        # The 5% minority holds ~half of the balanced sample.
        assert n_rare >= 0.3 * sample.n_rows
        assert n_big + n_rare == sample.n_rows

    def test_rate_validation(self, prng):
        from repro.stats import balanced_sample_for_attribute

        t = table_from_arrays({"a": ["x", "y"]}, {"m": [1, 2]})
        with pytest.raises(SamplingError):
            balanced_sample_for_attribute(t, "a", 0.0, prng)
