"""Unit + statistical tests for repro.stats.permutation."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats import (
    SharedPermutations,
    derive_rng,
    mean_difference,
    permutation_mean_greater,
    permutation_variance_greater,
    variance_difference,
)


@pytest.fixture
def prng():
    return derive_rng(999, "perm-tests")


class TestStatistics:
    def test_mean_difference_signed(self):
        assert mean_difference(np.array([3.0, 5.0]), np.array([1.0, 1.0])) == 3.0
        assert mean_difference(np.array([0.0]), np.array([2.0])) == -2.0

    def test_variance_difference(self):
        x = np.array([0.0, 10.0])
        y = np.array([5.0, 5.0])
        assert variance_difference(x, y) == pytest.approx(50.0)

    def test_variance_difference_undefined_single_point(self):
        assert np.isnan(variance_difference(np.array([1.0]), np.array([1.0, 2.0])))


class TestSharedPermutations:
    def test_shapes(self, prng):
        batch = SharedPermutations(10, 15, 50, prng)
        assert batch.x_indices.shape == (50, 10)
        assert batch.complement_indices().shape == (50, 15)
        assert batch.n_permutations == 50

    def test_each_row_is_a_permutation(self, prng):
        batch = SharedPermutations(4, 3, 20, prng)
        complements = batch.complement_indices()
        for i in range(20):
            combined = np.concatenate([batch.x_indices[i], complements[i]])
            assert sorted(combined.tolist()) == list(range(7))

    def test_membership_mask_matches_x_indices(self, prng):
        batch = SharedPermutations(6, 9, 25, prng)
        mask = batch.membership_mask()
        assert mask.shape == (25, 15)
        assert mask.dtype == np.float64
        assert np.all(mask.sum(axis=1) == 6.0)
        for i in range(25):
            assert set(np.nonzero(mask[i])[0].tolist()) == set(batch.x_indices[i].tolist())

    def test_invalid_sizes(self, prng):
        with pytest.raises(StatisticsError):
            SharedPermutations(0, 5, 10, prng)
        with pytest.raises(StatisticsError):
            SharedPermutations(5, 5, 0, prng)

    def test_size_mismatch_detected(self, prng):
        batch = SharedPermutations(3, 3, 10, prng)
        with pytest.raises(StatisticsError, match="do not match"):
            batch.mean_greater(np.ones(4), np.ones(3))

    def test_nan_input_rejected_via_size_check(self, prng):
        batch = SharedPermutations(3, 3, 10, prng)
        with pytest.raises(StatisticsError):
            batch.mean_greater(np.array([1.0, 2.0, np.nan]), np.ones(3))


class TestPValueBehaviour:
    def test_strong_effect_small_p(self, prng):
        x = prng.normal(5, 1, 100)
        y = prng.normal(0, 1, 100)
        result = permutation_mean_greater(x, y, 200, prng)
        assert result.p_value <= 1.0 / 100
        assert result.significance >= 0.99

    def test_wrong_direction_large_p(self, prng):
        x = prng.normal(0, 1, 100)
        y = prng.normal(5, 1, 100)
        result = permutation_mean_greater(x, y, 200, prng)
        assert result.p_value > 0.9

    def test_null_p_roughly_uniform(self, prng):
        """Under H0 the p-value must be ~ Uniform(0,1): check the mean."""
        ps = []
        for i in range(60):
            x = prng.normal(0, 1, 30)
            y = prng.normal(0, 1, 30)
            ps.append(permutation_mean_greater(x, y, 99, prng).p_value)
        assert 0.3 < np.mean(ps) < 0.7

    def test_p_never_zero(self, prng):
        x = np.arange(100.0) + 1000.0
        y = np.arange(100.0)
        result = permutation_mean_greater(x, y, 200, prng)
        assert result.p_value >= 1.0 / 201

    def test_variance_test_detects_spread(self, prng):
        x = prng.normal(0, 5, 150)
        y = prng.normal(0, 1, 150)
        result = permutation_variance_greater(x, y, 200, prng)
        assert result.p_value < 0.05

    def test_variance_undefined_gives_p_one(self, prng):
        batch = SharedPermutations(1, 3, 10, prng)
        result = batch.variance_greater(np.array([1.0]), np.array([1.0, 2.0, 3.0]))
        assert result.p_value == 1.0

    def test_nans_stripped_by_wrappers(self, prng):
        x = np.array([5.0, np.nan, 6.0, 7.0])
        y = np.array([1.0, 2.0, np.nan])
        result = permutation_mean_greater(x, y, 50, prng)
        assert result.statistic == pytest.approx(6.0 - 1.5)

    def test_empty_side_rejected(self, prng):
        with pytest.raises(StatisticsError, match="non-empty"):
            permutation_mean_greater(np.array([np.nan]), np.array([1.0]), 50, prng)

    def test_determinism_with_same_rng_seed(self):
        x = np.arange(20.0)
        y = np.arange(20.0) + 0.5
        one = permutation_mean_greater(x, y, 100, derive_rng(7, "a"))
        two = permutation_mean_greater(x, y, 100, derive_rng(7, "a"))
        assert one.p_value == two.p_value

    def test_shared_batch_consistent_across_measures(self, prng):
        """The same batch must be reusable for several measures."""
        batch = SharedPermutations(20, 20, 100, prng)
        m1_x, m1_y = prng.normal(3, 1, 20), prng.normal(0, 1, 20)
        m2_x, m2_y = prng.normal(0, 1, 20), prng.normal(0, 1, 20)
        r1 = batch.mean_greater(m1_x, m1_y)
        r2 = batch.mean_greater(m2_x, m2_y)
        assert r1.p_value < 0.05
        assert 0.0 < r2.p_value <= 1.0
        # Re-running on the same batch is deterministic.
        assert batch.mean_greater(m1_x, m1_y).p_value == r1.p_value
