"""Unit + parity tests for the batched permutation-test kernel."""

import numpy as np
import pytest

from repro import obs
from repro.errors import StatisticsError
from repro.insights import (
    SignificanceConfig,
    enumerate_candidates,
    run_significance_tests,
)
from repro.insights.types import MEAN_GREATER, MEDIAN_GREATER, VARIANCE_GREATER
from repro.relational import table_from_arrays
from repro.stats import (
    KERNEL_NAMES,
    STATS_KERNEL_ENV_VAR,
    KernelTest,
    SharedPermutations,
    default_stats_kernel,
    derive_rng,
    mean_difference,
    mean_stat_from_moments,
    reduced_permutations,
    run_batched_tests,
    variance_difference,
    variance_stat_from_moments,
)
from repro.stats.kernel import MAX_STACK_ROWS


@pytest.fixture
def prng():
    return derive_rng(31, "kernel-tests")


class TestDefaultKernel:
    def test_unset_env_means_batched(self, monkeypatch):
        monkeypatch.delenv(STATS_KERNEL_ENV_VAR, raising=False)
        assert default_stats_kernel() == "batched"

    def test_env_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(STATS_KERNEL_ENV_VAR, "legacy")
        assert default_stats_kernel() == "legacy"
        assert SignificanceConfig().kernel == "legacy"

    def test_env_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(STATS_KERNEL_ENV_VAR, " Batched ")
        assert default_stats_kernel() == "batched"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(STATS_KERNEL_ENV_VAR, "turbo")
        with pytest.raises(StatisticsError, match="REPRO_STATS_KERNEL"):
            default_stats_kernel()

    def test_config_validates_kernel(self):
        with pytest.raises(StatisticsError, match="kernel"):
            SignificanceConfig(kernel="turbo")
        for name in KERNEL_NAMES:
            assert SignificanceConfig(kernel=name).kernel == name


class TestMomentFormulas:
    def test_mean_from_moments_matches_direct(self, prng):
        x = prng.normal(3, 2, 40)
        y = prng.normal(1, 2, 25)
        pooled = np.concatenate([x, y])
        stat = mean_stat_from_moments(float(x.sum()), float(pooled.sum()), 40, 25)
        assert stat == pytest.approx(mean_difference(x, y), rel=0, abs=1e-10)

    def test_variance_from_moments_matches_direct(self, prng):
        x = prng.normal(0, 4, 30)
        y = prng.normal(0, 1, 50)
        pooled = np.concatenate([x, y])
        squared = pooled * pooled
        stat = variance_stat_from_moments(
            float(x.sum()),
            float((x * x).sum()),
            float(pooled.sum()),
            float(squared.sum()),
            30,
            50,
        )
        assert stat == pytest.approx(variance_difference(x, y), rel=1e-9)

    def test_variance_from_moments_vectorized(self, prng):
        """Array inputs broadcast: one call per permutation column."""
        x_sums = prng.normal(10, 1, 7)
        x_sq = np.abs(prng.normal(50, 5, 7)) + x_sums**2 / 3
        stat = variance_stat_from_moments(x_sums, x_sq, 30.0, 400.0, 3, 4)
        assert stat.shape == (7,)


class TestLargeMagnitudeStability:
    def test_variance_p_matches_two_pass_reference_at_huge_mean(self, prng):
        """Values ~1e8 with unit variance: both kernels must agree with the
        stable two-pass ``np.var`` path.  The uncentered one-pass moment
        identity loses every significant digit in this regime (errors ~10
        against a statistic scale well under 1), silently flipping p-values;
        centering the pooled sample restores full precision."""
        batch = SharedPermutations(30, 30, 200, prng)
        x = prng.normal(1.0e8, 1.6, 30)
        y = prng.normal(1.0e8, 1.0, 30)
        observed = variance_difference(x, y)
        pooled = np.concatenate([x, y])
        reference = (
            np.var(pooled[batch.x_indices], axis=1, ddof=1)
            - np.var(pooled[batch.complement_indices()], axis=1, ddof=1)
        )
        slack = 1e-12 * max(1.0, abs(observed))
        extreme = int(np.count_nonzero(reference >= observed - slack))
        reference_p = (1.0 + extreme) / (1.0 + reference.size)
        legacy = batch.variance_greater(x, y)
        assert legacy.p_value == reference_p
        (got,) = run_batched_tests(batch, [_plan(VARIANCE_GREATER, batch, x, y)])
        assert got[1].p_value == legacy.p_value

    def test_mean_p_matches_gather_reference_at_huge_mean(self, prng):
        """Mean statistics are less cancellation-prone but share the
        centering; verify the legacy/batched pair still agrees with a
        direct gather-and-mean evaluation at large magnitude."""
        batch = SharedPermutations(25, 35, 200, prng)
        x = prng.normal(1.0e8 + 0.5, 1.0, 25)
        y = prng.normal(1.0e8, 1.0, 35)
        observed = mean_difference(x, y)
        pooled = np.concatenate([x, y])
        reference = (
            pooled[batch.x_indices].mean(axis=1)
            - pooled[batch.complement_indices()].mean(axis=1)
        )
        slack = 1e-12 * max(1.0, abs(observed))
        extreme = int(np.count_nonzero(reference >= observed - slack))
        reference_p = (1.0 + extreme) / (1.0 + reference.size)
        legacy = batch.mean_greater(x, y)
        assert legacy.p_value == reference_p
        (got,) = run_batched_tests(batch, [_plan(MEAN_GREATER, batch, x, y)])
        assert got[1].p_value == legacy.p_value


def _plan(itype, batch, x, y, index=0):
    pooled = np.concatenate([x, y])
    observed = itype.observed_statistic(x, y)
    return KernelTest(index, itype, pooled, observed)


class TestRunBatchedTests:
    def test_mean_parity_with_legacy_batch(self, prng):
        batch = SharedPermutations(30, 40, 150, prng)
        x, y = prng.normal(4, 1, 30), prng.normal(0, 1, 40)
        legacy = batch.mean_greater(x, y)
        (got,) = run_batched_tests(batch, [_plan(MEAN_GREATER, batch, x, y)])
        assert got[0] == 0
        assert got[1].p_value == legacy.p_value

    def test_variance_parity_with_legacy_batch(self, prng):
        batch = SharedPermutations(25, 25, 150, prng)
        x, y = prng.normal(0, 5, 25), prng.normal(0, 1, 25)
        legacy = batch.variance_greater(x, y)
        (got,) = run_batched_tests(batch, [_plan(VARIANCE_GREATER, batch, x, y)])
        assert got[1].p_value == legacy.p_value

    def test_many_tests_one_batch(self, prng):
        """Several measures share one batch; results keep their slots."""
        batch = SharedPermutations(20, 20, 99, prng)
        plans, expected = [], {}
        for i in range(6):
            x, y = prng.normal(i, 1, 20), prng.normal(0, 1, 20)
            itype = MEAN_GREATER if i % 2 == 0 else VARIANCE_GREATER
            plans.append(_plan(itype, batch, x, y, index=i))
            expected[i] = (
                batch.mean_greater(x, y) if i % 2 == 0 else batch.variance_greater(x, y)
            ).p_value
        results = dict(run_batched_tests(batch, plans))
        assert {i: r.p_value for i, r in results.items()} == expected

    def test_non_moment_type_falls_back(self, prng):
        """Median-greater has no moment form; the kernel delegates to it."""
        batch = SharedPermutations(15, 15, 60, prng)
        x = prng.normal(2, 1, 15)
        y = prng.normal(0, 1, 15)
        legacy = MEDIAN_GREATER.test(batch, x, y)
        (got,) = run_batched_tests(batch, [_plan(MEDIAN_GREATER, batch, x, y)])
        assert got[1].p_value == legacy.p_value

    def test_slicing_preserves_results_and_checkpoints(self, prng):
        """More moment rows than MAX_STACK_ROWS streams through in slices."""
        n_tests = MAX_STACK_ROWS + 10  # order-1 tests: forces at least 2 slices
        batch = SharedPermutations(10, 10, 50, prng)
        plans, expected = [], []
        for i in range(n_tests):
            x, y = prng.normal(1, 1, 10), prng.normal(0, 1, 10)
            plans.append(_plan(MEAN_GREATER, batch, x, y, index=i))
            expected.append(batch.mean_greater(x, y).p_value)
        ticks, progressed = [], []
        results = dict(
            run_batched_tests(
                batch, plans,
                checkpoint=lambda: ticks.append(1),
                progress=progressed.append,
            )
        )
        assert [results[i].p_value for i in range(n_tests)] == expected
        assert len(ticks) >= 2            # one per GEMM slice
        assert sum(progressed) == n_tests  # every test reported exactly once

    def test_tie_parity_with_large_magnitude_measures(self, prng):
        """Exact ties at 1e6 scale: GEMM-vs-gather ulp noise must not flip
        the extreme count (the tie slack scales with the statistic)."""
        batch = SharedPermutations(40, 1, 200, prng)
        x = prng.normal(2.0e6, 1.5e5, 40)
        y = np.array([1.1e6])
        legacy = batch.mean_greater(x, y)
        (got,) = run_batched_tests(batch, [_plan(MEAN_GREATER, batch, x, y)])
        # n_y == 1 makes every permutation keeping y fixed an exact tie.
        assert got[1].p_value == legacy.p_value

    def test_kernel_counters(self, prng):
        batch = SharedPermutations(10, 10, 50, prng)
        x, y = prng.normal(1, 1, 10), prng.normal(0, 1, 10)
        with obs.capture() as (_, metrics):
            run_batched_tests(batch, [_plan(MEAN_GREATER, batch, x, y)])
            snap = metrics.snapshot()
        assert snap["counters"]["stats.kernel_batches"] == 1
        assert snap["counters"]["stats.permutation_tests"] == 1


@pytest.fixture
def planted():
    rng = derive_rng(4242, "planted")
    n = 450
    g = rng.choice(["g0", "g1", "g2"], n)
    other = rng.choice(["o0", "o1"], n)
    m1 = rng.normal(50, 5, n) + np.where(g == "g1", 30.0, 0.0)
    m2 = rng.normal(0, 1, n) * np.where(g == "g2", 5.0, 1.0)
    return table_from_arrays({"g": g, "other": other}, {"m1": m1, "m2": m2})


def _tested_tuples(table, config):
    tested = run_significance_tests(table, enumerate_candidates(table), config)
    return [
        (t.candidate.key, t.statistic, t.p_value, t.p_adjusted) for t in tested
    ]


class TestKernelParityEndToEnd:
    """The config switch must not change a single tested insight."""

    def test_batched_equals_legacy(self, planted):
        batched = _tested_tuples(planted, SignificanceConfig(kernel="batched"))
        legacy = _tested_tuples(planted, SignificanceConfig(kernel="legacy"))
        assert batched == legacy

    def test_parity_with_fresh_batches_per_pair(self, planted):
        """share_across_pairs=False exercises the counter-derived RNG keys."""
        batched = _tested_tuples(
            planted, SignificanceConfig(kernel="batched", share_across_pairs=False)
        )
        legacy = _tested_tuples(
            planted, SignificanceConfig(kernel="legacy", share_across_pairs=False)
        )
        assert batched == legacy

    def test_parity_under_reduced_permutations(self, planted):
        """The degradation ladder's cut count agrees across kernels too."""
        cut = reduced_permutations(200, 4)
        assert cut < 200
        batched = _tested_tuples(
            planted, SignificanceConfig(kernel="batched", n_permutations=cut)
        )
        legacy = _tested_tuples(
            planted, SignificanceConfig(kernel="legacy", n_permutations=cut)
        )
        assert batched == legacy

    def test_parity_with_median_extension_type(self, planted):
        from repro.insights import CandidateInsight

        candidates = [
            CandidateInsight("m1", "g", "g1", "g0", "D"),
            CandidateInsight("m1", "g", "g1", "g2", "M"),
            CandidateInsight("m2", "g", "g2", "g0", "V"),
        ]
        batched = run_significance_tests(
            planted, candidates, SignificanceConfig(kernel="batched")
        )
        legacy = run_significance_tests(
            planted, candidates, SignificanceConfig(kernel="legacy")
        )
        assert [(t.candidate.key, t.p_value) for t in batched] == [
            (t.candidate.key, t.p_value) for t in legacy
        ]
