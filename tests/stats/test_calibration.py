"""Statistical calibration: the pipeline must not manufacture insights.

These tests feed *null* data (no real effects) through the significance
machinery and assert the false-discovery behaviour the paper's design
(permutation tests + BH) promises.
"""

import pytest

from repro.insights import SignificanceConfig, enumerate_candidates, run_significance_tests
from repro.relational import table_from_arrays
from repro.stats import derive_rng


@pytest.fixture(scope="module")
def null_table():
    rng = derive_rng(4321, "calibration")
    n = 600
    return table_from_arrays(
        {
            "a": rng.choice([f"a{i}" for i in range(6)], n),
            "b": rng.choice([f"b{i}" for i in range(4)], n),
        },
        {"m1": rng.normal(0, 1, n), "m2": rng.gamma(2.0, 1.0, n)},
    )


class TestNullCalibration:
    def test_bh_kills_null_discoveries(self, null_table):
        tested = run_significance_tests(null_table, enumerate_candidates(null_table))
        significant = [t for t in tested if t.is_significant()]
        # A handful can survive by chance; anywhere near 5% of tests means
        # the correction is broken.
        assert len(significant) <= max(2, 0.01 * len(tested))

    def test_uncorrected_rate_near_alpha(self, null_table):
        config = SignificanceConfig(apply_bh=False)
        tested = run_significance_tests(null_table, enumerate_candidates(null_table), config)
        rate = sum(1 for t in tested if t.is_significant()) / len(tested)
        # One-sided tests oriented toward the observed direction roughly
        # double the nominal 5% level; it must stay in that ballpark and
        # far above the BH-corrected level.
        assert 0.01 < rate < 0.25

    def test_full_pipeline_on_null_data_yields_few_queries(self, null_table):
        from repro.generation import GenerationConfig, generate_comparison_queries

        outcome = generate_comparison_queries(null_table, GenerationConfig())
        assert outcome.counters["insights_significant"] <= max(
            2, 0.01 * outcome.counters["insights_tested"]
        )
