"""The stable high-level API: ``repro.Session`` and ``repro.generate_notebook``.

This module is the supported integration surface.  Everything else in the
package is importable, but only this facade (plus the config objects it
consumes) carries a compatibility promise across versions.

One call::

    import repro

    run = repro.generate_notebook("mydata.csv", out="mydata.ipynb")

Several runs over one dataset — the :class:`Session` owns the loaded
:class:`~repro.relational.table.Table`, its cross-stage aggregate cache,
one execution backend, and the observability stack, so repeated runs reuse
all of them::

    config = repro.ReproConfig(budget=8).with_parallel(workers=4)
    with repro.Session("mydata.csv", config=config) as session:
        run = session.generate()
        session.write_notebook(run, "mydata.ipynb")
        print(run.report.summary_lines())

Every run goes through the resilient controller
(:func:`repro.runtime.resilient_generate`): deadlines degrade stages
instead of failing, checkpoints make runs resumable, and the attached
:class:`~repro.runtime.report.RunReport` records what happened.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable

from repro import obs
from repro.config import ReproConfig
from repro.errors import ReproError
from repro.generation.pipeline import NotebookRun
from repro.notebook.cells import Notebook
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.relational import Table, read_csv

__all__ = ["Session", "generate_notebook"]

#: Process-wide run lock.  :meth:`Session.generate` and
#: :meth:`Session.render` swap the *ambient* tracer/metrics pair
#: (:func:`repro.obs.use` — module state, not thread-local), so two runs
#: from different threads would trample each other's traces even on
#: different sessions.  Every run therefore serializes on this lock; it is
#: reentrant so a render nested inside the owning thread never deadlocks.
#: The serving layer (:mod:`repro.serve`) relies on this: its executor
#: threads submit runs freely and correctness never depends on executor
#: count.
_RUN_LOCK = threading.RLock()


class Session:
    """One dataset, many runs: the owner of every long-lived resource.

    Parameters
    ----------
    source:
        A :class:`~repro.relational.table.Table`, or a CSV path
        (``str`` / :class:`~pathlib.Path`) loaded strictly.  May be
        ``None`` only to resume a checkpoint that already contains the
        generation stage (pass ``resume=`` to :meth:`generate`).
    config:
        A :class:`~repro.config.ReproConfig`; defaults honour the
        ``REPRO_*`` environment the way the CLI does.
    table_name:
        Name used in generated SQL and notebook titles; defaults to the
        CSV stem (or ``"dataset"`` for in-memory tables).

    The session owns the table (and therefore its
    :class:`~repro.relational.aggcache.AggregateCache`), one lazily
    created execution backend reused across runs, and a private
    tracer/metrics pair — concurrent runs in one process don't trample
    each other's traces.  Use it as a context manager, or call
    :meth:`close` to release the backend.

    Thread safety
    -------------
    A session may be *shared* across threads (the serving layer keeps one
    warm session per registered dataset), but runs are serialized:
    :meth:`generate` and :meth:`render` hold the session's lock plus a
    process-wide run lock for their full duration, so concurrent calls
    block until the running one finishes rather than corrupting the shared
    backend, aggregate cache, or ambient observability state.  Callers
    that would rather shed than wait can test :attr:`busy` first (advisory
    — admission control belongs in front of the session, as
    :mod:`repro.serve` does with its bounded queue).
    """

    def __init__(
        self,
        source: Table | str | Path | None,
        *,
        config: ReproConfig | None = None,
        table_name: str | None = None,
    ):
        self.config = config or ReproConfig()
        if source is None:
            self.table = None
            self.table_name = table_name or "dataset"
        elif isinstance(source, Table):
            self.table = source
            self.table_name = table_name or "dataset"
        elif isinstance(source, (str, Path)):
            path = Path(source)
            self.table = read_csv(path, strict=True)
            self.table_name = table_name or path.stem
        else:
            raise ReproError(
                f"source must be a Table or a CSV path, got {type(source).__name__}"
            )
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self._backend = None
        self._closed = False
        self._lock = threading.RLock()
        self._shared_store = None
        self._fleet = None
        if self.table is not None:
            self.table = self._materialize(self.table)

    def _materialize(self, table: Table) -> Table:
        """Move the resident table onto the configured data plane.

        Under the shared-memory plane the table's arrays are copied into
        one ``repro_*`` segment *once*; every stage of every run — and,
        in the serving layer, every concurrent job's pool — then passes
        the compact handle instead of re-pickling the data.  The segment
        is owned by this session and unlinked in :meth:`close`.
        """
        from repro.parallel.config import resolve_store_kind
        from repro.relational.store import share_table, shm_resident_bytes

        if table.storage != "heap":
            return table
        if resolve_store_kind(self.config.parallel) != "shm":
            return table
        try:
            shared = share_table(table)
        except ReproError:  # pragma: no cover - shm probe raced the share
            return table
        self._shared_store = shared._store
        self.metrics.gauge("data_plane.shm_resident_bytes").set(
            shm_resident_bytes()
        )
        return shared

    def _run_fleet(self):
        """The session's worker fleet (spawned lazily, reused per run).

        Workers are spawned once per session and amortized across the
        stats and support stages of every run; ``None`` when the config
        never uses a subprocess pool.
        """
        parallel = self.config.parallel
        if not parallel.active or parallel.backend != "processes":
            return None
        if self._fleet is None or self._fleet.closed:
            from repro.parallel import WorkerFleet

            self._fleet = WorkerFleet()
        return self._fleet

    # -- owned resources -----------------------------------------------------

    @property
    def backend(self):
        """The session's execution backend (created on first use)."""
        if self._closed:
            raise ReproError("session is closed")
        if self.table is None:
            raise ReproError("a table-less session has no execution backend")
        if self._backend is None:
            from repro.backend import create_backend

            self._backend = create_backend(self.config.backend, self.table)
        return self._backend

    @property
    def aggregate_cache(self):
        """The table's cross-stage aggregate cache."""
        return self.table.aggregate_cache()

    @property
    def busy(self) -> bool:
        """True while another thread is inside :meth:`generate`/:meth:`render`.

        Advisory only: by the time the caller acts the state may have
        changed.  Use it to *shed* work early; correctness never depends
        on it (the locks do the enforcement).
        """
        if self._lock.acquire(blocking=False):
            self._lock.release()
            return False
        return True

    @property
    def storage(self) -> str:
        """Where the resident table lives: ``"heap"`` or ``"shm"``."""
        return "heap" if self.table is None else self.table.storage

    def close(self) -> None:
        """Release the backend, the worker fleet, and the shared segment.
        Idempotent.

        Waits for a run in flight on another thread: the lock guarantees
        nothing is torn down under an active run.
        """
        with self._lock:
            if self._backend is not None:
                self._backend.close()
                self._backend = None
            if self._fleet is not None:
                self._fleet.close()
                self._fleet = None
            if self._shared_store is not None:
                self._shared_store.release()
                self._shared_store = None
            self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- runs ----------------------------------------------------------------

    def generate(
        self,
        *,
        budget: float | None = None,
        epsilon_distance: float | None = None,
        deadline_seconds: float | None = None,
        checkpoint_path: Path | None = None,
        resume=None,
        faults=None,
        policy=None,
        progress: Callable[[str], None] | None = None,
        tracer=None,
        metrics=None,
    ) -> NotebookRun:
        """Run the full pipeline under the resilient controller.

        Keyword arguments override the corresponding
        :class:`~repro.config.ReproConfig` fields for this run only.
        ``tracer``/``metrics`` redirect this run's observability into
        caller-owned instances (the serving layer passes a job's pair so
        every request owns its spans); the session's own pair is used
        otherwise.
        """
        from contextlib import nullcontext

        from repro.parallel import use_fleet
        from repro.runtime import resilient_generate

        cfg = self.config
        with self._lock, _RUN_LOCK, obs.use(
            tracer or self.tracer, metrics or self.metrics
        ):
            if self._closed:
                raise ReproError("session is closed")
            fleet = self._run_fleet()
            ambient = use_fleet(fleet) if fleet is not None else nullcontext()
            with ambient:
                return resilient_generate(
                    self.table,
                    cfg.generation,
                    budget=cfg.budget if budget is None else budget,
                    epsilon_distance=(
                        cfg.epsilon_distance if epsilon_distance is None
                        else epsilon_distance
                    ),
                    solver=cfg.solver,
                    exact_timeout=cfg.exact_timeout,
                    max_exact_queries=cfg.max_exact_queries,
                    deadline_seconds=(
                        cfg.deadline_seconds if deadline_seconds is None
                        else deadline_seconds
                    ),
                    policy=policy,
                    faults=faults,
                    checkpoint_path=checkpoint_path,
                    resume=resume,
                    progress=progress,
                    backend=self.backend if self.table is not None else None,
                )

    def render(
        self,
        run: NotebookRun,
        *,
        title: str | None = None,
        include_previews: bool = True,
        faults=None,
        tracer=None,
        metrics=None,
    ) -> Notebook:
        """Render a run as a notebook (with the render degradation ladder)."""
        from repro.runtime import resilient_render

        with self._lock, _RUN_LOCK, obs.use(
            tracer or self.tracer, metrics or self.metrics
        ):
            return resilient_render(
                run,
                self.table,
                table_name=self.table_name,
                title=title or f"Comparison notebook — {self.table_name}",
                include_previews=include_previews,
                faults=faults,
            )

    def write_notebook(
        self,
        run: NotebookRun,
        path: str | Path,
        *,
        title: str | None = None,
        include_previews: bool = True,
    ) -> Path:
        """Render ``run`` and write it as ``.ipynb``; returns the path."""
        from repro.notebook import write_ipynb

        path = Path(path)
        notebook = self.render(run, title=title, include_previews=include_previews)
        write_ipynb(notebook, path)
        return path


def generate_notebook(
    source: Table | str | Path,
    *,
    config: ReproConfig | None = None,
    out: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> NotebookRun:
    """One-call pipeline: load, generate, optionally write the notebook.

    Equivalent to a single-run :class:`Session`; pass ``out`` to also
    write the rendered ``.ipynb``.  Returns the
    :class:`~repro.generation.pipeline.NotebookRun` (inspect
    ``run.selected``, ``run.report``, ``run.to_notebook()``).
    """
    with Session(source, config=config) as session:
        run = session.generate(progress=progress)
        if out is not None:
            session.write_notebook(run, out)
        return run
