"""The stable high-level API: ``repro.Session`` and ``repro.generate_notebook``.

This module is the supported integration surface.  Everything else in the
package is importable, but only this facade (plus the config objects it
consumes) carries a compatibility promise across versions.

One call::

    import repro

    run = repro.generate_notebook("mydata.csv", out="mydata.ipynb")

Several runs over one dataset — the :class:`Session` owns the loaded
:class:`~repro.relational.table.Table`, its cross-stage aggregate cache,
one execution backend, and the observability stack, so repeated runs reuse
all of them::

    config = repro.ReproConfig(budget=8).with_parallel(workers=4)
    with repro.Session("mydata.csv", config=config) as session:
        run = session.generate()
        session.write_notebook(run, "mydata.ipynb")
        print(run.report.summary_lines())

Every run goes through the resilient controller
(:func:`repro.runtime.resilient_generate`): deadlines degrade stages
instead of failing, checkpoints make runs resumable, and the attached
:class:`~repro.runtime.report.RunReport` records what happened.
"""

from __future__ import annotations

import logging
import threading
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro import obs
from repro.config import ReproConfig
from repro.errors import ReproError
from repro.generation.pipeline import NotebookRun
from repro.notebook.cells import Notebook
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.relational import Table, read_csv

logger = logging.getLogger(__name__)

__all__ = ["Session", "generate_notebook"]

#: Process-wide run lock.  :meth:`Session.generate` and
#: :meth:`Session.render` swap the *ambient* tracer/metrics pair
#: (:func:`repro.obs.use` — module state, not thread-local), so two runs
#: from different threads would trample each other's traces even on
#: different sessions.  Every run therefore serializes on this lock; it is
#: reentrant so a render nested inside the owning thread never deadlocks.
#: The serving layer (:mod:`repro.serve`) relies on this: its executor
#: threads submit runs freely and correctness never depends on executor
#: count.
_RUN_LOCK = threading.RLock()


class Session:
    """One dataset, many runs: the owner of every long-lived resource.

    Parameters
    ----------
    source:
        A :class:`~repro.relational.table.Table`, or a CSV path
        (``str`` / :class:`~pathlib.Path`) loaded strictly.  May be
        ``None`` only to resume a checkpoint that already contains the
        generation stage (pass ``resume=`` to :meth:`generate`).
    config:
        A :class:`~repro.config.ReproConfig`; defaults honour the
        ``REPRO_*`` environment the way the CLI does.
    table_name:
        Name used in generated SQL and notebook titles; defaults to the
        CSV stem (or ``"dataset"`` for in-memory tables).

    The session owns the table (and therefore its
    :class:`~repro.relational.aggcache.AggregateCache`), one lazily
    created execution backend reused across runs, and a private
    tracer/metrics pair — concurrent runs in one process don't trample
    each other's traces.  Use it as a context manager, or call
    :meth:`close` to release the backend.

    Thread safety
    -------------
    A session may be *shared* across threads (the serving layer keeps one
    warm session per registered dataset), but runs are serialized:
    :meth:`generate` and :meth:`render` hold the session's lock plus a
    process-wide run lock for their full duration, so concurrent calls
    block until the running one finishes rather than corrupting the shared
    backend, aggregate cache, or ambient observability state.  Callers
    that would rather shed than wait can test :attr:`busy` first (advisory
    — admission control belongs in front of the session, as
    :mod:`repro.serve` does with its bounded queue).
    """

    def __init__(
        self,
        source: Table | str | Path | None,
        *,
        config: ReproConfig | None = None,
        table_name: str | None = None,
    ):
        self.config = config or ReproConfig()
        if source is None:
            self.table = None
            self.table_name = table_name or "dataset"
        elif isinstance(source, Table):
            self.table = source
            self.table_name = table_name or "dataset"
        elif isinstance(source, (str, Path)):
            path = Path(source)
            self.table = read_csv(path, strict=True)
            self.table_name = table_name or path.stem
        else:
            raise ReproError(
                f"source must be a Table or a CSV path, got {type(source).__name__}"
            )
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self._backend = None
        self._closed = False
        self._lock = threading.RLock()
        self._shared_store = None
        self._fleet = None
        # Mutation bookkeeping.  ``_state_lock`` guards the (table, backend,
        # versioner, moments, memo) tuple so :meth:`append` can swap the
        # dataset *while a run is in flight*: the run keeps working on the
        # snapshot it took at start, and the superseded backend / shared
        # segment land on ``_retired`` (closed at the next run boundary or
        # in :meth:`close`) instead of being torn down under it.
        self._state_lock = threading.Lock()
        self._retired: list = []
        self._versioner = None
        self._moments = None
        self._memo = None
        self._fleet_stale = False
        if self.table is not None:
            self.table = self._materialize(self.table)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        *,
        config: ReproConfig | None = None,
        table_name: str | None = None,
    ) -> "Session":
        """Open a session over a CSV file (strict load).

        The canonical constructor for file-backed sessions;
        ``Session(path)`` remains as a thin shim that delegates here.
        """
        return cls(Path(path), config=config, table_name=table_name)

    def _materialize(self, table: Table) -> Table:
        """Move the resident table onto the configured data plane.

        Under the shared-memory plane the table's arrays are copied into
        one ``repro_*`` segment *once*; every stage of every run — and,
        in the serving layer, every concurrent job's pool — then passes
        the compact handle instead of re-pickling the data.  The segment
        is owned by this session and unlinked in :meth:`close`.
        """
        from repro.parallel.config import resolve_store_kind
        from repro.relational.store import share_table, shm_resident_bytes

        if table.storage != "heap":
            return table
        if resolve_store_kind(self.config.parallel) != "shm":
            return table
        try:
            shared = share_table(table)
        except ReproError:  # pragma: no cover - shm probe raced the share
            return table
        self._shared_store = shared._store
        self.metrics.gauge("data_plane.shm_resident_bytes").set(
            shm_resident_bytes()
        )
        return shared

    def _run_fleet(self):
        """The session's worker fleet (spawned lazily, reused per run).

        Workers are spawned once per session and amortized across the
        stats and support stages of every run; ``None`` when the config
        never uses a subprocess pool.
        """
        parallel = self.config.parallel
        if not parallel.active or parallel.backend != "processes":
            return None
        if self._fleet is None or self._fleet.closed:
            from repro.parallel import WorkerFleet

            self._fleet = WorkerFleet()
        return self._fleet

    # -- owned resources -----------------------------------------------------

    @property
    def backend(self):
        """The session's execution backend (created on first use)."""
        with self._state_lock:
            return self._backend_locked()

    def _backend_locked(self):
        if self._closed:
            raise ReproError("session is closed")
        if self.table is None:
            raise ReproError("a table-less session has no execution backend")
        if self._backend is None:
            from repro.backend import create_backend

            self._backend = create_backend(self.config.backend, self.table)
        return self._backend

    @property
    def aggregate_cache(self):
        """The table's cross-stage aggregate cache."""
        return self.table.aggregate_cache()

    @property
    def busy(self) -> bool:
        """True while another thread is inside :meth:`generate`/:meth:`render`.

        Advisory only: by the time the caller acts the state may have
        changed.  Use it to *shed* work early; correctness never depends
        on it (the locks do the enforcement).
        """
        if self._lock.acquire(blocking=False):
            self._lock.release()
            return False
        return True

    @property
    def storage(self) -> str:
        """Where the resident table lives: ``"heap"`` or ``"shm"``."""
        return "heap" if self.table is None else self.table.storage

    # -- versioned mutation ---------------------------------------------------

    @property
    def version(self) -> str | None:
        """Content-version token of the resident table (None when table-less).

        The token is ``"<rows>-<digest>"`` over the table's decoded
        contents: two tables with identical rows share it regardless of how
        they were loaded, and :meth:`append` advances it in O(delta).
        Pass it to :meth:`generate` as ``since=`` to run incrementally, or
        to the serving layer's ``if_version`` guard for optimistic
        concurrency.
        """
        with self._state_lock:
            return self._version_locked()

    def _version_locked(self) -> str | None:
        if self.table is None:
            return None
        if self._versioner is None:
            from repro.relational.table import TableVersioner

            self._versioner = TableVersioner(self.table)
        return self._versioner.token

    def append(
        self, rows: "Mapping[str, Sequence[object]] | Sequence[Sequence[object]]"
    ) -> str:
        """Append a row block to the resident table; returns the new version.

        ``rows`` is a mapping of column name -> values, or a sequence of
        row tuples in schema order (:meth:`Table.append_block`).  The call
        is cheap and does not wait for a run in flight: the grown table is
        swapped in under the state lock, the run keeps its snapshot, and
        resources bound to the superseded version are retired and released
        at the next run boundary.

        What carries over — in O(delta), bit-identically to a cold rebuild
        over the concatenated data:

        * the version token (streaming hash fold);
        * the per-attribute :class:`~repro.relational.moments.MomentStore`;
        * every patchable :class:`AggregateCache` entry — only the groups
          the block touched are recomputed (partition-granular
          invalidation; ``cache.groups_carried`` counts the rest);
        * the last run's stats memo, so the next
          ``generate(since=...)`` re-tests only the touched pair families.
        """
        from repro.backend import incremental_backend_names
        from repro.relational.moments import MomentStore

        with self._state_lock:
            if self._closed:
                raise ReproError("session is closed")
            if self.table is None:
                raise ReproError("a table-less session cannot append rows")
            old = self.table
            old_version = self._version_locked()
            grown = old.append_block(rows)
            delta_start = old.n_rows
            self._versioner.advance(grown, delta_start)
            version = self._versioner.token
            if self._moments is None:
                # First append: one cold grouping pass per attribute over
                # the old rows; every later append advances in O(delta).
                self._moments = MomentStore.build(old, old_version)
            self._moments = self._moments.advance(grown, delta_start, version)
            patchable = incremental_backend_names()
            migration = grown.aggregate_cache().adopt(
                old.aggregate_cache(), grown, delta_start, patchable
            )
            if self.config.backend in patchable:
                self._moments.seed_cache(
                    grown.aggregate_cache(), self.config.backend
                )
            if self._backend is not None:
                self._retired.append(self._backend)
                self._backend = None
            if self._shared_store is not None:
                self._retired.append(self._shared_store)
                self._shared_store = None
            self.table = self._materialize(grown)
            self._fleet_stale = True
            self.metrics.counter("session.appends").inc()
            self.metrics.counter("session.rows_appended").inc(
                grown.n_rows - delta_start
            )
            logger.info(
                "appended %d row(s): version %s -> %s (%d cache entr%s "
                "migrated, %d dropped)",
                grown.n_rows - delta_start, old_version, version,
                migration["migrated"],
                "y" if migration["migrated"] == 1 else "ies",
                migration["dropped"],
            )
            return version

    def restore_memo(self, memo) -> None:
        """Adopt a persisted stats memo (:class:`repro.stats.delta.StatsMemo`).

        The CLI's ``--since-checkpoint`` path uses this to seed a fresh
        process with the previous run's memo; ``generate(since=memo.version)``
        then runs the statistical stage incrementally.  The caller is
        responsible for having verified that the memo's version is a row
        prefix of the resident table (``content_token(table, memo.n_rows)``);
        an unverifiable memo simply downgrades that run to a full pass.
        """
        with self._state_lock:
            self._memo = memo

    def _drain_retired(self) -> None:
        """Release resources superseded by :meth:`append`.

        Called at run boundaries (under the run locks, so nothing is in
        flight on them) and from :meth:`close`.
        """
        with self._state_lock:
            retired, self._retired = self._retired, []
        for resource in retired:
            closer = getattr(resource, "close", None) or getattr(
                resource, "release", None
            )
            if closer is not None:
                closer()

    def close(self) -> None:
        """Release the backend, the worker fleet, and the shared segment.
        Idempotent.

        Waits for a run in flight on another thread: the lock guarantees
        nothing is torn down under an active run.
        """
        with self._lock:
            self._drain_retired()
            if self._backend is not None:
                self._backend.close()
                self._backend = None
            if self._fleet is not None:
                self._fleet.close()
                self._fleet = None
            if self._shared_store is not None:
                self._shared_store.release()
                self._shared_store = None
            self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- runs ----------------------------------------------------------------

    def generate(
        self,
        *,
        budget: float | None = None,
        epsilon_distance: float | None = None,
        deadline_seconds: float | None = None,
        checkpoint_path: Path | None = None,
        resume=None,
        faults=None,
        policy=None,
        progress: Callable[[str], None] | None = None,
        tracer=None,
        metrics=None,
        since: str | None = None,
    ) -> NotebookRun:
        """Run the full pipeline under the resilient controller.

        Keyword arguments override the corresponding
        :class:`~repro.config.ReproConfig` fields for this run only.
        ``tracer``/``metrics`` redirect this run's observability into
        caller-owned instances (the serving layer passes a job's pair so
        every request owns its spans); the session's own pair is used
        otherwise.

        ``since`` is a version token from an earlier :meth:`generate` /
        :meth:`append` on this session: when the session still holds the
        stats memo of a run at that version, the statistical stage
        re-tests only the pair families touched by the rows appended
        since — and the notebook is byte-identical to a full cold run.
        When it cannot (different version, configuration changed, offline
        sampling), the run falls back to a full pass with a warning.
        """
        from contextlib import nullcontext

        from repro.parallel import use_fleet
        from repro.runtime import resilient_generate

        cfg = self.config
        with self._lock, _RUN_LOCK, obs.use(
            tracer or self.tracer, metrics or self.metrics
        ):
            if self._closed:
                raise ReproError("session is closed")
            self._drain_retired()
            fleet = self._run_fleet()
            with self._state_lock:
                table = self.table
                run_backend = self._backend_locked() if table is not None else None
                version = self._version_locked()
                memo = self._memo
                fleet_stale, self._fleet_stale = self._fleet_stale, False
            if fleet_stale and fleet is not None:
                fleet.refresh()
            incremental = None
            if since is not None:
                if memo is not None and memo.version == since:
                    from repro.stats.delta import IncrementalRequest

                    incremental = IncrementalRequest(memo)
                else:
                    logger.warning(
                        "no stats memo for version %s (have: %s); running the "
                        "statistical stage in full",
                        since, memo.version if memo is not None else "none",
                    )
            ambient = use_fleet(fleet) if fleet is not None else nullcontext()
            with ambient:
                run = resilient_generate(
                    table,
                    cfg.generation,
                    budget=cfg.budget if budget is None else budget,
                    epsilon_distance=(
                        cfg.epsilon_distance if epsilon_distance is None
                        else epsilon_distance
                    ),
                    solver=cfg.solver,
                    exact_timeout=cfg.exact_timeout,
                    max_exact_queries=cfg.max_exact_queries,
                    deadline_seconds=(
                        cfg.deadline_seconds if deadline_seconds is None
                        else deadline_seconds
                    ),
                    policy=policy,
                    faults=faults,
                    checkpoint_path=checkpoint_path,
                    resume=resume,
                    progress=progress,
                    backend=run_backend,
                    incremental=incremental,
                    version=version,
                )
            if run.stats_memo is not None:
                with self._state_lock:
                    self._memo = run.stats_memo
            return run

    def render(
        self,
        run: NotebookRun,
        *,
        title: str | None = None,
        include_previews: bool = True,
        faults=None,
        tracer=None,
        metrics=None,
    ) -> Notebook:
        """Render a run as a notebook (with the render degradation ladder)."""
        from repro.runtime import resilient_render

        with self._lock, _RUN_LOCK, obs.use(
            tracer or self.tracer, metrics or self.metrics
        ):
            return resilient_render(
                run,
                self.table,
                table_name=self.table_name,
                title=title or f"Comparison notebook — {self.table_name}",
                include_previews=include_previews,
                faults=faults,
            )

    def write_notebook(
        self,
        run: NotebookRun,
        path: str | Path,
        *,
        title: str | None = None,
        include_previews: bool = True,
    ) -> Path:
        """Render ``run`` and write it as ``.ipynb``; returns the path."""
        from repro.notebook import write_ipynb

        path = Path(path)
        notebook = self.render(run, title=title, include_previews=include_previews)
        write_ipynb(notebook, path)
        return path


def generate_notebook(
    source: Table | str | Path,
    *,
    config: ReproConfig | None = None,
    out: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> NotebookRun:
    """One-call pipeline: load, generate, optionally write the notebook.

    Equivalent to a single-run :class:`Session`; pass ``out`` to also
    write the rendered ``.ipynb``.  Returns the
    :class:`~repro.generation.pipeline.NotebookRun` (inspect
    ``run.selected``, ``run.report``, ``run.to_notebook()``).
    """
    with Session(source, config=config) as session:
        run = session.generate(progress=progress)
        if out is not None:
            session.write_notebook(run, out)
        return run
