"""The batched permutation-test kernel (mask-GEMM moment sums).

The legacy hot path evaluates each candidate insight with its own
fancy-indexed gather over the pooled sample — O(P·n) work *per test*, with
large intermediate ``(P, n)`` gather matrices.  This module restructures
the computation so one pass serves every test of a shared batch:

1. A :class:`~repro.stats.permutation.SharedPermutations` batch is turned
   into its ``(P, n)`` float64 X-membership mask **once**
   (:meth:`~repro.stats.permutation.SharedPermutations.membership_mask`).
2. The pooled value vectors of all pending tests — centered to zero mean
   (:func:`~repro.stats.permutation.center_pooled`, which keeps the
   shift-invariant statistics unchanged while making the one-pass variance
   identity numerically stable) — and, for variance-type tests, their
   element-wise squares, are stacked into one ``(R, n)`` moment matrix.
3. A single BLAS-backed product ``moments @ mask.T`` yields the X-side
   moment sums of every test under every permutation at once; Y-side sums
   come from the pooled totals (``sum(Y) = total − sum(X)``) and are never
   gathered.
4. Per-test statistics then fall out of cheap vectorized arithmetic via
   each insight type's ``statistic_from_moments`` hook, sharing the exact
   floating-point formulas with the legacy kernel
   (:func:`~repro.stats.permutation.mean_stat_from_moments`,
   :func:`~repro.stats.permutation.variance_stat_from_moments`).

Insight types that declare ``moment_order == 0`` (e.g. the median-greater
extension type) cannot be expressed as moment sums; the kernel transparently
falls back to their per-test ``test`` method on the same batch, so mixing
batchable and non-batchable types stays correct.

Selection between kernels is a config/CLI switch
(``SignificanceConfig.kernel`` / ``--stats-kernel``) defaulting from the
``REPRO_STATS_KERNEL`` environment variable — the CI matrix hook enforcing
p-value parity continuously, mirroring ``REPRO_BACKEND``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.errors import StatisticsError
from repro.stats.permutation import (
    SharedPermutations,
    TestResult,
    _one_sided,
    center_pooled,
)

__all__ = [
    "KERNEL_NAMES",
    "STATS_KERNEL_ENV_VAR",
    "KernelTest",
    "default_stats_kernel",
    "run_batched_tests",
]

#: Names of the permutation-test kernels, default first.
KERNEL_NAMES: tuple[str, ...] = ("batched", "legacy")

#: Environment variable holding the default kernel name (CI matrix hook).
STATS_KERNEL_ENV_VAR = "REPRO_STATS_KERNEL"

#: Cap on stacked moment rows per GEMM call: bounds the ``(R, n)`` stack and
#: the ``(R, P)`` product so huge pair-families stream through in slices
#: instead of materializing one enormous product.
MAX_STACK_ROWS = 256


def default_stats_kernel() -> str:
    """The process-wide default kernel: ``$REPRO_STATS_KERNEL`` or batched.

    An invalid environment value raises immediately rather than silently
    testing with the wrong kernel (the CI parity matrix relies on this).
    """
    name = os.environ.get(STATS_KERNEL_ENV_VAR, "").strip().lower()
    if not name:
        return KERNEL_NAMES[0]
    if name not in KERNEL_NAMES:
        raise StatisticsError(
            f"{STATS_KERNEL_ENV_VAR}={name!r} names no known stats kernel; "
            f"known: {KERNEL_NAMES}"
        )
    return name


@dataclass(slots=True)
class KernelTest:
    """One planned permutation test awaiting batched execution.

    Attributes
    ----------
    index:
        The caller's result slot (tests of one batch may be executed out of
        planning order; results are reassembled positionally).
    itype:
        The insight type (duck-typed: ``moment_order``,
        ``statistic_from_moments``, ``test``).
    pooled:
        NaN-free ``[x..., y...]`` concatenation whose length matches the
        batch's ``n_x + n_y``.
    observed:
        The observed (oriented, non-negative) statistic to count against.
    """

    index: int
    itype: object
    pooled: np.ndarray
    observed: float


def run_batched_tests(
    batch: SharedPermutations,
    tests: Sequence[KernelTest],
    checkpoint: Callable[[], None] | None = None,
    progress: Callable[[int], None] | None = None,
) -> list[tuple[int, TestResult]]:
    """Execute every planned test of one shared batch, batching moment types.

    Returns ``(index, result)`` pairs.  ``checkpoint`` (the resilient
    runtime's cooperative-cancellation hook) is called between GEMM slices;
    ``progress`` receives the number of tests retired per slice.
    """
    out: list[tuple[int, TestResult]] = []
    advance = progress or (lambda n: None)
    moment_tests: list[KernelTest] = []
    for planned in tests:
        if getattr(planned.itype, "moment_order", 0) > 0:
            moment_tests.append(planned)
        else:
            # Non-moment types (e.g. median-greater) keep their own
            # permutation logic; the shared batch still serves them.
            x = planned.pooled[: batch.n_x]
            y = planned.pooled[batch.n_x :]
            out.append((planned.index, planned.itype.test(batch, x, y)))
            advance(1)
    if not moment_tests:
        return out

    mask_t = batch.membership_mask().T  # (n, P), built once per batch
    chunk: list[KernelTest] = []
    chunk_rows = 0
    for planned in moment_tests:
        order = planned.itype.moment_order
        if chunk and chunk_rows + order > MAX_STACK_ROWS:
            if checkpoint is not None:
                checkpoint()
            _execute_chunk(batch, mask_t, chunk, chunk_rows, out)
            advance(len(chunk))
            chunk, chunk_rows = [], 0
        chunk.append(planned)
        chunk_rows += order
    if chunk:
        if checkpoint is not None:
            checkpoint()
        _execute_chunk(batch, mask_t, chunk, chunk_rows, out)
        advance(len(chunk))
    return out


def _execute_chunk(
    batch: SharedPermutations,
    mask_t: np.ndarray,
    chunk: list[KernelTest],
    n_rows: int,
    out: list[tuple[int, TestResult]],
) -> None:
    """One mask-GEMM slice: stack moment rows, multiply, finish the stats."""
    total = batch.n_x + batch.n_y
    rows = np.empty((n_rows, total), dtype=np.float64)
    offsets: list[int] = []
    cursor = 0
    for planned in chunk:
        offsets.append(cursor)
        # Same centering expression as the legacy kernel, so both sum the
        # bitwise-identical moment rows (see center_pooled).
        rows[cursor] = center_pooled(planned.pooled)
        if planned.itype.moment_order >= 2:
            np.multiply(rows[cursor], rows[cursor], out=rows[cursor + 1])
        cursor += planned.itype.moment_order
    with obs.span(
        "stats.kernel",
        tests=len(chunk),
        rows=n_rows,
        permutations=batch.n_permutations,
    ):
        x_sums = rows @ mask_t  # (R, P): every test's X-side moment sums
    obs.counter("stats.kernel_batches").inc()
    obs.counter("stats.permutation_tests").inc(len(chunk))
    for planned, offset in zip(chunk, offsets):
        order = planned.itype.moment_order
        sums = tuple(x_sums[offset + k] for k in range(order))
        totals = tuple(float(rows[offset + k].sum()) for k in range(order))
        permuted = planned.itype.statistic_from_moments(
            sums, totals, batch.n_x, batch.n_y
        )
        out.append((planned.index, _one_sided(planned.observed, permuted)))
