"""Deterministic random-source plumbing.

Every stochastic component of the library (permutation tests, sampling,
synthetic data, TAP instances) takes a seed or a Generator derived through
:func:`derive_rng`, so that a whole experiment is reproducible from a single
root seed while sub-streams stay statistically independent.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed used by every experiment unless overridden.
DEFAULT_SEED = 20220329  # EDBT 2022 opening day


def derive_seed(seed: int, *keys: object) -> int:
    """A stable 64-bit child seed from ``seed`` and arbitrary key parts.

    Uses BLAKE2 over the repr of the keys, so the same logical component
    always gets the same stream regardless of execution order.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(seed)).encode())
    for key in keys:
        digest.update(b"\x00")
        digest.update(repr(key).encode())
    return int.from_bytes(digest.digest(), "big")


def derive_rng(seed: int, *keys: object) -> np.random.Generator:
    """A numpy Generator for the sub-stream identified by ``keys``."""
    return np.random.default_rng(derive_seed(seed, *keys))
