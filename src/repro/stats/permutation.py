"""Permutation (resampling) tests for comparison insights.

The paper tests every insight with resampling rather than parametric tests
(Section 5.1.1), because resampling "does not assume the distributions of
the test statistics, nor does it impose samples to be large enough".  Two
test statistics are used (Table 1):

* mean-greater (type ``M``): observed ``mean(X) - mean(Y)`` against the
  null ``E[X] = E[Y]``;
* variance-greater (type ``V``): observed ``var(X) - var(Y)`` against the
  null ``var(X) = var(Y)``.

Both are evaluated one-sided (the alternative is "greater"), so the
p-value is the fraction of label permutations whose statistic is at least
the observed one.  :class:`SharedPermutations` implements the paper's key
optimization: the *same* permutations are reused for every measure (and
both insight types) of a given attribute-value pair.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import StatisticsError

logger = logging.getLogger(__name__)

#: Default number of label permutations per test.
DEFAULT_PERMUTATIONS = 200

#: Below this many permutations the add-one p-value estimator cannot fall
#: under the paper's 0.05 threshold reliably; the degradation ladder never
#: cuts past it.
MIN_USEFUL_PERMUTATIONS = 32


def reduced_permutations(n_permutations: int, factor: int = 4) -> int:
    """Cut a permutation count for deadline pressure, respecting the floor.

    Used by the resilient runtime's stats-stage degradation ladder: with
    ``(1 + #extreme) / (1 + n)`` p-values, fewer permutations coarsen the
    p-value resolution but keep the test valid, so cutting the count is a
    sound accuracy-for-time trade.
    """
    if factor < 1:
        raise StatisticsError("reduction factor must be at least 1")
    reduced = max(MIN_USEFUL_PERMUTATIONS, n_permutations // factor)
    reduced = min(reduced, n_permutations)
    if reduced != n_permutations:
        logger.debug("reduced permutation count available: %d -> %d",
                     n_permutations, reduced)
    return reduced


@dataclass(frozen=True, slots=True)
class TestResult:
    """Outcome of one hypothesis test.

    ``p_value`` uses the add-one (phipson-smyth) estimator
    ``(1 + #extreme) / (1 + #permutations)`` so it is never exactly zero.
    ``significance`` is the paper's ``sig(i) = 1 - p``.
    """

    statistic: float
    p_value: float

    @property
    def significance(self) -> float:
        return 1.0 - self.p_value


def _clean_pair(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    if x.size == 0 or y.size == 0:
        raise StatisticsError("permutation test requires non-empty samples on both sides")
    return x, y


def mean_difference(x: np.ndarray, y: np.ndarray) -> float:
    """Signed test statistic for mean-greater: ``mean(x) - mean(y)``."""
    return float(np.mean(x) - np.mean(y))


def variance_difference(x: np.ndarray, y: np.ndarray) -> float:
    """Signed test statistic for variance-greater: ``var(x) - var(y)``.

    Sample variance (ddof=1); a side with fewer than two observations has
    undefined variance and yields NaN, making the test inconclusive
    (p-value 1.0 downstream).
    """
    vx = float(np.var(x, ddof=1)) if x.size > 1 else float("nan")
    vy = float(np.var(y, ddof=1)) if y.size > 1 else float("nan")
    return vx - vy


def center_pooled(pooled: np.ndarray) -> np.ndarray:
    """The pooled sample shifted to zero mean, as both kernels require.

    Every moment-sum statistic in this module (mean difference, variance
    difference) is shift-invariant, so centering changes no result — but it
    is load-bearing for the variance path: the one-pass moment identity
    ``(sum(v^2) - sum(v)^2/n) / (n-1)`` cancels catastrophically when the
    mean magnitude dwarfs the variance (values ~1e8 with unit variance lose
    all significant digits).  On centered data ``sum(v) ~ 0`` and the
    identity is as stable as the two-pass formula.  Both kernels center the
    same array with the same expression, so parity is preserved bitwise at
    the input to the moment sums.
    """
    return pooled - pooled.mean()


def mean_stat_from_moments(
    x_sum: np.ndarray, total_sum: float, n_x: int, n_y: int
) -> np.ndarray:
    """Per-permutation mean-greater statistics from X-side first-moment sums.

    The Y side is never gathered: ``sum(Y) = total - sum(X)`` for every
    permutation of the pooled sample.  Shared by the legacy (gather-sum)
    and batched (mask-GEMM) kernels so both evaluate the exact same
    floating-point expression.  Sums must be taken over the *centered*
    pooled sample (:func:`center_pooled`); the statistic is shift-invariant
    so its value is unchanged.
    """
    return x_sum / n_x - (total_sum - x_sum) / n_y


def variance_stat_from_moments(
    x_sum: np.ndarray,
    x_sq_sum: np.ndarray,
    total_sum: float,
    total_sq_sum: float,
    n_x: int,
    n_y: int,
) -> np.ndarray:
    """Per-permutation variance-greater statistics from X-side moment sums.

    Sample variance via the moment identity
    ``var = (sum(v^2) - sum(v)^2 / n) / (n - 1)`` (ddof=1), with the Y-side
    moments derived from the pooled totals.  The identity is numerically
    safe **only on centered input**: callers must sum moments of
    :func:`center_pooled` output, or large-mean measures cancel the second
    moment away.  Callers also guarantee ``n_x, n_y >= 2`` (a smaller side
    makes the observed statistic NaN and short-circuits before any
    permutation is evaluated).
    """
    y_sum = total_sum - x_sum
    y_sq_sum = total_sq_sum - x_sq_sum
    var_x = (x_sq_sum - x_sum * x_sum / n_x) / (n_x - 1)
    var_y = (y_sq_sum - y_sum * y_sum / n_y) / (n_y - 1)
    return var_x - var_y


class SharedPermutations:
    """A reusable batch of two-sample label permutations.

    For a pooled sample of ``n_x + n_y`` rows, holds ``n_permutations``
    random partitions of the pooled indices into an X-part of size ``n_x``
    and a Y-part.  All measures of the same selection pair reuse the same
    partitions, exactly as Section 5.1.1 prescribes — which both saves time
    and makes the per-measure p-values comparable.
    """

    __slots__ = ("n_x", "n_y", "x_indices")

    def __init__(self, n_x: int, n_y: int, n_permutations: int, rng: np.random.Generator):
        if n_x <= 0 or n_y <= 0:
            raise StatisticsError("both sides of a permutation test must be non-empty")
        if n_permutations <= 0:
            raise StatisticsError("n_permutations must be positive")
        self.n_x = n_x
        self.n_y = n_y
        total = n_x + n_y
        # One shuffled index row per permutation; argsort of uniforms is the
        # standard vectorized way to draw many independent permutations.
        # Only the X side is stored: the Y side is its complement, and the
        # moment-sum kernels derive every Y-side quantity from pooled totals,
        # so the batch costs half the memory it used to.
        uniforms = rng.random((n_permutations, total))
        shuffled = np.argsort(uniforms, axis=1)
        self.x_indices = shuffled[:, :n_x].copy()
        obs.counter("stats.permutation_batches_created").inc()

    @property
    def n_permutations(self) -> int:
        return int(self.x_indices.shape[0])

    def membership_mask(self) -> np.ndarray:
        """The ``(P, n_x + n_y)`` float64 X-membership mask of the batch.

        Row ``p`` holds 1.0 at the pooled positions permutation ``p`` assigns
        to the X side and 0.0 elsewhere.  ``mask @ moments.T`` then computes
        every permutation's X-side moment sums in one BLAS call — the
        batched kernel's core product (see :mod:`repro.stats.kernel`).
        """
        mask = np.zeros((self.n_permutations, self.n_x + self.n_y), dtype=np.float64)
        np.put_along_axis(mask, self.x_indices, 1.0, axis=1)
        return mask

    def complement_indices(self) -> np.ndarray:
        """Y-side pooled indices, derived per row as the complement of X.

        Returned sorted within each row; order-insensitive consumers only
        (sums, medians, quantiles — any statistic of the Y *set*).
        """
        total = self.n_x + self.n_y
        member = np.zeros((self.n_permutations, total), dtype=bool)
        np.put_along_axis(member, self.x_indices, True, axis=1)
        rows, cols = np.nonzero(~member)
        del rows  # row-major np.nonzero already yields per-row sorted columns
        return cols.reshape(self.n_permutations, self.n_y)

    def mean_greater(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        """One-sided mean-greater test of ``x`` over ``y`` reusing the batch."""
        obs.counter("stats.permutation_tests").inc()
        x, y = self._check(x, y)
        observed = mean_difference(x, y)
        pooled = center_pooled(np.concatenate([x, y]))
        x_sum = pooled[self.x_indices].sum(axis=1)
        stats = mean_stat_from_moments(x_sum, float(pooled.sum()), self.n_x, self.n_y)
        return _one_sided(observed, stats)

    def variance_greater(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        """One-sided variance-greater test of ``x`` over ``y``."""
        obs.counter("stats.permutation_tests").inc()
        x, y = self._check(x, y)
        observed = variance_difference(x, y)
        if np.isnan(observed):
            return TestResult(observed, 1.0)
        pooled = center_pooled(np.concatenate([x, y]))
        squared = pooled * pooled
        x_sum = pooled[self.x_indices].sum(axis=1)
        x_sq_sum = squared[self.x_indices].sum(axis=1)
        stats = variance_stat_from_moments(
            x_sum, x_sq_sum, float(pooled.sum()), float(squared.sum()), self.n_x, self.n_y
        )
        return _one_sided(observed, stats)

    def _check(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x, y = _clean_pair(x, y)
        if x.size != self.n_x or y.size != self.n_y:
            raise StatisticsError(
                f"sample sizes ({x.size}, {y.size}) do not match the permutation "
                f"batch ({self.n_x}, {self.n_y}); NaNs must be removed before batching"
            )
        return x, y


def _one_sided(observed: float, permuted: np.ndarray) -> TestResult:
    if np.isnan(observed):
        return TestResult(observed, 1.0)
    # The slack absorbs summation-order noise in exact ties (a permutation
    # that reproduces the observed split must count as extreme no matter
    # which kernel summed it).  It must scale with the statistic: measures
    # of magnitude 1e6 carry ulp noise far above any absolute epsilon.
    slack = 1e-12 * max(1.0, abs(observed))
    extreme = int(np.count_nonzero(permuted >= observed - slack))
    p = (1.0 + extreme) / (1.0 + permuted.size)
    return TestResult(observed, min(1.0, p))


def permutation_mean_greater(
    x: np.ndarray,
    y: np.ndarray,
    n_permutations: int = DEFAULT_PERMUTATIONS,
    rng: np.random.Generator | None = None,
) -> TestResult:
    """Stand-alone one-sided mean-greater permutation test."""
    x, y = _clean_pair(x, y)
    rng = rng or np.random.default_rng()
    batch = SharedPermutations(x.size, y.size, n_permutations, rng)
    return batch.mean_greater(x, y)


def permutation_variance_greater(
    x: np.ndarray,
    y: np.ndarray,
    n_permutations: int = DEFAULT_PERMUTATIONS,
    rng: np.random.Generator | None = None,
) -> TestResult:
    """Stand-alone one-sided variance-greater permutation test."""
    x, y = _clean_pair(x, y)
    rng = rng or np.random.default_rng()
    batch = SharedPermutations(x.size, y.size, n_permutations, rng)
    return batch.variance_greater(x, y)
