"""Permutation (resampling) tests for comparison insights.

The paper tests every insight with resampling rather than parametric tests
(Section 5.1.1), because resampling "does not assume the distributions of
the test statistics, nor does it impose samples to be large enough".  Two
test statistics are used (Table 1):

* mean-greater (type ``M``): observed ``mean(X) - mean(Y)`` against the
  null ``E[X] = E[Y]``;
* variance-greater (type ``V``): observed ``var(X) - var(Y)`` against the
  null ``var(X) = var(Y)``.

Both are evaluated one-sided (the alternative is "greater"), so the
p-value is the fraction of label permutations whose statistic is at least
the observed one.  :class:`SharedPermutations` implements the paper's key
optimization: the *same* permutations are reused for every measure (and
both insight types) of a given attribute-value pair.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import StatisticsError

logger = logging.getLogger(__name__)

#: Default number of label permutations per test.
DEFAULT_PERMUTATIONS = 200

#: Below this many permutations the add-one p-value estimator cannot fall
#: under the paper's 0.05 threshold reliably; the degradation ladder never
#: cuts past it.
MIN_USEFUL_PERMUTATIONS = 32


def reduced_permutations(n_permutations: int, factor: int = 4) -> int:
    """Cut a permutation count for deadline pressure, respecting the floor.

    Used by the resilient runtime's stats-stage degradation ladder: with
    ``(1 + #extreme) / (1 + n)`` p-values, fewer permutations coarsen the
    p-value resolution but keep the test valid, so cutting the count is a
    sound accuracy-for-time trade.
    """
    if factor < 1:
        raise StatisticsError("reduction factor must be at least 1")
    reduced = max(MIN_USEFUL_PERMUTATIONS, n_permutations // factor)
    reduced = min(reduced, n_permutations)
    if reduced != n_permutations:
        logger.debug("reduced permutation count available: %d -> %d",
                     n_permutations, reduced)
    return reduced


@dataclass(frozen=True, slots=True)
class TestResult:
    """Outcome of one hypothesis test.

    ``p_value`` uses the add-one (phipson-smyth) estimator
    ``(1 + #extreme) / (1 + #permutations)`` so it is never exactly zero.
    ``significance`` is the paper's ``sig(i) = 1 - p``.
    """

    statistic: float
    p_value: float

    @property
    def significance(self) -> float:
        return 1.0 - self.p_value


def _clean_pair(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    if x.size == 0 or y.size == 0:
        raise StatisticsError("permutation test requires non-empty samples on both sides")
    return x, y


def mean_difference(x: np.ndarray, y: np.ndarray) -> float:
    """Signed test statistic for mean-greater: ``mean(x) - mean(y)``."""
    return float(np.mean(x) - np.mean(y))


def variance_difference(x: np.ndarray, y: np.ndarray) -> float:
    """Signed test statistic for variance-greater: ``var(x) - var(y)``.

    Sample variance (ddof=1); a side with fewer than two observations has
    undefined variance and yields NaN, making the test inconclusive
    (p-value 1.0 downstream).
    """
    vx = float(np.var(x, ddof=1)) if x.size > 1 else float("nan")
    vy = float(np.var(y, ddof=1)) if y.size > 1 else float("nan")
    return vx - vy


class SharedPermutations:
    """A reusable batch of two-sample label permutations.

    For a pooled sample of ``n_x + n_y`` rows, holds ``n_permutations``
    random partitions of the pooled indices into an X-part of size ``n_x``
    and a Y-part.  All measures of the same selection pair reuse the same
    partitions, exactly as Section 5.1.1 prescribes — which both saves time
    and makes the per-measure p-values comparable.
    """

    __slots__ = ("n_x", "n_y", "x_indices", "y_indices")

    def __init__(self, n_x: int, n_y: int, n_permutations: int, rng: np.random.Generator):
        if n_x <= 0 or n_y <= 0:
            raise StatisticsError("both sides of a permutation test must be non-empty")
        if n_permutations <= 0:
            raise StatisticsError("n_permutations must be positive")
        self.n_x = n_x
        self.n_y = n_y
        total = n_x + n_y
        # One shuffled index row per permutation; argsort of uniforms is the
        # standard vectorized way to draw many independent permutations.
        uniforms = rng.random((n_permutations, total))
        shuffled = np.argsort(uniforms, axis=1)
        self.x_indices = shuffled[:, :n_x]
        self.y_indices = shuffled[:, n_x:]
        obs.counter("stats.permutation_batches_created").inc()

    @property
    def n_permutations(self) -> int:
        return int(self.x_indices.shape[0])

    def mean_greater(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        """One-sided mean-greater test of ``x`` over ``y`` reusing the batch."""
        obs.counter("stats.permutation_tests").inc()
        x, y = self._check(x, y)
        pooled = np.concatenate([x, y])
        observed = mean_difference(x, y)
        perm_x_mean = pooled[self.x_indices].mean(axis=1)
        perm_y_mean = pooled[self.y_indices].mean(axis=1)
        return _one_sided(observed, perm_x_mean - perm_y_mean)

    def variance_greater(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        """One-sided variance-greater test of ``x`` over ``y``."""
        obs.counter("stats.permutation_tests").inc()
        x, y = self._check(x, y)
        observed = variance_difference(x, y)
        if np.isnan(observed):
            return TestResult(observed, 1.0)
        pooled = np.concatenate([x, y])
        perm_x = pooled[self.x_indices]
        perm_y = pooled[self.y_indices]
        diffs = perm_x.var(axis=1, ddof=1) - perm_y.var(axis=1, ddof=1)
        return _one_sided(observed, diffs)

    def _check(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x, y = _clean_pair(x, y)
        if x.size != self.n_x or y.size != self.n_y:
            raise StatisticsError(
                f"sample sizes ({x.size}, {y.size}) do not match the permutation "
                f"batch ({self.n_x}, {self.n_y}); NaNs must be removed before batching"
            )
        return x, y


def _one_sided(observed: float, permuted: np.ndarray) -> TestResult:
    if np.isnan(observed):
        return TestResult(observed, 1.0)
    extreme = int(np.count_nonzero(permuted >= observed - 1e-12))
    p = (1.0 + extreme) / (1.0 + permuted.size)
    return TestResult(observed, min(1.0, p))


def permutation_mean_greater(
    x: np.ndarray,
    y: np.ndarray,
    n_permutations: int = DEFAULT_PERMUTATIONS,
    rng: np.random.Generator | None = None,
) -> TestResult:
    """Stand-alone one-sided mean-greater permutation test."""
    x, y = _clean_pair(x, y)
    rng = rng or np.random.default_rng()
    batch = SharedPermutations(x.size, y.size, n_permutations, rng)
    return batch.mean_greater(x, y)


def permutation_variance_greater(
    x: np.ndarray,
    y: np.ndarray,
    n_permutations: int = DEFAULT_PERMUTATIONS,
    rng: np.random.Generator | None = None,
) -> TestResult:
    """Stand-alone one-sided variance-greater permutation test."""
    x, y = _clean_pair(x, y)
    rng = rng or np.random.default_rng()
    batch = SharedPermutations(x.size, y.size, n_permutations, rng)
    return batch.variance_greater(x, y)
