"""Statistics substrate: permutation tests, FDR correction, sampling."""

from repro.stats.corrections import benjamini_hochberg, bh_reject, bonferroni
from repro.stats.kernel import (
    KERNEL_NAMES,
    STATS_KERNEL_ENV_VAR,
    KernelTest,
    default_stats_kernel,
    run_batched_tests,
)
from repro.stats.parametric import f_variance_greater, levene_variance_greater, welch_mean_greater
from repro.stats.permutation import (
    DEFAULT_PERMUTATIONS,
    SharedPermutations,
    TestResult,
    center_pooled,
    mean_difference,
    mean_stat_from_moments,
    permutation_mean_greater,
    permutation_variance_greater,
    reduced_permutations,
    variance_difference,
    variance_stat_from_moments,
)
from repro.stats.rng import DEFAULT_SEED, derive_rng, derive_seed
from repro.stats.sampling import (
    balanced_sample_for_attribute,
    minority_preservation,
    per_attribute_balanced_samples,
    random_sample,
    random_sample_indices,
    unbalanced_sample,
    unbalanced_sample_indices,
)

__all__ = [
    "DEFAULT_PERMUTATIONS",
    "DEFAULT_SEED",
    "KERNEL_NAMES",
    "KernelTest",
    "STATS_KERNEL_ENV_VAR",
    "SharedPermutations",
    "TestResult",
    "benjamini_hochberg",
    "bh_reject",
    "bonferroni",
    "center_pooled",
    "default_stats_kernel",
    "derive_rng",
    "derive_seed",
    "f_variance_greater",
    "levene_variance_greater",
    "mean_difference",
    "mean_stat_from_moments",
    "run_batched_tests",
    "balanced_sample_for_attribute",
    "minority_preservation",
    "per_attribute_balanced_samples",
    "permutation_mean_greater",
    "permutation_variance_greater",
    "random_sample",
    "random_sample_indices",
    "reduced_permutations",
    "unbalanced_sample",
    "unbalanced_sample_indices",
    "variance_difference",
    "variance_stat_from_moments",
    "welch_mean_greater",
]
