"""Statistics substrate: permutation tests, FDR correction, sampling."""

from repro.stats.corrections import benjamini_hochberg, bh_reject, bonferroni
from repro.stats.parametric import f_variance_greater, levene_variance_greater, welch_mean_greater
from repro.stats.permutation import (
    DEFAULT_PERMUTATIONS,
    SharedPermutations,
    TestResult,
    mean_difference,
    permutation_mean_greater,
    permutation_variance_greater,
    variance_difference,
)
from repro.stats.rng import DEFAULT_SEED, derive_rng, derive_seed
from repro.stats.sampling import (
    balanced_sample_for_attribute,
    minority_preservation,
    per_attribute_balanced_samples,
    random_sample,
    random_sample_indices,
    unbalanced_sample,
    unbalanced_sample_indices,
)

__all__ = [
    "DEFAULT_PERMUTATIONS",
    "DEFAULT_SEED",
    "SharedPermutations",
    "TestResult",
    "benjamini_hochberg",
    "bh_reject",
    "bonferroni",
    "derive_rng",
    "derive_seed",
    "f_variance_greater",
    "levene_variance_greater",
    "mean_difference",
    "balanced_sample_for_attribute",
    "minority_preservation",
    "per_attribute_balanced_samples",
    "permutation_mean_greater",
    "permutation_variance_greater",
    "random_sample",
    "random_sample_indices",
    "unbalanced_sample",
    "unbalanced_sample_indices",
    "variance_difference",
    "welch_mean_greater",
]
