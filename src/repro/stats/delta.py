"""Delta-aware statistical testing: re-test only dirty pair families.

An appended row block only changes the test inputs of attribute *values*
it contains: for any other value, the row set selected by
``attribute = value`` is untouched, and a permutation batch depends only
on the two sample sizes (never on the table size), so the stored raw test
result is *bit-identical* to what a cold re-run would produce.  This
module turns that invariant into an incremental stats stage:

* :class:`StatsMemo` — the raw (pre-BH) per-family test results of a
  completed stats stage, keyed by the table-version token they were
  computed against and an :func:`incremental_config_token` fingerprint;
* :func:`plan_incremental` — given a memo and the new enumeration,
  classify every pair family as *clean* (stored results reusable) or
  *dirty* (contains a touched value, or its candidate list changed);
* :func:`merge_attribute` — splice stored clean slices and freshly
  re-tested dirty slices back into enumeration order, ready for the
  per-attribute Benjamini–Hochberg correction.

Because the merged raw sequence is element-for-element identical to a
cold run's, the corrected results — and every downstream artifact up to
the rendered notebook — are byte-identical.  ``stats.partitions_skipped``
counts the clean families that were served from the memo.

The memo serializes to JSON (:meth:`StatsMemo.to_dict`) so the CLI
checkpoint can carry it across processes for ``--since-checkpoint``.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ReproError
from repro.insights.insight import CandidateInsight
from repro.stats.permutation import TestResult

logger = logging.getLogger(__name__)

__all__ = [
    "FamilyRecord",
    "IncrementalPlan",
    "IncrementalRequest",
    "StatsMemo",
    "build_memo",
    "incremental_config_token",
    "merge_attribute",
    "plan_incremental",
    "segment_families",
    "split_families",
]

#: Version of the serialized memo format.
MEMO_VERSION = 1

PairKey = tuple[str, frozenset]


def incremental_config_token(config) -> str:
    """Fingerprint of everything that shapes raw per-family test results.

    Unlike :func:`repro.persistence.stats_config_token` this deliberately
    excludes the row count (the whole point is reuse across appends), the
    backend (tests are row-level and backend-independent), and the chunk
    size (results are chunk-invariant).  Any drift in these fields makes
    the memo silently unusable — the stage falls back to a full run.
    """
    significance = config.significance
    payload = {
        "insight_types": list(config.insight_types),
        "max_pairs_per_attribute": config.max_pairs_per_attribute,
        "sampling": (
            [config.sampling.strategy, config.sampling.rate]
            if config.sampling is not None else None
        ),
        "significance": {
            "n_permutations": significance.n_permutations,
            "threshold": significance.threshold,
            "engine": significance.engine,
            "apply_bh": significance.apply_bh,
            "share_across_pairs": significance.share_across_pairs,
            "seed": significance.seed,
            "kernel": significance.kernel,
        },
    }
    digest = hashlib.blake2s(
        json.dumps(payload, sort_keys=True).encode("utf-8"), digest_size=8
    )
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class FamilyRecord:
    """One pair family's enumeration and raw (uncorrected) test results.

    ``candidates`` is the family's slice of the enumeration (unoriented,
    in enumeration order); ``oriented`` / ``results`` the matching raw
    output of :func:`~repro.insights.significance.run_attribute_chunk`
    (candidates whose samples were unusable are absent, exactly as the
    runner dropped them).
    """

    pair_key: PairKey
    candidates: tuple[CandidateInsight, ...]
    oriented: tuple[CandidateInsight, ...]
    results: tuple[TestResult, ...]

    @property
    def values(self) -> frozenset:
        return self.pair_key[1]


def split_families(
    candidates: Sequence[CandidateInsight],
) -> list[tuple[PairKey, tuple[CandidateInsight, ...]]]:
    """Contiguous pair families of an enumeration, in order.

    Enumeration yields all candidates of a selection pair contiguously;
    this is the same boundary :func:`~repro.insights.significance
    .family_chunks` cuts at.
    """
    families: list[tuple[PairKey, tuple[CandidateInsight, ...]]] = []
    current: list[CandidateInsight] = []
    for candidate in candidates:
        if current and candidate.pair_key != current[-1].pair_key:
            families.append((current[-1].pair_key, tuple(current)))
            current = []
        current.append(candidate)
    if current:
        families.append((current[-1].pair_key, tuple(current)))
    return families


def _matches(oriented: CandidateInsight, candidate: CandidateInsight) -> bool:
    """Does this raw result belong to this candidate (orientation may flip)?"""
    return (
        oriented.measure == candidate.measure
        and oriented.type_code == candidate.type_code
        and oriented.attribute == candidate.attribute
        and {oriented.val, oriented.val_other} == {candidate.val, candidate.val_other}
    )


def segment_families(
    candidates: Sequence[CandidateInsight],
    oriented: Sequence[CandidateInsight],
    results: Sequence[TestResult],
) -> list[FamilyRecord]:
    """Cut a raw attribute result back into per-family records.

    The runner emits results in candidate order, dropping unusable
    candidates; walking both sequences in lock-step re-attributes every
    result to its family (a result can only match its own candidate —
    ``(measure, type, pair)`` is unique within an attribute).
    """
    records: list[FamilyRecord] = []
    j = 0
    for pair_key, family in split_families(candidates):
        start = j
        for candidate in family:
            if j < len(oriented) and _matches(oriented[j], candidate):
                j += 1
        records.append(
            FamilyRecord(
                pair_key, family, tuple(oriented[start:j]), tuple(results[start:j])
            )
        )
    if j != len(oriented):
        raise ReproError(
            f"raw stats results do not segment: {len(oriented) - j} orphan "
            "result(s) past the enumerated families"
        )
    return records


@dataclass(slots=True)
class StatsMemo:
    """Raw per-family results of one completed stats stage.

    Attributes
    ----------
    version:
        Content-version token of the table the results were computed on.
    n_rows:
        Row count of that table version (the delta boundary for the next
        incremental run).
    token:
        :func:`incremental_config_token` of the producing configuration.
    families:
        Per attribute, the family records in enumeration order.
    """

    version: str
    n_rows: int
    token: str
    families: dict[str, list[FamilyRecord]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready snapshot (floats round-trip exactly)."""

        def candidate_dict(c: CandidateInsight) -> dict:
            return {
                "measure": c.measure,
                "attribute": c.attribute,
                "val": c.val,
                "val_other": c.val_other,
                "type": c.type_code,
            }

        attributes = {}
        for attribute, records in self.families.items():
            attributes[attribute] = [
                {
                    "candidates": [candidate_dict(c) for c in record.candidates],
                    "oriented": [candidate_dict(c) for c in record.oriented],
                    "results": [[r.statistic, r.p_value] for r in record.results],
                }
                for record in records
            ]
        return {
            "schema_version": MEMO_VERSION,
            "version": self.version,
            "n_rows": self.n_rows,
            "token": self.token,
            "families": attributes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StatsMemo":
        version = data.get("schema_version")
        if version != MEMO_VERSION:
            raise ReproError(
                f"unsupported stats-memo version {version!r} (expected {MEMO_VERSION})"
            )

        def candidate(d: Mapping) -> CandidateInsight:
            return CandidateInsight(
                d["measure"], d["attribute"], d["val"], d["val_other"], d["type"]
            )

        families: dict[str, list[FamilyRecord]] = {}
        for attribute, records in data["families"].items():
            out = []
            for record in records:
                candidates = tuple(candidate(d) for d in record["candidates"])
                if not candidates:
                    raise ReproError("stats memo holds an empty family")
                out.append(
                    FamilyRecord(
                        candidates[0].pair_key,
                        candidates,
                        tuple(candidate(d) for d in record["oriented"]),
                        tuple(
                            TestResult(float(s), float(p)) for s, p in record["results"]
                        ),
                    )
                )
            families[attribute] = out
        return cls(data["version"], int(data["n_rows"]), data["token"], families)


def build_memo(
    version: str,
    n_rows: int,
    token: str,
    work: Sequence[tuple[str, object, list[CandidateInsight]]],
    raw: Mapping[str, tuple[Sequence[CandidateInsight], Sequence[TestResult]]],
) -> StatsMemo:
    """A memo from a completed stage's work list and raw per-attribute output."""
    families = {
        attribute: segment_families(candidates, *raw[attribute])
        for attribute, _, candidates in work
        if attribute in raw
    }
    return StatsMemo(version, n_rows, token, families)


@dataclass(frozen=True, slots=True)
class IncrementalRequest:
    """What a caller passes to run the stats stage incrementally.

    The caller (the ``Session`` facade or the CLI's ``--since-checkpoint``)
    has already verified that the memo's ``version`` names the first
    ``memo.n_rows`` rows of the current table; the stage derives the dirty
    value set from the rows past that boundary.
    """

    memo: StatsMemo


@dataclass(slots=True)
class IncrementalPlan:
    """The clean/dirty classification of one incremental stats run."""

    #: Per attribute, the new enumeration's families in order, each paired
    #: with its reusable record (clean) or ``None`` (dirty).
    order: dict[str, list[tuple[PairKey, tuple[CandidateInsight, ...], FamilyRecord | None]]]
    #: The work list restricted to dirty candidates (same shape the full
    #: stage executes — shard-able through the identical paths).
    dirty_work: list[tuple[str, object, list[CandidateInsight]]]
    skipped: int = 0
    retested: int = 0


def plan_incremental(
    memo: StatsMemo,
    work: Sequence[tuple[str, object, list[CandidateInsight]]],
    dirty_values: Mapping[str, frozenset],
    config,
) -> IncrementalPlan | None:
    """Classify every family of the new enumeration as clean or dirty.

    Returns ``None`` — caller falls back to a full run — when the memo
    cannot soundly serve this configuration: a config-token mismatch,
    offline sampling (the sample re-draws over the grown table), or
    permutation-batch sharing disabled (results then depend on chunk-local
    request order, so re-running a family subset is not result-stable).
    """
    if config.sampling is not None:
        logger.warning("incremental stats disabled: offline sampling re-draws rows")
        return None
    if not config.significance.share_across_pairs:
        logger.warning(
            "incremental stats disabled: share_across_pairs=False makes "
            "results chunk-dependent"
        )
        return None
    token = incremental_config_token(config)
    if memo.token != token:
        logger.warning(
            "incremental stats disabled: config token %s does not match the "
            "memo's %s (configuration changed since the checkpoint)",
            token, memo.token,
        )
        return None
    order: dict[str, list] = {}
    dirty_work: list[tuple[str, object, list[CandidateInsight]]] = []
    skipped = retested = 0
    for attribute, sample, candidates in work:
        stored = {
            record.pair_key: record for record in memo.families.get(attribute, [])
        }
        dirty = frozenset(dirty_values.get(attribute, frozenset()))
        entries: list = []
        dirty_candidates: list[CandidateInsight] = []
        for pair_key, family in split_families(candidates):
            record = stored.get(pair_key)
            if record is not None and record.candidates == family and not (
                pair_key[1] & dirty
            ):
                entries.append((pair_key, family, record))
                skipped += 1
            else:
                entries.append((pair_key, family, None))
                dirty_candidates.extend(family)
                retested += 1
        order[attribute] = entries
        if dirty_candidates:
            dirty_work.append((attribute, sample, dirty_candidates))
    return IncrementalPlan(order, dirty_work, skipped, retested)


def merge_attribute(
    plan: IncrementalPlan,
    attribute: str,
    dirty_raw: tuple[Sequence[CandidateInsight], Sequence[TestResult]],
) -> tuple[list[CandidateInsight], list[TestResult], list[FamilyRecord]]:
    """Splice clean and freshly re-tested families back into enumeration order.

    ``dirty_raw`` is the raw runner output over this attribute's dirty
    candidates (concatenated in enumeration order).  Returns the merged
    ``(oriented, results)`` — element-identical to a cold full run — plus
    the attribute's new family records for the next memo.
    """
    entries = plan.order.get(attribute, [])
    dirty_candidates: list[CandidateInsight] = []
    for _, family, record in entries:
        if record is None:
            dirty_candidates.extend(family)
    fresh = segment_families(dirty_candidates, *dirty_raw)
    fresh_by_key = {record.pair_key: record for record in fresh}
    oriented: list[CandidateInsight] = []
    results: list[TestResult] = []
    records: list[FamilyRecord] = []
    for pair_key, family, record in entries:
        if record is None:
            record = fresh_by_key[pair_key]
        oriented.extend(record.oriented)
        results.extend(record.results)
        records.append(record)
    return oriented, results, records
