"""Parametric counterparts of the permutation tests.

The paper chooses resampling over parametric testing (Section 5.1.1); these
scipy-backed tests exist as a faster alternative engine and as the
comparison arm of the permutation-vs-parametric ablation benchmark.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import StatisticsError
from repro.stats.permutation import TestResult, mean_difference, variance_difference


def _clean_pair(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    x = x[~np.isnan(x)]
    y = y[~np.isnan(y)]
    if x.size == 0 or y.size == 0:
        raise StatisticsError("parametric test requires non-empty samples on both sides")
    return x, y


def welch_mean_greater(x: np.ndarray, y: np.ndarray) -> TestResult:
    """One-sided Welch t-test of ``mean(x) > mean(y)`` (unequal variances)."""
    x, y = _clean_pair(x, y)
    if x.size < 2 or y.size < 2:
        return TestResult(mean_difference(x, y), 1.0)
    if np.var(x) == 0 and np.var(y) == 0:
        # Degenerate: constant samples; fall back on a direct comparison.
        diff = mean_difference(x, y)
        return TestResult(diff, 0.0 if diff > 0 else 1.0)
    result = scipy_stats.ttest_ind(x, y, equal_var=False, alternative="greater")
    return TestResult(mean_difference(x, y), float(result.pvalue))


def f_variance_greater(x: np.ndarray, y: np.ndarray) -> TestResult:
    """One-sided F-test of ``var(x) > var(y)``.

    The classical variance-ratio test; sensitive to non-normality, which is
    exactly why the paper prefers resampling — the ablation quantifies the
    difference.
    """
    x, y = _clean_pair(x, y)
    if x.size < 2 or y.size < 2:
        return TestResult(variance_difference(x, y), 1.0)
    vx = float(np.var(x, ddof=1))
    vy = float(np.var(y, ddof=1))
    if vy == 0:
        p = 0.0 if vx > 0 else 1.0
        return TestResult(vx - vy, p)
    ratio = vx / vy
    p = float(scipy_stats.f.sf(ratio, x.size - 1, y.size - 1))
    return TestResult(vx - vy, p)


def levene_variance_greater(x: np.ndarray, y: np.ndarray) -> TestResult:
    """One-sided Brown–Forsythe (median-centred Levene) variance test.

    More robust to non-normality than the F-test.  The two-sided Levene
    p-value is halved and directed by the sign of the observed variance
    difference.
    """
    x, y = _clean_pair(x, y)
    if x.size < 2 or y.size < 2:
        return TestResult(variance_difference(x, y), 1.0)
    diff = variance_difference(x, y)
    try:
        _, two_sided = scipy_stats.levene(x, y, center="median")
    except ValueError:
        return TestResult(diff, 1.0)
    if np.isnan(two_sided):
        return TestResult(diff, 1.0)
    p = two_sided / 2.0 if diff > 0 else 1.0 - two_sided / 2.0
    return TestResult(diff, float(min(1.0, max(0.0, p))))
