"""Offline sampling strategies for speeding up the statistical tests.

Section 5.1.2 of the paper defines two strategies:

* **random-sampling** — uniform row sampling at a given rate;
* **unbalanced-sampling** — "samples each of the n categorical attributes
  independently.  It seeks to balance the number of tuples per attribute
  value, avoiding that very selective values be under-represented."

Our unbalanced implementation allocates each categorical attribute an equal
share of the row budget, splits that share evenly across the attribute's
values (a balanced / equal-quota stratified draw), and returns the union of
the selected row ids.  Minority attribute values therefore survive at much
lower rates than under uniform sampling, which is the property Figures 6
and 9 attribute the strategy's advantage to.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.relational.table import Table


def _check_rate(rate: float) -> None:
    if not 0 < rate <= 1:
        raise SamplingError(f"sampling rate must be in (0, 1], got {rate}")


def random_sample_indices(n_rows: int, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Uniform sample of ``ceil(rate * n_rows)`` distinct row ids, sorted."""
    _check_rate(rate)
    if n_rows == 0:
        raise SamplingError("cannot sample an empty relation")
    size = max(1, int(round(rate * n_rows)))
    chosen = rng.choice(n_rows, size=min(size, n_rows), replace=False)
    return np.sort(chosen)


def random_sample(table: Table, rate: float, rng: np.random.Generator) -> Table:
    """The paper's *random-sampling* strategy."""
    return table.take(random_sample_indices(table.n_rows, rate, rng))


def unbalanced_sample_indices(table: Table, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Row ids of the paper's *unbalanced-sampling* strategy, sorted.

    Per categorical attribute: budget ``rate * n / n_attrs`` rows, split in
    equal quotas over the attribute's values; values with fewer rows than
    their quota contribute everything they have, and the slack is
    redistributed to the remaining values (largest first).  The final
    sample is the union over attributes (duplicates removed), so its size
    is at most ``rate * n`` but can be smaller after deduplication.
    """
    _check_rate(rate)
    n = table.n_rows
    if n == 0:
        raise SamplingError("cannot sample an empty relation")
    attributes = table.schema.categorical_names
    if not attributes:
        return random_sample_indices(n, rate, rng)
    budget_per_attribute = max(1, int(round(rate * n / len(attributes))))
    selected: set[int] = set()
    for name in attributes:
        column = table.categorical_column(name)
        groups: dict[int, np.ndarray] = {}
        order = np.argsort(column.codes, kind="stable")
        codes_sorted = column.codes[order]
        boundaries = np.flatnonzero(np.diff(codes_sorted)) + 1
        for chunk in np.split(order, boundaries):
            groups[int(column.codes[chunk[0]])] = chunk
        selected.update(_balanced_draw(groups, budget_per_attribute, rng))
    return np.array(sorted(selected), dtype=np.int64)


def _balanced_draw(
    groups: dict[int, np.ndarray], budget: int, rng: np.random.Generator
) -> list[int]:
    """Draw ~``budget`` rows with equal per-group quotas and redistribution."""
    remaining = dict(groups)
    chosen: list[int] = []
    budget_left = budget
    # Iteratively: equal quota for the groups still able to give rows; groups
    # smaller than the quota are exhausted and the loop redistributes.
    while budget_left > 0 and remaining:
        quota = max(1, budget_left // len(remaining))
        exhausted: list[int] = []
        for code, rows in list(remaining.items()):
            take = min(quota, rows.size, budget_left)
            if take <= 0:
                break
            picked = rng.choice(rows, size=take, replace=False)
            chosen.extend(int(i) for i in picked)
            budget_left -= take
            if take >= rows.size:
                exhausted.append(code)
            else:
                keep = np.setdiff1d(rows, picked, assume_unique=True)
                remaining[code] = keep
        for code in exhausted:
            del remaining[code]
        if not exhausted and quota >= 1 and budget_left > 0:
            # Every group gave a full quota; next round gives the rest.
            continue
        if not exhausted and budget_left <= 0:
            break
    return chosen


def unbalanced_sample(table: Table, rate: float, rng: np.random.Generator) -> Table:
    """The paper's *unbalanced-sampling* strategy (union form)."""
    return table.take(unbalanced_sample_indices(table, rate, rng))


def balanced_sample_for_attribute(
    table: Table, attribute: str, rate: float, rng: np.random.Generator
) -> Table:
    """Balanced sample of ``rate * n`` rows w.r.t. one attribute's values.

    This is the per-attribute form of unbalanced sampling ("samples each
    of the n categorical attributes independently"): the tests of
    attribute ``B`` run on a sample where every value of ``B`` holds a
    near-equal share of the budget, so minority values keep enough rows
    for their insights to remain testable.
    """
    _check_rate(rate)
    n = table.n_rows
    if n == 0:
        raise SamplingError("cannot sample an empty relation")
    column = table.categorical_column(attribute)
    groups: dict[int, np.ndarray] = {}
    order = np.argsort(column.codes, kind="stable")
    codes_sorted = column.codes[order]
    boundaries = np.flatnonzero(np.diff(codes_sorted)) + 1
    for chunk in np.split(order, boundaries):
        code = int(column.codes[chunk[0]])
        if code >= 0:
            groups[code] = chunk
    budget = max(1, int(round(rate * n)))
    chosen = _balanced_draw(groups, budget, rng)
    return table.take(np.array(sorted(chosen), dtype=np.int64))


def per_attribute_balanced_samples(
    table: Table, rate: float, rng: np.random.Generator
) -> dict[str, Table]:
    """One balanced sample per categorical attribute (Section 5.1.2)."""
    return {
        name: balanced_sample_for_attribute(table, name, rate, rng)
        for name in table.schema.categorical_names
    }


def offline_test_sources(
    source, spec, seed: int
) -> "Table | dict[str, Table]":
    """Resolve an offline-sampling spec to the statistical tests' input.

    ``source`` is a :class:`Table` or an execution backend (anything with a
    ``.scan()`` returning the base rows); ``spec`` a
    :class:`~repro.generation.config.SamplingSpec` or None (no sampling —
    the tests run on the full relation).  Returns one shared table
    (``None`` spec or the *random* strategy) or a mapping attribute →
    balanced sample (the *unbalanced* strategy).  The RNG is derived from
    ``seed`` exactly as the generator always did, so sampled rows are
    backend-independent.
    """
    from repro.stats.rng import derive_rng

    table = source if isinstance(source, Table) else source.scan()
    if spec is None:
        return table
    rng = derive_rng(seed, "offline-sample", spec.strategy)
    if spec.strategy == "random":
        return random_sample(table, spec.rate, rng)
    return per_attribute_balanced_samples(table, spec.rate, rng)


def minority_preservation(table: Table, sample: Table, attribute: str) -> float:
    """Fraction of ``attribute``'s values that survive into ``sample``.

    Diagnostic used by the Figure 6 discussion: unbalanced sampling keeps
    more of the dataset's diversity (values preserved) at equal rates.
    """
    original = set(table.categorical_column(attribute).values())
    kept = set(sample.categorical_column(attribute).values())
    if not original:
        raise SamplingError(f"attribute {attribute!r} has no values")
    return len(kept & original) / len(original)
