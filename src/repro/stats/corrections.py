"""Multiple-testing corrections.

The paper corrects permutation p-values with the Benjamini–Hochberg FDR
procedure (Section 5.1.1, citing Benjamini & Hochberg 1995).  The step-up
implementation below returns monotone adjusted p-values clipped to [0, 1].
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import StatisticsError


def benjamini_hochberg(p_values: Sequence[float]) -> np.ndarray:
    """Benjamini–Hochberg adjusted p-values (a.k.a. q-values).

    ``adjusted[i] = min_{j : p_(j) >= p_(i)} ( p_(j) * m / rank(j) )`` with
    the usual running-minimum from the largest p-value down.  Rejecting all
    hypotheses with ``adjusted <= alpha`` controls the FDR at ``alpha``.
    """
    p = np.asarray(list(p_values), dtype=np.float64)
    if p.ndim != 1:
        raise StatisticsError("benjamini_hochberg expects a 1-D sequence of p-values")
    if p.size == 0:
        return p.copy()
    if np.any(np.isnan(p)) or np.any(p < 0) or np.any(p > 1):
        raise StatisticsError("p-values must lie in [0, 1] and not be NaN")
    m = p.size
    order = np.argsort(p, kind="stable")
    ranked = p[order] * m / np.arange(1, m + 1)
    # Running minimum from the largest rank downward enforces monotonicity.
    adjusted_sorted = np.minimum.accumulate(ranked[::-1])[::-1]
    adjusted_sorted = np.clip(adjusted_sorted, 0.0, 1.0)
    adjusted = np.empty(m, dtype=np.float64)
    adjusted[order] = adjusted_sorted
    return adjusted


def bh_reject(p_values: Sequence[float], alpha: float = 0.05) -> np.ndarray:
    """Boolean rejection mask of the BH procedure at FDR level ``alpha``."""
    if not 0 < alpha < 1:
        raise StatisticsError(f"alpha must be in (0, 1), got {alpha}")
    return benjamini_hochberg(p_values) <= alpha


def bonferroni(p_values: Sequence[float]) -> np.ndarray:
    """Bonferroni-adjusted p-values (for the correction ablation)."""
    p = np.asarray(list(p_values), dtype=np.float64)
    if np.any(np.isnan(p)) or np.any(p < 0) or np.any(p > 1):
        raise StatisticsError("p-values must lie in [0, 1] and not be NaN")
    return np.clip(p * p.size, 0.0, 1.0)
