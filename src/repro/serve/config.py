"""Configuration of the multi-tenant serving layer.

:class:`ServeConfig` is the single knob surface of :mod:`repro.serve`:
where the server listens, how deep the admission queue may grow, how much
estimated cost may be in flight, the default per-request deadline budget,
the job retry policy, and the per-dataset circuit-breaker thresholds.
The CLI surfaces it as ``repro serve`` flags (see ``docs/serving.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.runtime.retry import RetryPolicy

__all__ = ["ServeConfig"]


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Settings of the serving layer.

    Attributes
    ----------
    host / port:
        Listen address; port 0 binds an ephemeral port (tests use this).
    max_queue_depth:
        Bound on the admission queue.  A ``POST /generate`` arriving with
        this many jobs already queued is shed with HTTP 429.
    max_inflight_cost:
        Budget on the *estimated cost* of queued plus running jobs, in
        cost units (a dataset's unit cost scales with its row count).  A
        request whose dataset would push the total past the budget is
        shed even when the queue has room — one giant dataset cannot
        starve the tenancy.
    default_deadline_seconds / max_deadline_seconds:
        Per-request deadline budget when the request names none, and the
        cap on what a request may ask for.  The budget starts at
        *submission*: time spent queued is subtracted before the run
        starts, and the remainder is wired into the runtime degradation
        ladders, so an overloaded server degrades results instead of
        timing requests out.
    executors:
        Job-executor threads.  Runs serialize on the process-wide run
        lock (see :class:`repro.api.Session`), so extra executors only
        overlap non-run work; 1 is the honest default.
    job_attempts / retry_base_delay:
        Retry policy for transient job failures (injected crashes, pool
        worker deaths): total attempts and the base backoff, fed to the
        shared :class:`~repro.runtime.retry.RetryPolicy`.
    breaker_failures / breaker_reset_seconds:
        Per-dataset circuit breaker: consecutive job failures before the
        breaker opens, and the cool-down before a half-open probe.
    max_finished_jobs:
        Terminal jobs retained for polling before the oldest are pruned.
    flight_capacity:
        Terminal-job records kept in the always-on flight recorder ring
        (``GET /debug/flight``; dumped to disk on crash/SIGTERM).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    max_queue_depth: int = 16
    max_inflight_cost: float = 64.0
    default_deadline_seconds: float = 30.0
    max_deadline_seconds: float = 300.0
    executors: int = 1
    job_attempts: int = 2
    retry_base_delay: float = 0.02
    breaker_failures: int = 3
    breaker_reset_seconds: float = 30.0
    max_finished_jobs: int = 256
    flight_capacity: int = 128

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ReproError(
                f"max_queue_depth must be at least 1, got {self.max_queue_depth}"
            )
        if self.max_inflight_cost <= 0:
            raise ReproError("max_inflight_cost must be positive")
        if self.default_deadline_seconds <= 0 or self.max_deadline_seconds <= 0:
            raise ReproError("deadline budgets must be positive")
        if self.default_deadline_seconds > self.max_deadline_seconds:
            raise ReproError(
                "default_deadline_seconds cannot exceed max_deadline_seconds"
            )
        if self.executors < 1:
            raise ReproError(f"executors must be at least 1, got {self.executors}")
        if self.job_attempts < 1:
            raise ReproError(f"job_attempts must be at least 1, got {self.job_attempts}")
        if self.retry_base_delay < 0:
            raise ReproError("retry_base_delay cannot be negative")
        if self.breaker_failures < 1:
            raise ReproError("breaker_failures must be at least 1")
        if self.breaker_reset_seconds <= 0:
            raise ReproError("breaker_reset_seconds must be positive")
        if self.max_finished_jobs < 1:
            raise ReproError("max_finished_jobs must be at least 1")
        if self.flight_capacity < 1:
            raise ReproError("flight_capacity must be at least 1")

    def retry_policy(self) -> RetryPolicy:
        """The job-attempt retry policy this config describes."""
        return RetryPolicy(
            max_attempts=self.job_attempts,
            base_delay=self.retry_base_delay,
            max_delay=max(self.retry_base_delay * 8, self.retry_base_delay),
            jitter=0.5,
        )

    def replace(self, **changes) -> "ServeConfig":
        return replace(self, **changes)
