"""Job executors: deadline budgets, retries, breaker bookkeeping.

The executor is where the robustness pieces meet on every job:

1. **Deadline budget** — the request's budget starts at submission.  Time
   spent queued is subtracted; what's left becomes the run's
   ``deadline_seconds`` and flows into the existing runtime degradation
   ladders (perm-cut → parametric, setcover → pairwise → top-k, previews
   → sql-only), so an overloaded server produces *degraded notebooks*,
   not timeouts.  A budget fully drained in the queue sheds the job
   before any work starts.
2. **Retries** — transient failures (injected crashes, pool worker
   deaths) are retried through the shared
   :func:`~repro.runtime.retry.retry_call` primitive, deadline-capped so
   retrying never outlives the request.
3. **Circuit breaker** — consecutive failures trip the dataset's breaker
   (jobs then shed with ``circuit-open`` until a half-open probe
   succeeds); any success closes it.
4. **Fault points** — ``serve.job`` kills an attempt mid-job;
   ``serve.evict`` evicts the dataset entry *while the job runs* (the
   lease keeps the session alive — the eviction race the chaos suite
   proves harmless).  Stage-level fault specs (``stats:kill`` …) pass
   through into the run's ladders unchanged.

Whatever happens, :meth:`JobExecutor._execute` leaves the job in exactly
one terminal state and returns its cost to the admission budget — the
invariant the chaos suite asserts.
"""

from __future__ import annotations

import logging
import threading

from repro.errors import (
    DeadlineExceeded,
    ReproError,
    UnknownDatasetError,
)
from repro.notebook import to_ipynb_dict
from repro.obs.metrics import MetricsRegistry
from repro.parallel.pool import WorkerCrashed
from repro.runtime.faults import FaultInjector, InjectedFault
from repro.runtime.retry import retry_call
from repro.serve.admission import AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.flight import FlightRecorder
from repro.serve.jobs import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_SHED,
    Job,
)
from repro.serve.registry import DatasetRegistry

logger = logging.getLogger(__name__)

__all__ = ["JobExecutor", "TRANSIENT_ERRORS"]

#: Failures worth a fresh attempt: injected crashes, pool worker deaths,
#: and memory pressure (the retry may land after a competing job freed
#: its working set).  Everything else fails the job immediately.
TRANSIENT_ERRORS = (InjectedFault, WorkerCrashed, MemoryError)

#: A job whose remaining budget is below this never starts a run.
MIN_RUN_BUDGET_SECONDS = 0.05

REASON_DEADLINE = "deadline-exhausted-in-queue"
REASON_CIRCUIT = "circuit-open"
REASON_SHUTDOWN = "server-shutdown"


class JobExecutor:
    """Threads that drain the admission queue into terminal job states."""

    def __init__(
        self,
        config: ServeConfig,
        registry: DatasetRegistry,
        admission: AdmissionController,
        *,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        flight: FlightRecorder | None = None,
    ):
        self._config = config
        self._registry = registry
        self._admission = admission
        self._metrics = metrics or MetricsRegistry()
        self._faults = faults or FaultInjector.none()
        self._flight = flight
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for index in range(self._config.executors):
            thread = threading.Thread(
                target=self._loop, name=f"repro-serve-exec-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop executors, then shed whatever is still queued."""
        self._stop.set()
        self._admission.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        while True:
            job = self._admission.take(timeout=0)
            if job is None:
                break
            job.finish(STATUS_SHED, shed_reason=REASON_SHUTDOWN)
            self._admission.release(job)
            self._observe(job)

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self._admission.take(timeout=0.2)
            if job is None:
                continue
            self._execute(job)

    # -- one job -------------------------------------------------------------

    def _execute(self, job: Job) -> None:
        """Run one job to a terminal state, whatever happens."""
        try:
            # The executor thread has no open span in the job's tracer,
            # so serve.execute parents to the job's serve.request root.
            with job.tracer.span("serve.execute", job=job.id):
                self._run_job(job)
        except BaseException as exc:  # noqa: BLE001 - executor must survive
            logger.exception("job %s: unexpected executor error", job.id)
            job.finish(STATUS_FAILED, error=f"internal executor error: {exc}")
        finally:
            if not job.terminal:  # belt and braces: never leave a job hung
                job.finish(STATUS_FAILED, error="executor returned without a verdict")
            self._admission.release(job)
            self._observe(job)

    def _run_job(self, job: Job) -> None:
        remaining = job.remaining_budget()
        if remaining <= MIN_RUN_BUDGET_SECONDS:
            job.finish(STATUS_SHED, shed_reason=REASON_DEADLINE)
            return

        try:
            entry = self._registry.get(job.dataset)
        except UnknownDatasetError as exc:
            job.finish(STATUS_FAILED, error=str(exc))
            return

        if not entry.breaker.allow():
            job.finish(STATUS_SHED, shed_reason=REASON_CIRCUIT)
            return

        try:
            session = entry.acquire()
        except UnknownDatasetError as exc:
            job.finish(STATUS_FAILED, error=str(exc))
            return
        try:
            # Stamp the version of the snapshot this run will actually use
            # (an append landing after this point swaps the session's table
            # but cannot touch the run's snapshot — generate() reads it
            # once under the session's state lock).
            job.dataset_version = session.version

            # The eviction-race fault point: yank the dataset out of the
            # registry *now*, while this job's lease keeps it alive.
            if self._faults.poll("serve.evict"):
                logger.warning("fault injection: evicting dataset %s mid-job",
                               job.dataset)
                self._registry.evict(job.dataset)

            job.mark_running()
            job.add_progress(
                f"started after {job.queue_seconds:.3f}s queued; "
                f"{job.remaining_budget():.3f}s of budget left"
            )

            def attempt():
                job.attempts += 1
                budget = job.remaining_budget()
                if budget <= MIN_RUN_BUDGET_SECONDS:
                    raise DeadlineExceeded(
                        f"job {job.id}: deadline budget exhausted before attempt",
                        stage="serve",
                    )
                with job.tracer.span("serve.attempt", number=job.attempts):
                    self._faults.fire("serve.job")
                    return session.generate(
                        budget=job.params.get("budget"),
                        deadline_seconds=budget,
                        faults=self._faults,
                        progress=job.add_progress,
                        tracer=job.tracer,
                        metrics=job.metrics,
                    )

            def on_retry(index: int, delay: float, exc: BaseException) -> None:
                self._metrics.counter("serve.job_retries").inc()
                job.add_progress(
                    f"attempt {index + 1} failed ({exc}); retrying in {delay:.3f}s"
                )

            try:
                run = retry_call(
                    attempt,
                    policy=self._config.retry_policy(),
                    retry_on=TRANSIENT_ERRORS,
                    on_retry=on_retry,
                )
                notebook = session.render(
                    run,
                    include_previews=bool(job.params.get("include_previews", True)),
                    faults=self._faults,
                    tracer=job.tracer,
                    metrics=job.metrics,
                )
            except (ReproError, MemoryError) as exc:
                entry.breaker.record_failure()
                job.finish(
                    STATUS_FAILED,
                    error=f"{type(exc).__name__}: {exc} "
                          f"(after {job.attempts} attempt(s))",
                )
                return

            entry.breaker.record_success()
            entry.runs += 1
            report = run.report.as_dict() if run.report is not None else None
            degraded = run.report is not None and run.report.degraded
            job.finish(
                STATUS_DEGRADED if degraded else STATUS_COMPLETED,
                report=report,
                notebook=to_ipynb_dict(notebook),
                degradations=run.report.degradations if run.report else [],
            )
        finally:
            # Fold the job's private registry into the resident session's,
            # so cross-request amortization evidence (cache.aggregate_hits
            # and friends) keeps accumulating on the dataset entry while
            # the job-scoped registry stays isolated.
            session.metrics.merge(job.metrics.export())
            entry.release()

    # -- accounting ----------------------------------------------------------

    def _observe(self, job: Job) -> None:
        self._metrics.counter(f"serve.jobs_{job.status}").inc()
        self._metrics.counter(
            "serve.jobs", {"dataset": job.dataset, "outcome": job.status}
        ).inc()
        for name, value in (
            ("serve.job_latency_seconds", job.total_seconds),
            ("serve.queue_wait_seconds", job.queue_seconds),
        ):
            self._metrics.histogram(name).observe(value)
            self._metrics.histogram(name, {"dataset": job.dataset}).observe(value)
        if self._flight is not None:
            self._flight.record(job)
