"""The HTTP surface of the serving layer (stdlib ``http.server`` only).

Endpoints (full semantics in ``docs/serving.md``):

===========================  ==============================================
``GET  /healthz``            liveness probe
``GET  /metrics``            Prometheus text exposition of server metrics
``GET  /datasets``           registry listing (rows, version, cost,
                             breaker, cache)
``POST /datasets``           register ``{"name": ..., "path": ...}``
``GET  /datasets/<name>``    one dataset's snapshot (incl. its current
                             ``version`` token)
``POST /datasets/<name>/rows``  append ``{"rows": ...}``; 200 + the new
                             dataset version (running jobs keep their
                             snapshot — the mutation is lease-safe)
``DELETE /datasets/<name>``  evict (lease-safe; running jobs finish)
``POST /generate``           submit a job; 202 + job id, 429 shed,
                             503 circuit open, 404 unknown dataset,
                             409 ``stale_version`` when ``if_version``
                             no longer matches the dataset
``GET  /jobs/<id>``          poll status/progress (``?wait=SECONDS`` long-
                             polls until terminal or the wait elapses)
``GET  /jobs/<id>/result``   the generated notebook (ipynb JSON)
``GET  /jobs/<id>/trace``    the job's connected span tree (Chrome-trace
                             JSON; open spans included live)
``GET  /debug/flight``       the flight recorder's ring of recent job
                             post-mortems
===========================  ==============================================

Every handler thread fires the ``serve.handler`` fault point first, so a
``REPRO_FAULTS=serve.handler:stall:2:xall`` plan makes *every* response
slow and ``serve.handler:kill`` turns one into a clean 500 — the
slow-handler chaos knob.

:class:`ReproServer` composes the subsystem: registry + admission +
job store + executors + one metrics registry, over
:class:`http.server.ThreadingHTTPServer` (one thread per connection;
job *execution* stays on the executor threads, so slow clients never
hold the pipeline).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.config import ReproConfig
from repro.errors import ReproError, ServeError, UnknownDatasetError
from repro.obs.metrics import MetricsRegistry
from repro.relational.store import shm_resident_bytes
from repro.runtime.faults import FaultInjector, InjectedFault
from repro.serve.admission import AdmissionController
from repro.serve.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from repro.serve.config import ServeConfig
from repro.serve.executor import JobExecutor
from repro.serve.flight import FlightRecorder
from repro.serve.jobs import STATUS_SHED, JobStore
from repro.serve.registry import DatasetRegistry

logger = logging.getLogger(__name__)

__all__ = ["ReproServer"]

#: Longest a ``?wait=`` long-poll may block one handler thread.
MAX_WAIT_SECONDS = 30.0

#: Circuit-breaker states as gauge values (``serve.breaker_state{dataset=}``).
BREAKER_STATE_VALUES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class ReproServer:
    """The composed serving subsystem plus its HTTP listener."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        repro_config: ReproConfig | None = None,
        faults: FaultInjector | None = None,
    ):
        self.config = config or ServeConfig()
        self.faults = faults or FaultInjector.none()
        self.metrics = MetricsRegistry()
        self.registry = DatasetRegistry(
            config=repro_config,
            metrics=self.metrics,
            breaker_failures=self.config.breaker_failures,
            breaker_reset_seconds=self.config.breaker_reset_seconds,
        )
        self.admission = AdmissionController(
            self.config.max_queue_depth,
            self.config.max_inflight_cost,
            metrics=self.metrics,
            faults=self.faults,
        )
        self.jobs = JobStore(self.config.max_finished_jobs)
        self.flight = FlightRecorder(self.config.flight_capacity)
        self.executor = JobExecutor(
            self.config, self.registry, self.admission,
            metrics=self.metrics, faults=self.faults, flight=self.flight,
        )
        self._httpd: ThreadingHTTPServer | None = None
        self._listener: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind, start executors, and serve on a background thread."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self.executor.start()
        self._listener = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._listener.start()
        logger.info("serving on http://%s:%d/", *self.address)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves port 0 to the real port."""
        if self._httpd is None:
            return (self.config.host, self.config.port)
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        """Stop accepting, drain executors, shed leftovers, evict datasets."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._listener is not None:
            self._listener.join(timeout=5.0)
            self._listener = None
        self.executor.stop()
        self.registry.close()

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- request-level operations (HTTP-independent, reused by tests) --------

    def refresh_gauges(self) -> None:
        """Refresh the point-in-time operational gauges.

        Called before every ``/metrics`` scrape so the exposition always
        carries the *current* queue depth, inflight budget utilization,
        resident-session count, and per-dataset breaker state — not
        whatever they were when the last job touched them.
        """
        self.metrics.gauge("serve.queue_depth").set(self.admission.depth)
        inflight = self.admission.inflight_cost
        self.metrics.gauge("serve.inflight_cost").set(inflight)
        self.metrics.gauge("serve.inflight_utilization").set(
            inflight / self.config.max_inflight_cost
        )
        names = self.registry.names()
        self.metrics.gauge("serve.datasets_resident").set(len(names))
        self.metrics.gauge("data_plane.shm_resident_bytes").set(
            shm_resident_bytes()
        )
        for name in names:
            try:
                entry = self.registry.get(name)
            except UnknownDatasetError:  # evicted between names() and get()
                continue
            self.metrics.gauge("serve.breaker_state", {"dataset": name}).set(
                BREAKER_STATE_VALUES.get(entry.breaker.state, -1)
            )

    def append_rows(self, dataset: str, rows) -> tuple[int, dict]:
        """Append ``rows`` to a dataset; returns ``(http_status, body)``.

        The append goes through the entry's lease, so it can never evict
        or corrupt the snapshot of a job already running — that job keeps
        the pre-append table; only later submissions see the new version.
        """
        if not isinstance(rows, (list, dict)) or not rows:
            return 400, {
                "error": "'rows' must be a non-empty list of rows or a "
                         "column->values mapping"
            }
        if isinstance(rows, list) and all(isinstance(r, dict) for r in rows):
            # JSON-friendly row-object form -> the column mapping the
            # table layer expects.
            names = set(rows[0])
            if any(set(r) != names for r in rows):
                return 400, {"error": "row objects must all share one key set"}
            rows = {name: [r[name] for r in rows] for name in names}
        try:
            entry = self.registry.get(dataset)
            before = entry.session.table.n_rows
            version = entry.append(rows)
        except UnknownDatasetError as exc:
            return 404, {"error": str(exc)}
        except (ReproError, TypeError, ValueError) as exc:
            return 400, {"error": f"cannot append rows: {exc}"}
        total = entry.session.table.n_rows
        self.metrics.counter("serve.rows_appended", {"dataset": dataset}).inc(
            max(0, total - before)
        )
        return 200, {
            "dataset": dataset,
            "version": version,
            "rows": total,
            "appended": max(0, total - before),
        }

    def submit(self, dataset: str, params: dict | None = None) -> tuple[int, dict]:
        """Submit a generate job; returns ``(http_status, body)``."""
        params = dict(params or {})
        try:
            entry = self.registry.get(dataset)
        except UnknownDatasetError as exc:
            return 404, {"error": str(exc)}

        # Optimistic concurrency: a client that planned its request against
        # a specific table version can refuse to run against a mutated one.
        if_version = params.pop("if_version", None)
        if if_version is not None:
            current = entry.session.version
            if if_version != current:
                self.metrics.counter("serve.rejected_stale_version").inc()
                return 409, {
                    "error": (
                        f"dataset {dataset!r} is at version {current}, "
                        f"not {if_version}"
                    ),
                    "code": "stale_version",
                    "version": current,
                    "requested": if_version,
                }

        if entry.breaker.state == STATE_OPEN:
            self.metrics.counter("serve.rejected_circuit_open").inc()
            return 503, {
                "error": f"dataset {dataset!r} is failing; circuit open",
                "breaker": entry.breaker.snapshot(),
                "retry_after": self.config.breaker_reset_seconds,
            }

        deadline = params.pop("deadline_seconds", None)
        if deadline is None:
            deadline = self.config.default_deadline_seconds
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            return 400, {"error": f"deadline_seconds must be a number, got {deadline!r}"}
        if deadline <= 0:
            return 400, {"error": "deadline_seconds must be positive"}
        deadline = min(deadline, self.config.max_deadline_seconds)

        job = self.jobs.create(
            dataset, deadline_seconds=deadline, params=params,
            cost=entry.cost_units,
        )
        # Stamped again by the executor when it takes its lease, so the
        # job body always carries the version of the snapshot it ran on.
        job.dataset_version = entry.session.version
        # The submit-path spans open on this (handler) thread, where the
        # job's serve.request root is still on the stack — they nest.
        with job.tracer.span("serve.submit", dataset=dataset):
            with job.tracer.span(
                "serve.admission", queue_depth=self.admission.depth
            ) as admission_span:
                admitted, reason = self.admission.try_admit(job)
                admission_span.set(admitted=admitted, reason=reason)
        if not admitted:
            job.finish(STATUS_SHED, shed_reason=reason)
            self.metrics.counter("serve.jobs_shed").inc()
            self.metrics.counter(
                "serve.jobs", {"dataset": dataset, "outcome": STATUS_SHED}
            ).inc()
            self.metrics.histogram("serve.job_latency_seconds").observe(
                job.total_seconds
            )
            self.flight.record(job)
            return 429, {
                "job": job.id, "status": job.status, "reason": reason,
                "retry_after": 1,
            }
        return 202, {
            "job": job.id,
            "status": job.status,
            "deadline_seconds": deadline,
            "queue_depth": self.admission.depth,
        }


def _make_handler(server: ReproServer):
    """A request-handler class closed over the composed server."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        # -- plumbing -------------------------------------------------------

        def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
            logger.debug("%s - %s", self.address_string(), fmt % args)

        def _json(self, code: int, body: dict, headers: dict | None = None) -> None:
            payload = json.dumps(body).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _text(self, code: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _body(self) -> dict | None:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return None
            return data if isinstance(data, dict) else None

        def _dispatch(self, method: str) -> None:
            try:
                # The slow-handler chaos knob: stalls really sleep (capped),
                # kills become a clean 500 on this one response.
                server.faults.fire("serve.handler")
                getattr(self, f"_{method}")()
            except InjectedFault:
                self._json(500, {"error": "injected handler fault"})
            except BrokenPipeError:  # client went away mid-response
                pass
            except Exception as exc:  # noqa: BLE001 - must answer something
                logger.exception("unhandled error serving %s %s",
                                 method.upper(), self.path)
                self._json(500, {"error": f"internal error: {exc}"})

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("get")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("post")

        def do_DELETE(self) -> None:  # noqa: N802
            self._dispatch("delete")

        # -- GET ------------------------------------------------------------

        def _get(self) -> None:
            parsed = urlparse(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            if parts == ["healthz"]:
                self._json(200, {"ok": True, "queue_depth": server.admission.depth})
                return
            if parts == ["metrics"]:
                server.refresh_gauges()
                self._text(200, obs.to_prometheus_text(server.metrics),
                           "text/plain; version=0.0.4")
                return
            if parts == ["datasets"]:
                self._json(200, {"datasets": server.registry.snapshot()})
                return
            if len(parts) == 2 and parts[0] == "datasets":
                try:
                    entry = server.registry.get(parts[1])
                except UnknownDatasetError as exc:
                    self._json(404, {"error": str(exc)})
                    return
                self._json(200, entry.snapshot())
                return
            if parts == ["debug", "flight"]:
                self._json(200, {
                    "capacity": server.flight.capacity,
                    "records": server.flight.snapshot(),
                })
                return
            if len(parts) >= 2 and parts[0] == "jobs":
                self._get_job(parts, parse_qs(parsed.query))
                return
            self._json(404, {"error": f"no route for GET {parsed.path}"})

        def _get_job(self, parts: list[str], query: dict) -> None:
            job = server.jobs.get(parts[1])
            if job is None:
                self._json(404, {"error": f"unknown job {parts[1]!r}"})
                return
            wait = query.get("wait")
            if wait:
                try:
                    seconds = min(float(wait[0]), MAX_WAIT_SECONDS)
                except ValueError:
                    self._json(400, {"error": "wait must be a number of seconds"})
                    return
                job.wait(max(0.0, seconds))
            if len(parts) == 2:
                self._json(200, job.to_dict())
                return
            if parts[2] == "result":
                if job.notebook is not None:
                    # The notebook body is pure ipynb JSON; the version of
                    # the snapshot it was generated from rides in a header.
                    self._json(200, job.notebook,
                               {"X-Dataset-Version": job.dataset_version or ""})
                elif not job.terminal:
                    self._json(409, job.to_dict())
                else:  # terminal without a notebook: shed or failed
                    self._json(410, job.to_dict())
                return
            if parts[2] == "trace":
                self._json(200, job.trace_doc())
                return
            self._json(404, {"error": f"no route for GET /{'/'.join(parts)}"})

        # -- POST -----------------------------------------------------------

        def _post(self) -> None:
            parts = [p for p in urlparse(self.path).path.split("/") if p]
            body = self._body()
            if body is None:
                self._json(400, {"error": "request body must be a JSON object"})
                return
            if parts == ["datasets"]:
                self._post_dataset(body)
                return
            if len(parts) == 3 and parts[0] == "datasets" and parts[2] == "rows":
                code, payload = server.append_rows(parts[1], body.get("rows"))
                self._json(code, payload)
                return
            if parts == ["generate"]:
                dataset = body.pop("dataset", None)
                if not dataset:
                    self._json(400, {"error": "a 'dataset' name is required"})
                    return
                code, payload = server.submit(dataset, body)
                headers = {}
                if code == 429:
                    headers["Retry-After"] = str(payload.get("retry_after", 1))
                elif code == 503:
                    headers["Retry-After"] = str(
                        int(server.config.breaker_reset_seconds) or 1
                    )
                self._json(code, payload, headers)
                return
            self._json(404, {"error": f"no route for POST /{'/'.join(parts)}"})

        def _post_dataset(self, body: dict) -> None:
            name, path = body.get("name"), body.get("path")
            if not name or not path:
                self._json(400, {"error": "'name' and 'path' are required"})
                return
            try:
                entry = server.registry.register(name, path)
            except ServeError as exc:
                self._json(409, {"error": str(exc)})
                return
            except (ReproError, OSError) as exc:
                self._json(400, {"error": f"cannot load {path!r}: {exc}"})
                return
            self._json(201, entry.snapshot())

        # -- DELETE ---------------------------------------------------------

        def _delete(self) -> None:
            parts = [p for p in urlparse(self.path).path.split("/") if p]
            if len(parts) == 2 and parts[0] == "datasets":
                if server.registry.evict(parts[1]):
                    self._json(200, {"evicted": parts[1]})
                else:
                    self._json(404, {"error": f"no dataset registered as {parts[1]!r}"})
                return
            self._json(404, {"error": f"no route for DELETE /{'/'.join(parts)}"})

    return Handler
