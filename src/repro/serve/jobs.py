"""Jobs and the job store: every request ends in a terminal state.

A ``POST /generate`` becomes a :class:`Job`.  The invariant the chaos
suite holds the server to: **every job reaches exactly one terminal
state** —

* ``completed`` — the run finished on its configured rungs;
* ``degraded``  — the run finished but a degradation ladder fired
  (deadline pressure, injected faults, solver fallbacks) or a shed-level
  fallback produced a partial answer;
* ``shed``      — never ran: admission rejected it, its deadline budget
  drained while queued, or the dataset's circuit was open;
* ``failed``    — ran and could not produce a notebook even after
  retries; carries an error message and the run report when one exists
  (failed-*with-report*, never a bare traceback).

``queued`` and ``running`` are the only transient states, and a
:class:`threading.Event` flips exactly when a job turns terminal, so
waiters never poll a hung request.

Progress comes from two feeds: the pipeline's ``progress`` callback
strings, and the per-stage entries of the
:class:`~repro.runtime.report.RunReport` (themselves distilled from the
obs spans of the run) once the run finishes.

Every job also owns its observability: a private
:class:`~repro.obs.spans.Tracer` rooted at a ``serve.request`` span and
a private :class:`~repro.obs.metrics.MetricsRegistry`.  The submit path,
the executor, and the Session run all record into the job's pair, so
``GET /jobs/<id>/trace`` returns one connected span tree per request —
and nothing leaks between jobs, because the pair dies with the job.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from typing import Callable

from repro.errors import ServeError
from repro.obs.export import to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = ["Job", "JobStore", "TERMINAL_STATES"]

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_DEGRADED = "degraded"
STATUS_SHED = "shed"
STATUS_FAILED = "failed"

TERMINAL_STATES = frozenset(
    {STATUS_COMPLETED, STATUS_DEGRADED, STATUS_SHED, STATUS_FAILED}
)

#: Progress lines retained per job (a ring buffer; early lines drop first).
_MAX_PROGRESS = 64


class Job:
    """One generation request's full lifecycle, thread-safe."""

    def __init__(
        self,
        job_id: str,
        dataset: str,
        *,
        deadline_seconds: float,
        params: dict | None = None,
        cost: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.id = job_id
        self.dataset = dataset
        self.deadline_seconds = deadline_seconds
        self.params = dict(params or {})
        self.cost = cost
        self._clock = clock
        self._lock = threading.Lock()
        self._done = threading.Event()
        self.status = STATUS_QUEUED
        self.submitted_at = clock()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.attempts = 0
        #: The dataset-version token of the table snapshot the run used
        #: (stamped at submit, refreshed when the executor takes its lease).
        self.dataset_version: str | None = None
        self.error: str | None = None
        self.shed_reason: str | None = None
        self.report: dict | None = None
        self.notebook: dict | None = None
        self.degradations: list[str] = []
        self._progress: deque[str] = deque(maxlen=_MAX_PROGRESS)
        # Request-scoped observability: the root span opens on the
        # submitting thread, so submit-path spans nest under it there,
        # while executor threads (empty stack) fall back to it as the
        # oldest open root — one connected tree across both.
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self._root_span = self.tracer.start(
            "serve.request", job=job_id, dataset=dataset,
            deadline_seconds=deadline_seconds,
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self._done.is_set()

    def remaining_budget(self) -> float:
        """Seconds left of the request's deadline budget (may be negative)."""
        return self.deadline_seconds - (self._clock() - self.submitted_at)

    def mark_running(self) -> None:
        with self._lock:
            self.status = STATUS_RUNNING
            self.started_at = self._clock()

    def add_progress(self, message: str) -> None:
        self._progress.append(str(message))

    def finish(
        self,
        status: str,
        *,
        error: str | None = None,
        shed_reason: str | None = None,
        report: dict | None = None,
        notebook: dict | None = None,
        degradations: list[str] | None = None,
    ) -> None:
        """Transition to a terminal state exactly once (later calls no-op)."""
        if status not in TERMINAL_STATES:
            raise ServeError(f"{status!r} is not a terminal job state")
        with self._lock:
            if self._done.is_set():
                return
            self.status = status
            self.error = error
            self.shed_reason = shed_reason
            if report is not None:
                self.report = report
            if notebook is not None:
                self.notebook = notebook
            if degradations:
                self.degradations = list(degradations)
            self.finished_at = self._clock()
            self._root_span.set(status=status)
            if shed_reason:
                self._root_span.set(shed_reason=shed_reason)
            self.tracer.finish(self._root_span, error=error)
            self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; True when the job finished within timeout."""
        return self._done.wait(timeout)

    # -- views ---------------------------------------------------------------

    @property
    def queue_seconds(self) -> float:
        end = self.started_at if self.started_at is not None else (
            self.finished_at if self.finished_at is not None else self._clock()
        )
        return max(0.0, end - self.submitted_at)

    @property
    def total_seconds(self) -> float:
        end = self.finished_at if self.finished_at is not None else self._clock()
        return max(0.0, end - self.submitted_at)

    def to_dict(self) -> dict:
        """The polling view (``GET /jobs/<id>``); never the notebook body."""
        with self._lock:
            return {
                "id": self.id,
                "dataset": self.dataset,
                "dataset_version": self.dataset_version,
                "status": self.status,
                "terminal": self._done.is_set(),
                "deadline_seconds": self.deadline_seconds,
                "queue_seconds": round(self.queue_seconds, 6),
                "total_seconds": round(self.total_seconds, 6),
                "attempts": self.attempts,
                "error": self.error,
                "shed_reason": self.shed_reason,
                "degradations": list(self.degradations),
                "progress": list(self._progress),
                "report": self.report,
                "has_notebook": self.notebook is not None,
            }

    def trace_doc(self) -> dict:
        """The job's span tree as a Chrome-trace document.

        Open spans are included live (``args.open = true``) so a
        still-running job's trace is already one connected tree —
        the debugging-a-slow-request path.
        """
        return to_chrome_trace(self.tracer, self.metrics, include_open=True)


class JobStore:
    """Thread-safe job registry with bounded terminal-job retention."""

    def __init__(self, max_finished: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        self._max_finished = max_finished
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._ids = itertools.count(1)

    def create(
        self,
        dataset: str,
        *,
        deadline_seconds: float,
        params: dict | None = None,
        cost: float = 1.0,
    ) -> Job:
        with self._lock:
            job_id = f"job-{next(self._ids):06d}"
            job = Job(
                job_id, dataset, deadline_seconds=deadline_seconds,
                params=params, cost=cost, clock=self._clock,
            )
            self._jobs[job_id] = job
            self._prune_locked()
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def _prune_locked(self) -> None:
        finished = [j for j in self._jobs.values() if j.terminal]
        overflow = len(finished) - self._max_finished
        for job in finished[:max(0, overflow)]:
            self._jobs.pop(job.id, None)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())
