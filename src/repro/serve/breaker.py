"""A per-dataset circuit breaker.

Repeated backend or worker failures against one dataset usually mean the
dataset itself is poisoned (corrupt mirror, pathological schema, OOM-sized
cardinalities) — hammering it again burns executor time every other tenant
is queueing for.  The breaker cuts that off:

* **closed** — requests flow; consecutive failures are counted (any
  success resets the count).
* **open** — after ``failure_threshold`` consecutive failures the breaker
  opens: requests are answered without running (the HTTP layer serves a
  cached degraded answer or a 503) for ``reset_seconds``.
* **half-open** — after the cool-down, exactly *one* probe request is let
  through.  Success closes the breaker; failure reopens it for another
  full cool-down.

The clock is injectable so tests drive the state machine deterministically,
and every transition is counted on the owning registry
(``serve.breaker_opened`` / ``serve.breaker_closed``).
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable

logger = logging.getLogger(__name__)

__all__ = ["CircuitBreaker"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Thread-safe closed → open → half-open failure gate."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ):
        self._threshold = max(1, failure_threshold)
        self._reset_seconds = reset_seconds
        self._clock = clock
        self.name = name
        self._lock = threading.Lock()
        self._failures = 0
        self._state = STATE_CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        """Current state (open flips to half-open once the cool-down ends)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self._reset_seconds
        ):
            self._state = STATE_HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """May a request run now?  Half-open admits exactly one probe."""
        with self._lock:
            state = self._state_locked()
            if state == STATE_CLOSED:
                return True
            if state == STATE_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            was = self._state_locked()
            self._failures = 0
            self._probe_in_flight = False
            self._state = STATE_CLOSED
            if was != STATE_CLOSED:
                logger.info("circuit %s closed after successful probe", self.name)

    def record_failure(self) -> bool:
        """Count a failure; returns True when this one opened the breaker."""
        with self._lock:
            state = self._state_locked()
            self._failures += 1
            self._probe_in_flight = False
            if state == STATE_HALF_OPEN or self._failures >= self._threshold:
                newly_open = self._state != STATE_OPEN or state == STATE_HALF_OPEN
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                if newly_open:
                    logger.warning(
                        "circuit %s opened after %d consecutive failure(s)",
                        self.name, self._failures,
                    )
                return newly_open
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "failure_threshold": self._threshold,
                "reset_seconds": self._reset_seconds,
            }
