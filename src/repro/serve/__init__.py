"""repro.serve — the fault-tolerant multi-tenant serving layer.

A zero-dependency (stdlib ``http.server`` + ``threading``) service over
the :class:`repro.api.Session` facade.  Datasets register once and stay
warm — loaded table, execution backend, cross-stage aggregate cache —
while requests come and go; the robustness machinery keeps a misbehaving
request or an overloaded box from taking the process down:

* **admission control** — a bounded queue with depth *and* estimated-cost
  budgets; overload sheds requests with HTTP 429 instead of queueing
  unboundedly (:mod:`repro.serve.admission`);
* **deadline budgets** — each request's wall-clock budget starts at
  submission and flows into the runtime degradation ladders, so pressure
  produces degraded notebooks, never hung requests
  (:mod:`repro.serve.executor`);
* **retries** — transient job failures retry through the shared
  :mod:`repro.runtime.retry` primitive, deadline-capped;
* **circuit breakers** — per-dataset; repeated failures trip to 503 until
  a half-open probe succeeds (:mod:`repro.serve.breaker`);
* **chaos hooks** — the deterministic ``REPRO_FAULTS`` injector reaches
  the server's own fault points (``serve.admission``, ``serve.handler``,
  ``serve.job``, ``serve.evict``) so every failure mode is testable.

Start one programmatically::

    from repro.serve import ReproServer, ServeConfig

    with ReproServer(ServeConfig(port=0)) as server:
        server.registry.register("covid", "covid.csv")
        code, body = server.submit("covid", {"budget": 5})
        job = server.jobs.get(body["job"])
        job.wait(timeout=60)

or from the CLI: ``repro serve --dataset covid=covid.csv``.  Full
endpoint and semantics reference: ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.app import ReproServer
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.executor import JobExecutor
from repro.serve.jobs import TERMINAL_STATES, Job, JobStore
from repro.serve.registry import DatasetEntry, DatasetRegistry

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "DatasetEntry",
    "DatasetRegistry",
    "Job",
    "JobExecutor",
    "JobStore",
    "ReproServer",
    "ServeConfig",
    "TERMINAL_STATES",
]
