"""The flight recorder: a bounded ring of recent job post-mortems.

When a served job ends badly — shed under load, failed after retries,
or the whole process dies — the polling API is often gone by the time
anyone investigates.  The flight recorder is the always-on autopsy
surface: every job that reaches a terminal state leaves one compact
record in a bounded ring (config fingerprint, terminal state, shed and
degradation reasons, the error report, and a per-span-name summary of
the job's trace), and the ring survives the job store's pruning.

Three ways out of the ring:

* ``GET /debug/flight`` returns the live ring as JSON;
* :meth:`FlightRecorder.install` hooks ``SIGTERM`` and
  ``sys.excepthook`` so an unhandled crash or a terminating signal
  dumps the ring to disk on the way down (previous handlers are
  chained, not replaced);
* ``repro flight <dump.json>`` pretty-prints a dump for post-mortems
  (see :mod:`repro.cli`).

Records are plain JSON dicts end to end — what the HTTP endpoint
serves, what the dump file holds, and what the CLI reads are the same
shape.
"""

from __future__ import annotations

import hashlib
import json
import logging
import signal
import sys
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs.export import summarize_spans

logger = logging.getLogger(__name__)

__all__ = ["FlightRecorder", "config_fingerprint", "load_dump"]

#: Ring capacity when the config names none.
DEFAULT_CAPACITY = 128

#: Dump-file schema version (bumped on breaking record changes).
DUMP_VERSION = 1

#: Span names kept per record (heaviest first).
_SPAN_SUMMARY_TOP = 12


def config_fingerprint(dataset: str, params: dict, deadline_seconds: float) -> str:
    """A short stable hash of what was asked for.

    Two jobs with the same fingerprint ran the same request shape —
    the first thing a post-mortem groups by.
    """
    payload = json.dumps(
        {"dataset": dataset, "params": params,
         "deadline_seconds": deadline_seconds},
        sort_keys=True, default=repr,
    )
    return hashlib.blake2s(payload.encode("utf-8"), digest_size=8).hexdigest()


class FlightRecorder:
    """Thread-safe bounded ring of terminal-job records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max(1, capacity))

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    # -- recording -----------------------------------------------------------

    def record(self, job) -> dict:
        """Append one job's post-mortem record; returns the record."""
        tracer = getattr(job, "tracer", None)
        record = {
            "job": job.id,
            "dataset": job.dataset,
            "status": job.status,
            "config_fingerprint": config_fingerprint(
                job.dataset, job.params, job.deadline_seconds
            ),
            "deadline_seconds": job.deadline_seconds,
            "queue_seconds": round(job.queue_seconds, 6),
            "total_seconds": round(job.total_seconds, 6),
            "attempts": job.attempts,
            "shed_reason": job.shed_reason,
            "degradations": list(job.degradations),
            "error": job.error,
            "recorded_at": time.time(),
            "spans": (
                summarize_spans(tracer, top=_SPAN_SUMMARY_TOP)
                if tracer is not None else []
            ),
        }
        with self._lock:
            self._ring.append(record)
        return record

    def snapshot(self) -> list[dict]:
        """The ring's records, oldest first."""
        with self._lock:
            return list(self._ring)

    # -- persistence ---------------------------------------------------------

    def dump(self, path: str | Path, reason: str = "manual") -> Path:
        """Write the ring to ``path`` as one JSON document."""
        path = Path(path)
        doc = {
            "version": DUMP_VERSION,
            "reason": reason,
            "dumped_at": time.time(),
            "records": self.snapshot(),
        }
        path.write_text(json.dumps(doc, indent=1), encoding="utf-8")
        return path

    def install(self, path: str | Path):
        """Dump to ``path`` on SIGTERM or an unhandled exception.

        Both hooks chain to whatever was installed before them.  The
        signal hook needs the main thread; elsewhere only the excepthook
        is installed.  Returns an ``uninstall()`` callable restoring the
        previous hooks (used by tests and clean CLI shutdown).
        """
        path = Path(path)
        previous_hook = sys.excepthook

        def crash_hook(exc_type, exc, tb):
            try:
                self.dump(path, reason=f"crash:{exc_type.__name__}")
                logger.error("flight recorder dumped to %s (unhandled %s)",
                             path, exc_type.__name__)
            except Exception:  # noqa: BLE001 - never mask the original crash
                logger.exception("flight-recorder crash dump failed")
            previous_hook(exc_type, exc, tb)

        sys.excepthook = crash_hook

        previous_signal = None
        signal_installed = False

        def on_sigterm(signum, frame):
            try:
                self.dump(path, reason="sigterm")
                logger.warning("flight recorder dumped to %s (SIGTERM)", path)
            except Exception:  # noqa: BLE001 - still honour the signal
                logger.exception("flight-recorder SIGTERM dump failed")
            if callable(previous_signal):
                previous_signal(signum, frame)
            else:
                raise SystemExit(128 + signal.SIGTERM)

        try:
            previous_signal = signal.signal(signal.SIGTERM, on_sigterm)
            signal_installed = True
        except ValueError:  # pragma: no cover - not the main thread
            logger.debug("flight recorder: no SIGTERM hook off the main thread")

        def uninstall() -> None:
            if sys.excepthook is crash_hook:
                sys.excepthook = previous_hook
            if signal_installed and signal.getsignal(signal.SIGTERM) is on_sigterm:
                signal.signal(signal.SIGTERM, previous_signal)

        return uninstall


def load_dump(path: str | Path) -> dict:
    """Read a dump file back, validating the coarse shape."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "records" not in doc:
        raise ValueError(f"{path}: not a flight-recorder dump")
    return doc
