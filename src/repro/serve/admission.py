"""Admission control: a bounded queue that sheds instead of collapsing.

Overload handling is the first robustness line of the server: an
unbounded queue converts overload into unbounded latency for *everyone*,
so admission is decided at submit time against two budgets —

* **depth** — at most ``max_queue_depth`` jobs may be queued;
* **cost** — the summed cost estimate of queued *plus running* jobs may
  not exceed ``max_inflight_cost``.  A dataset's cost unit scales with
  its row count (set by the registry at registration), so one tenant
  registering a huge table cannot monopolize the executors by volume of
  cheap-looking requests.

A rejected request is *shed*: HTTP 429 with a machine-readable reason and
``Retry-After`` — never an error page, never a hang.  The deterministic
fault point ``serve.admission`` (``REPRO_FAULTS=serve.admission:kill``)
forces a shed so chaos tests exercise the path without real overload.
"""

from __future__ import annotations

import logging
import threading
from collections import deque

from repro.obs.metrics import MetricsRegistry
from repro.runtime.faults import FaultInjector
from repro.serve.jobs import Job

logger = logging.getLogger(__name__)

__all__ = ["AdmissionController"]

#: Machine-readable shed reasons (mirrored in the job's ``shed_reason``).
REASON_QUEUE_FULL = "queue-full"
REASON_COST = "cost-budget"
REASON_INJECTED = "injected-queue-full"


class AdmissionController:
    """Bounded admission queue with depth and cost budgets."""

    def __init__(
        self,
        max_queue_depth: int,
        max_inflight_cost: float,
        *,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ):
        self._max_depth = max_queue_depth
        self._max_cost = max_inflight_cost
        self._metrics = metrics or MetricsRegistry()
        self._faults = faults or FaultInjector.none()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._queue: deque[Job] = deque()
        self._inflight_cost = 0.0
        self._closed = False

    # -- submission ----------------------------------------------------------

    def try_admit(self, job: Job) -> tuple[bool, str | None]:
        """Admit ``job`` into the queue, or shed it.

        Returns ``(True, None)`` on admission; ``(False, reason)`` on a
        shed.  Shedding never raises — the HTTP layer turns the reason
        into a 429 and the job into its ``shed`` terminal state.
        """
        self._metrics.counter("serve.requests").inc()
        reason = None
        if self._faults.poll("serve.admission"):
            reason = REASON_INJECTED
        with self._lock:
            if reason is None and len(self._queue) >= self._max_depth:
                reason = REASON_QUEUE_FULL
            if reason is None and (
                self._inflight_cost + job.cost > self._max_cost
                # A single job costlier than the whole budget must still be
                # admittable on an idle server, or it could never run.
                and self._inflight_cost > 0
            ):
                reason = REASON_COST
            if reason is None:
                self._queue.append(job)
                self._inflight_cost += job.cost
                self._metrics.counter("serve.admitted").inc()
                self._update_gauges_locked()
                self._ready.notify()
                return True, None
        self._metrics.counter("serve.shed").inc()
        self._metrics.counter(f"serve.shed_{reason.replace('-', '_')}").inc()
        logger.warning("shed job %s for dataset %s: %s", job.id, job.dataset, reason)
        return False, reason

    # -- the executor side ---------------------------------------------------

    def take(self, timeout: float | None = None) -> Job | None:
        """Pop the oldest queued job; None on timeout or after close."""
        with self._ready:
            while not self._queue and not self._closed:
                if not self._ready.wait(timeout):
                    return None
            if self._queue:
                job = self._queue.popleft()
                self._update_gauges_locked()
                return job
            return None

    def release(self, job: Job) -> None:
        """Return a job's cost to the budget once it is terminal."""
        with self._lock:
            self._inflight_cost = max(0.0, self._inflight_cost - job.cost)
            self._update_gauges_locked()

    def close(self) -> None:
        """Wake every waiting executor so shutdown never hangs."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def inflight_cost(self) -> float:
        with self._lock:
            return self._inflight_cost

    def _update_gauges_locked(self) -> None:
        self._metrics.gauge("serve.queue_depth").set(len(self._queue))
        self._metrics.gauge("serve.inflight_cost").set(self._inflight_cost)
