"""The dataset registry: warm sessions shared across requests.

The whole point of serving (vs. one process per request) is amortization:
a registered dataset owns one long-lived :class:`repro.api.Session`, so
the loaded table, the execution backend (including the sqlite mirror),
the cross-stage :class:`~repro.relational.aggcache.AggregateCache`, and
the session's metrics all stay resident and every request against that
dataset reuses them — ``cache.aggregate_hits`` across requests is the
gauge that proves it.

Eviction is **lease-safe**: a job holds a lease on its entry for the
duration of the run, and ``evict`` only marks the entry gone from the
registry — the underlying session closes when the last lease drops.  That
makes the cache-eviction race (fault point ``serve.evict``) a non-event:
the racing job finishes on its leased session; the *next* request gets a
clean 404.

Each entry also owns the dataset's
:class:`~repro.serve.breaker.CircuitBreaker` — failure isolation is
per-tenant, a poisoned dataset never opens the circuit for its neighbours.
"""

from __future__ import annotations

import logging
import threading
import time
from pathlib import Path
from typing import Callable

from repro.api import Session
from repro.config import ReproConfig
from repro.errors import ServeError, UnknownDatasetError
from repro.obs.metrics import MetricsRegistry
from repro.serve.breaker import CircuitBreaker

logger = logging.getLogger(__name__)

__all__ = ["DatasetEntry", "DatasetRegistry"]

#: Rows per admission cost unit: a 50k-row dataset costs 50 units per job.
_ROWS_PER_COST_UNIT = 1000.0


class DatasetEntry:
    """One registered dataset: warm session + breaker + lease count."""

    def __init__(self, name: str, session: Session, breaker: CircuitBreaker):
        self.name = name
        self.session = session
        self.breaker = breaker
        self.cost_units = max(1.0, session.table.n_rows / _ROWS_PER_COST_UNIT)
        self.registered_at = time.time()
        self.runs = 0
        self._lock = threading.Lock()
        self._leases = 0
        self._evicted = False

    # -- leases --------------------------------------------------------------

    def acquire(self) -> Session:
        """Take a lease; the session stays open until every lease drops."""
        with self._lock:
            if self._evicted:
                raise UnknownDatasetError(
                    f"dataset {self.name!r} was evicted while the job waited"
                )
            self._leases += 1
            return self.session

    def append(self, rows) -> str:
        """Append ``rows`` under a lease; returns the new dataset version.

        The lease is what makes append safe against the eviction race and
        against running jobs: :meth:`Session.append` swaps the session's
        table atomically, so a job mid-run keeps its snapshot (the old
        table stays alive until the run's references drop) while the next
        job sees the grown table.
        """
        session = self.acquire()
        try:
            version = session.append(rows)
            self.cost_units = max(
                1.0, session.table.n_rows / _ROWS_PER_COST_UNIT
            )
            return version
        finally:
            self.release()

    def release(self) -> None:
        close = False
        with self._lock:
            self._leases = max(0, self._leases - 1)
            close = self._evicted and self._leases == 0
        if close:
            logger.info("dataset %s: last lease released, closing session", self.name)
            self.session.close()

    def evict(self) -> bool:
        """Mark evicted; returns True when the close happened immediately."""
        with self._lock:
            if self._evicted:
                return False
            self._evicted = True
            immediate = self._leases == 0
        if immediate:
            self.session.close()
        else:
            logger.info(
                "dataset %s: evicted with %d job(s) leased; close deferred",
                self.name, self._leases,
            )
        return immediate

    @property
    def evicted(self) -> bool:
        with self._lock:
            return self._evicted

    @property
    def leases(self) -> int:
        with self._lock:
            return self._leases

    def snapshot(self) -> dict:
        counters = self.session.metrics.snapshot()["counters"]
        return {
            "name": self.name,
            "rows": self.session.table.n_rows,
            "columns": len(self.session.table.schema),
            "version": self.session.version,
            "storage": self.session.storage,
            "cost_units": self.cost_units,
            "runs": self.runs,
            "leases": self.leases,
            "breaker": self.breaker.snapshot(),
            "cache": {
                "aggregate_hits": counters.get("cache.aggregate_hits", 0.0),
                "aggregate_misses": counters.get("cache.aggregate_misses", 0.0),
            },
        }


class DatasetRegistry:
    """Thread-safe name → :class:`DatasetEntry` map."""

    def __init__(
        self,
        *,
        config: ReproConfig | None = None,
        metrics: MetricsRegistry | None = None,
        breaker_failures: int = 3,
        breaker_reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._config = config
        self._metrics = metrics or MetricsRegistry()
        self._breaker_failures = breaker_failures
        self._breaker_reset = breaker_reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: dict[str, DatasetEntry] = {}

    def register(
        self,
        name: str,
        source: str | Path,
        *,
        config: ReproConfig | None = None,
    ) -> DatasetEntry:
        """Load ``source`` into a warm session registered under ``name``.

        Loading happens outside the registry lock (CSV reads are slow);
        a concurrent duplicate registration loses cleanly: its session is
        closed and the established entry wins.
        """
        if not name or "/" in name:
            raise ServeError(f"invalid dataset name {name!r}")
        with self._lock:
            if name in self._entries:
                raise ServeError(f"dataset {name!r} is already registered")
        session = Session(source, config=config or self._config, table_name=name)
        breaker = CircuitBreaker(
            self._breaker_failures, self._breaker_reset,
            clock=self._clock, name=name,
        )
        entry = DatasetEntry(name, session, breaker)
        with self._lock:
            if name in self._entries:
                session.close()
                raise ServeError(f"dataset {name!r} is already registered")
            self._entries[name] = entry
        self._metrics.counter("serve.datasets_registered").inc()
        self._metrics.gauge("serve.datasets_resident").set(len(self._entries))
        logger.info("registered dataset %s (%d rows, cost %.1f units)",
                    name, session.table.n_rows, entry.cost_units)
        return entry

    def get(self, name: str) -> DatasetEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None or entry.evicted:
            raise UnknownDatasetError(f"no dataset registered as {name!r}")
        return entry

    def evict(self, name: str) -> bool:
        """Remove ``name``; returns False when it was not registered."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            return False
        entry.evict()
        self._metrics.counter("serve.datasets_evicted").inc()
        with self._lock:
            self._metrics.gauge("serve.datasets_resident").set(len(self._entries))
        return True

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def snapshot(self) -> list[dict]:
        with self._lock:
            entries = list(self._entries.values())
        return [entry.snapshot() for entry in entries]

    def close(self) -> None:
        """Evict everything (deferred closes still honour leases)."""
        for name in self.names():
            self.evict(name)
