"""Recursive-descent parser for the supported SQL subset.

Grammar (informal)::

    statement   := [with_clause] select ';'?
    with_clause := WITH name AS '(' select ')' (',' name AS '(' select ')')*
    select      := SELECT [DISTINCT] items FROM from_list [WHERE expr]
                   [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                   [LIMIT number]
    from_list   := from_item (',' from_item)*
    from_item   := (name | '(' select ')') [AS? alias]
                   (JOIN from_item ON expr)*
    expr        := or-precedence expression grammar with comparison,
                   IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, arithmetic,
                   unary minus/NOT, function calls, parens

Precedence (low to high): OR, AND, NOT, comparison/IS/IN/BETWEEN,
additive, multiplicative, unary.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sqlengine.ast_nodes import (
    CommonTableExpression,
    FromItem,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    SqlBetween,
    SqlBinary,
    SqlCase,
    SqlExpression,
    SqlFunction,
    SqlIn,
    SqlIsNull,
    SqlLiteral,
    SqlName,
    SqlStar,
    SqlUnary,
    Statement,
    SubqueryRef,
    TableRef,
    UnionStatement,
)
from repro.sqlengine.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def parse_sql(sql: str) -> Statement:
    """Parse one statement: SELECT or a UNION [ALL] chain, with optional WITH."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def _check(self, type_: TokenType, value: str | None = None) -> bool:
        return self._peek().matches(type_, value)

    def _accept(self, type_: TokenType, value: str | None = None) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(type_, value):
            expected = value or type_.value
            raise SQLSyntaxError(
                f"expected {expected!r}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(message, token.line, token.column)

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> Statement:
        statement = self._parse_query()
        self._accept(TokenType.PUNCTUATION, ";")
        if not self._check(TokenType.END):
            raise self._error(f"unexpected trailing input {self._peek().value!r}")
        return statement

    def _parse_query(self) -> Statement:
        ctes: list[CommonTableExpression] = []
        if self._accept(TokenType.KEYWORD, "with"):
            while True:
                name = self._expect(TokenType.IDENTIFIER).value
                self._expect(TokenType.KEYWORD, "as")
                self._expect(TokenType.PUNCTUATION, "(")
                query = self._parse_query()
                self._expect(TokenType.PUNCTUATION, ")")
                ctes.append(CommonTableExpression(name, query))
                if not self._accept(TokenType.PUNCTUATION, ","):
                    break
        select = self._parse_select()

        # UNION [ALL] chain; the flavor of the first junction must be kept
        # throughout (mixing UNION and UNION ALL is not supported).
        branches = [select]
        union_all_flag: bool | None = None
        while self._accept(TokenType.KEYWORD, "union"):
            this_all = bool(self._accept(TokenType.KEYWORD, "all"))
            if union_all_flag is None:
                union_all_flag = this_all
            elif union_all_flag != this_all:
                raise self._error("mixing UNION and UNION ALL is not supported")
            branches.append(self._parse_select())

        if len(branches) > 1:
            return UnionStatement(tuple(branches), all=bool(union_all_flag), ctes=tuple(ctes))
        if ctes:
            select = SelectStatement(
                items=select.items,
                from_items=select.from_items,
                where=select.where,
                group_by=select.group_by,
                having=select.having,
                order_by=select.order_by,
                limit=select.limit,
                offset=select.offset,
                distinct=select.distinct,
                ctes=tuple(ctes),
            )
        return select

    def _parse_select(self) -> SelectStatement:
        self._expect(TokenType.KEYWORD, "select")
        distinct = bool(self._accept(TokenType.KEYWORD, "distinct"))
        items = self._parse_select_items()

        from_items: tuple[FromItem, ...] = ()
        if self._accept(TokenType.KEYWORD, "from"):
            from_items = self._parse_from_list()

        where = None
        if self._accept(TokenType.KEYWORD, "where"):
            where = self._parse_expression()

        group_by: tuple[SqlExpression, ...] = ()
        if self._accept(TokenType.KEYWORD, "group"):
            self._expect(TokenType.KEYWORD, "by")
            group_by = tuple(self._parse_expression_list())

        having = None
        if self._accept(TokenType.KEYWORD, "having"):
            having = self._parse_expression()

        order_by: tuple[OrderItem, ...] = ()
        if self._accept(TokenType.KEYWORD, "order"):
            self._expect(TokenType.KEYWORD, "by")
            order_by = tuple(self._parse_order_items())

        limit = None
        if self._accept(TokenType.KEYWORD, "limit"):
            token = self._expect(TokenType.NUMBER)
            limit = int(float(token.value))

        offset = None
        if self._accept(TokenType.KEYWORD, "offset"):
            token = self._expect(TokenType.NUMBER)
            offset = int(float(token.value))

        return SelectStatement(
            items=tuple(items),
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            return SelectItem(SqlStar())
        # alias.* form
        if (
            self._check(TokenType.IDENTIFIER)
            and self._tokens[self._pos + 1].matches(TokenType.PUNCTUATION, ".")
            and self._tokens[self._pos + 2].matches(TokenType.OPERATOR, "*")
        ):
            qualifier = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return SelectItem(SqlStar(qualifier))
        expression = self._parse_expression()
        alias = None
        if self._accept(TokenType.KEYWORD, "as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return SelectItem(expression, alias)

    def _parse_from_list(self) -> tuple[FromItem, ...]:
        items = [self._parse_from_item()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._parse_from_item())
        return tuple(items)

    def _parse_from_item(self) -> FromItem:
        item = self._parse_from_primary()
        while True:
            if self._accept(TokenType.KEYWORD, "inner"):
                self._expect(TokenType.KEYWORD, "join")
            elif not self._accept(TokenType.KEYWORD, "join"):
                break
            right = self._parse_from_primary()
            self._expect(TokenType.KEYWORD, "on")
            condition = self._parse_expression()
            item = JoinClause(item, right, condition)
        return item

    def _parse_from_primary(self) -> FromItem:
        if self._accept(TokenType.PUNCTUATION, "("):
            query = self._parse_query()
            self._expect(TokenType.PUNCTUATION, ")")
            self._accept(TokenType.KEYWORD, "as")
            alias_token = self._accept(TokenType.IDENTIFIER)
            if alias_token is None:
                raise self._error("derived table requires an alias")
            return SubqueryRef(query, alias_token.value)
        name = self._expect(TokenType.IDENTIFIER).value
        alias = None
        if self._accept(TokenType.KEYWORD, "as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_order_items(self) -> list[OrderItem]:
        items = []
        while True:
            expression = self._parse_expression()
            ascending = True
            if self._accept(TokenType.KEYWORD, "desc"):
                ascending = False
            else:
                self._accept(TokenType.KEYWORD, "asc")
            items.append(OrderItem(expression, ascending))
            if not self._accept(TokenType.PUNCTUATION, ","):
                return items

    def _parse_expression_list(self) -> list[SqlExpression]:
        items = [self._parse_expression()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._parse_expression())
        return items

    # -- expressions ---------------------------------------------------------------

    def _parse_expression(self) -> SqlExpression:
        return self._parse_or()

    def _parse_or(self) -> SqlExpression:
        left = self._parse_and()
        while self._accept(TokenType.KEYWORD, "or"):
            left = SqlBinary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> SqlExpression:
        left = self._parse_not()
        while self._accept(TokenType.KEYWORD, "and"):
            left = SqlBinary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> SqlExpression:
        if self._accept(TokenType.KEYWORD, "not"):
            return SqlUnary("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlExpression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            self._advance()
            return SqlBinary(token.value, left, self._parse_additive())
        if self._accept(TokenType.KEYWORD, "is"):
            negated = bool(self._accept(TokenType.KEYWORD, "not"))
            self._expect(TokenType.KEYWORD, "null")
            return SqlIsNull(left, negated)
        negated = bool(self._accept(TokenType.KEYWORD, "not"))
        if self._accept(TokenType.KEYWORD, "in"):
            self._expect(TokenType.PUNCTUATION, "(")
            values = [self._parse_literal()]
            while self._accept(TokenType.PUNCTUATION, ","):
                values.append(self._parse_literal())
            self._expect(TokenType.PUNCTUATION, ")")
            return SqlIn(left, tuple(values), negated)
        if self._accept(TokenType.KEYWORD, "between"):
            low = self._parse_additive()
            self._expect(TokenType.KEYWORD, "and")
            high = self._parse_additive()
            return SqlBetween(left, low, high, negated)
        if negated:
            raise self._error("expected IN or BETWEEN after NOT")
        return left

    def _parse_literal(self) -> SqlLiteral:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return SqlLiteral(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return SqlLiteral(token.value)
        raise self._error(f"expected a literal, found {token.value!r}")

    def _parse_additive(self) -> SqlExpression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                self._advance()
                left = SqlBinary(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> SqlExpression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/"):
                self._advance()
                left = SqlBinary(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> SqlExpression:
        if self._accept(TokenType.OPERATOR, "-"):
            return SqlUnary("-", self._parse_unary())
        if self._accept(TokenType.OPERATOR, "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> SqlExpression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return SqlLiteral(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return SqlLiteral(token.value)
        if token.matches(TokenType.KEYWORD, "null"):
            self._advance()
            return SqlLiteral(None)
        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenType.PUNCTUATION, ")")
            return inner
        if token.matches(TokenType.KEYWORD, "case"):
            return self._parse_case()
        if token.type is TokenType.IDENTIFIER:
            return self._parse_name_or_call()
        raise self._error(f"unexpected token {token.value!r}")

    def _parse_case(self) -> SqlCase:
        self._expect(TokenType.KEYWORD, "case")
        branches: list[tuple[SqlExpression, SqlExpression]] = []
        while self._accept(TokenType.KEYWORD, "when"):
            condition = self._parse_expression()
            self._expect(TokenType.KEYWORD, "then")
            branches.append((condition, self._parse_expression()))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        default = None
        if self._accept(TokenType.KEYWORD, "else"):
            default = self._parse_expression()
        self._expect(TokenType.KEYWORD, "end")
        return SqlCase(tuple(branches), default)

    def _parse_name_or_call(self) -> SqlExpression:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._accept(TokenType.PUNCTUATION, "("):
            if self._accept(TokenType.OPERATOR, "*"):
                self._expect(TokenType.PUNCTUATION, ")")
                return SqlFunction(first.lower(), star=True)
            if self._accept(TokenType.PUNCTUATION, ")"):
                return SqlFunction(first.lower())
            if self._accept(TokenType.KEYWORD, "distinct"):
                if first.lower() != "count":
                    raise self._error("DISTINCT inside an aggregate is only supported for count")
                argument = self._parse_expression()
                self._expect(TokenType.PUNCTUATION, ")")
                return SqlFunction("count", (argument,), distinct=True)
            arguments = [self._parse_expression()]
            while self._accept(TokenType.PUNCTUATION, ","):
                arguments.append(self._parse_expression())
            self._expect(TokenType.PUNCTUATION, ")")
            return SqlFunction(first.lower(), tuple(arguments))
        if self._accept(TokenType.PUNCTUATION, "."):
            second = self._expect(TokenType.IDENTIFIER).value
            return SqlName((first, second))
        return SqlName((first,))
