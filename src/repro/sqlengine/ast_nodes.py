"""Abstract syntax tree for the supported SQL subset.

Expression nodes here are *syntactic*: names are unresolved, aggregates are
plain function calls.  The planner binds them against a catalog and lowers
them onto :mod:`repro.relational.expressions` for vectorized evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SqlLiteral:
    """Number, string, boolean, or NULL literal."""

    value: object  # float | str | bool | None


@dataclass(frozen=True)
class SqlName:
    """Possibly-qualified column reference: ``col`` or ``alias.col``."""

    parts: tuple[str, ...]

    def __post_init__(self) -> None:
        assert 1 <= len(self.parts) <= 2

    @property
    def qualifier(self) -> Optional[str]:
        return self.parts[0] if len(self.parts) == 2 else None

    @property
    def column(self) -> str:
        return self.parts[-1]

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class SqlStar:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class SqlUnary:
    """Unary operator: ``-`` or ``not``."""

    op: str
    operand: "SqlExpression"


@dataclass(frozen=True)
class SqlBinary:
    """Binary operator: arithmetic, comparison, ``and``/``or``."""

    op: str
    left: "SqlExpression"
    right: "SqlExpression"


@dataclass(frozen=True)
class SqlFunction:
    """Function call; may be an aggregate (``sum``) or scalar (``abs``).

    ``star`` is True only for ``count(*)``; ``distinct`` only for
    ``count(distinct col)``.
    """

    name: str
    arguments: tuple["SqlExpression", ...] = ()
    star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class SqlCase:
    """``CASE WHEN cond THEN value [...] [ELSE value] END`` (searched form)."""

    branches: tuple[tuple["SqlExpression", "SqlExpression"], ...]
    default: Optional["SqlExpression"] = None


@dataclass(frozen=True)
class SqlIsNull:
    operand: "SqlExpression"
    negated: bool = False


@dataclass(frozen=True)
class SqlIn:
    operand: "SqlExpression"
    values: tuple[SqlLiteral, ...]
    negated: bool = False


@dataclass(frozen=True)
class SqlBetween:
    operand: "SqlExpression"
    low: "SqlExpression"
    high: "SqlExpression"
    negated: bool = False


SqlExpression = Union[
    SqlLiteral,
    SqlName,
    SqlStar,
    SqlUnary,
    SqlBinary,
    SqlFunction,
    SqlIsNull,
    SqlIn,
    SqlBetween,
    SqlCase,
]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expression: SqlExpression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expression: SqlExpression
    ascending: bool = True


@dataclass(frozen=True)
class TableRef:
    """Base table or CTE reference, with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    """Derived table ``(select ...) alias``."""

    query: "SelectStatement"
    alias: str


FromItem = Union[TableRef, SubqueryRef, "JoinClause"]


@dataclass(frozen=True)
class JoinClause:
    """Explicit ``left JOIN right ON condition`` (inner joins only)."""

    left: FromItem
    right: FromItem
    condition: Optional[SqlExpression]


@dataclass(frozen=True)
class CommonTableExpression:
    name: str
    query: "SelectStatement"


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT, possibly with WITH-bound CTEs.

    ``from_items`` is the comma-separated FROM list; an empty tuple means a
    FROM-less select (constants only).
    """

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[SqlExpression] = None
    group_by: tuple[SqlExpression, ...] = ()
    having: Optional[SqlExpression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    ctes: tuple[CommonTableExpression, ...] = ()


@dataclass(frozen=True)
class UnionStatement:
    """``select ... UNION [ALL] select ...`` chains.

    ``all`` keeps duplicates (UNION ALL); plain UNION deduplicates.  Any
    WITH clause parsed before the chain is attached here and is visible to
    every branch.
    """

    selects: tuple[SelectStatement, ...]
    all: bool = False
    ctes: tuple[CommonTableExpression, ...] = ()

    def __post_init__(self) -> None:
        assert len(self.selects) >= 2


Statement = Union[SelectStatement, UnionStatement]
