"""SQL engine: the subset of SQL that comparison notebooks emit, executable.

This is the reproduction's stand-in for PostgreSQL: lexer, recursive-descent
parser, binder/planner, and a vectorized executor over
:mod:`repro.relational` tables.  The subset covers everything the paper's
generated queries use — derived tables, joins (comma or explicit), GROUP BY
with the full aggregate set, HAVING over aggregates without GROUP BY (the
hypothesis-query form of Figure 3), CTEs, ORDER BY, and LIMIT.
"""

from repro.sqlengine.ast_nodes import (
    CommonTableExpression,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    SqlBetween,
    SqlBinary,
    SqlCase,
    SqlFunction,
    SqlIn,
    SqlIsNull,
    SqlLiteral,
    SqlName,
    SqlStar,
    SqlUnary,
    Statement,
    SubqueryRef,
    TableRef,
    UnionStatement,
)
from repro.sqlengine.executor import Catalog, SQLEngine, execute_sql, execute_statement
from repro.sqlengine.formatter import format_expression, format_sql, format_statement
from repro.sqlengine.lexer import Token, TokenType, tokenize
from repro.sqlengine.parser import parse_sql

__all__ = [
    "Catalog",
    "CommonTableExpression",
    "JoinClause",
    "OrderItem",
    "SQLEngine",
    "SelectItem",
    "SelectStatement",
    "SqlBetween",
    "SqlBinary",
    "SqlCase",
    "SqlFunction",
    "SqlIn",
    "SqlIsNull",
    "SqlLiteral",
    "SqlName",
    "SqlStar",
    "SqlUnary",
    "Statement",
    "SubqueryRef",
    "TableRef",
    "UnionStatement",
    "Token",
    "TokenType",
    "execute_sql",
    "execute_statement",
    "format_expression",
    "format_sql",
    "format_statement",
    "parse_sql",
    "tokenize",
]
