"""SQL tokenizer for the subset of SQL the notebook generator emits.

Produces a flat list of :class:`Token` with 1-based line/column positions so
parse errors point at the offending SQL — important because the library's
output artifact *is* SQL text, and users will read these messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit offset as and or
    not in is null join inner on with distinct union all between like
    case when then else end
    """.split()
)

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
PUNCTUATION = ("(", ")", ",", ";", ".")


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    END = "end"


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, type_: TokenType, value: str | None = None) -> bool:
        if self.type is not type_:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SQLSyntaxError` on bad characters."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        column = i - line_start + 1
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            end = sql.find("\n", i)
            i = n if end < 0 else end
            continue
        if ch == "'":
            value, i = _read_string(sql, i, line, column)
            tokens.append(Token(TokenType.STRING, value, line, column))
            continue
        if ch == '"':
            value, i = _read_quoted_identifier(sql, i, line, column)
            tokens.append(Token(TokenType.IDENTIFIER, value, line, column))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, line, column))
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, line, column))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, line, column))
            i = j
            continue
        matched_operator = next((op for op in OPERATORS if sql.startswith(op, i)), None)
        if matched_operator:
            # Normalize != to the SQL-standard <>.
            value = "<>" if matched_operator == "!=" else matched_operator
            tokens.append(Token(TokenType.OPERATOR, value, line, column))
            i += len(matched_operator)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, line, column))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenType.END, "", line, n - line_start + 1))
    return tokens


def _read_string(sql: str, start: int, line: int, column: int) -> tuple[str, int]:
    """Read a single-quoted string ('' escapes a quote)."""
    i = start + 1
    out: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        if ch == "\n":
            break
        out.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", line, column)


def _read_quoted_identifier(sql: str, start: int, line: int, column: int) -> tuple[str, int]:
    end = sql.find('"', start + 1)
    if end < 0 or "\n" in sql[start:end]:
        raise SQLSyntaxError("unterminated quoted identifier", line, column)
    return sql[start + 1 : end], end + 1


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
        if sql[i] == ".":
            seen_dot = True
        i += 1
    # Scientific notation: 1e5, 2.5E-3
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            while j < n and sql[j].isdigit():
                j += 1
            i = j
    return sql[start:i], i
