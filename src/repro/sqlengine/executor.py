"""SQL execution: evaluates parsed SELECT statements over registered tables.

The executor is the "PostgreSQL substitute" of this reproduction: the
comparison and hypothesis queries the generator emits are plain SQL text,
and this module runs them end-to-end (FROM product / joins -> WHERE ->
GROUP BY + aggregates -> HAVING -> SELECT -> DISTINCT -> ORDER BY ->
LIMIT), with hash joins extracted from equality predicates.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import PlanningError
from repro.relational.columns import CategoricalColumn, MeasureColumn
from repro.relational.operators import AggregateSpec, distinct as distinct_op, group_by_aggregate, hash_join
from repro.relational.schema import Attribute, AttributeKind, Schema, categorical, measure
from repro.relational.table import Table
from repro.sqlengine.ast_nodes import (
    FromItem,
    JoinClause,
    SelectItem,
    SelectStatement,
    SqlExpression,
    SqlFunction,
    SqlLiteral,
    SqlName,
    SqlStar,
    Statement,
    SubqueryRef,
    TableRef,
    UnionStatement,
)
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.planner import (
    Scope,
    collect_aggregates,
    equality_key_pair,
    lower_expression,
    split_conjuncts,
)


class Catalog:
    """Named tables visible to SQL queries."""

    def __init__(self, tables: Mapping[str, Table] | None = None):
        self._tables: dict[str, Table] = dict(tables or {})

    def register(self, name: str, table: Table) -> None:
        self._tables[name] = table

    def resolve(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            # Fall back to case-insensitive lookup (SQL identifiers fold case).
            for key, value in self._tables.items():
                if key.lower() == name.lower():
                    return value
            raise PlanningError(f"unknown table {name!r}")
        return table

    def names(self) -> tuple[str, ...]:
        return tuple(self._tables)


class SQLEngine:
    """Facade: register tables, execute SQL text, get result tables."""

    def __init__(self) -> None:
        self.catalog = Catalog()

    def register(self, name: str, table: Table) -> None:
        self.catalog.register(name, table)

    def execute(self, sql: str) -> Table:
        return execute_sql(sql, self.catalog)


def execute_sql(sql: str, catalog: Catalog) -> Table:
    """Parse and execute one SELECT statement against ``catalog``."""
    return execute_statement(parse_sql(sql), catalog)


def execute_statement(
    statement: Statement, catalog: Catalog, cte_env: Mapping[str, Table] | None = None
) -> Table:
    """Execute a parsed statement; ``cte_env`` holds WITH-bound tables."""
    env = dict(cte_env or {})
    for cte in statement.ctes:
        env[cte.name] = execute_statement(cte.query, catalog, env)

    if isinstance(statement, UnionStatement):
        return _execute_union(statement, catalog, env)

    source, scope, remaining = _build_from(statement, catalog, env)

    aggregate_calls = _collect_statement_aggregates(statement)
    if statement.group_by or aggregate_calls:
        if any(isinstance(item.expression, SqlStar) for item in statement.items):
            raise PlanningError("* in the select list is not allowed with aggregation")
        source, scope, agg_map = _aggregate(statement, source, scope, aggregate_calls)
    else:
        agg_map = {}

    if statement.having is not None:
        if not agg_map and not statement.group_by:
            raise PlanningError("HAVING requires aggregation")
        predicate = lower_expression(statement.having, scope, agg_map)
        source = source.filter(predicate.evaluate(source))

    output = _project(statement.items, source, scope, agg_map)

    if statement.distinct:
        output = distinct_op(output)

    if statement.order_by:
        output = _order(statement, source, scope, agg_map, output)

    if statement.offset is not None:
        keep = np.arange(statement.offset, output.n_rows)
        output = output.take(keep)
    if statement.limit is not None:
        output = output.head(statement.limit)
    return output


def _execute_union(
    statement: UnionStatement, catalog: Catalog, env: Mapping[str, Table]
) -> Table:
    """UNION [ALL]: positional column alignment, dedup unless ALL."""
    from repro.relational.operators import union_all as union_all_op

    results = [execute_statement(s, catalog, env) for s in statement.selects]
    first = results[0]
    combined = first
    for result in results[1:]:
        if len(result.schema.names) != len(first.schema.names):
            raise PlanningError(
                f"UNION branches have different arities: "
                f"{len(first.schema.names)} vs {len(result.schema.names)}"
            )
        kinds_first = [a.kind for a in first.schema]
        kinds_other = [a.kind for a in result.schema]
        if kinds_first != kinds_other:
            raise PlanningError("UNION branches have incompatible column kinds")
        if result.schema.names != first.schema.names:
            result = result.rename(dict(zip(result.schema.names, first.schema.names)))
        combined = union_all_op(combined, result)
    if not statement.all:
        combined = distinct_op(combined)
    return combined


# --------------------------------------------------------------------------
# FROM clause
# --------------------------------------------------------------------------


def _build_from(
    statement: SelectStatement, catalog: Catalog, env: Mapping[str, Table]
) -> tuple[Table, Scope, list[SqlExpression]]:
    """Materialize the FROM product and apply WHERE.

    Returns the combined (and WHERE-filtered) table, its scope, and any
    conjuncts that could not be applied (always empty; kept for clarity).
    """
    leaves: list[tuple[str, Table]] = []
    join_conditions: list[SqlExpression] = []
    for item in statement.from_items:
        _flatten_from_item(item, catalog, env, leaves, join_conditions)

    if not leaves:
        # FROM-less select: single synthetic row so literals evaluate once.
        dummy = Table.from_columns(Schema([categorical("__dummy")]), {"__dummy": [""]})
        return dummy, Scope(), []

    aliases = [alias for alias, _ in leaves]
    if len(set(aliases)) != len(aliases):
        raise PlanningError(f"duplicate table alias in FROM: {aliases}")

    multi = len(leaves) > 1
    scope = Scope()
    prepared: list[tuple[str, Table]] = []
    for alias, table in leaves:
        if multi:
            renamed = table.rename({c: f"{alias}.{c}" for c in table.schema.names})
        else:
            renamed = table
        prepared.append((alias, renamed))

    conjuncts = join_conditions + split_conjuncts(statement.where)

    combined = prepared[0][1]
    combined_scope = Scope()
    for column in prepared[0][1].schema.names:
        original = column.split(".", 1)[1] if multi else column
        combined_scope.add_column(prepared[0][0], original, column)

    for alias, table in prepared[1:]:
        leaf_scope = Scope()
        for column in table.schema.names:
            original = column.split(".", 1)[1]
            leaf_scope.add_column(alias, column.split(".", 1)[1], column)
        combined, combined_scope, conjuncts = _combine(
            combined, combined_scope, table, leaf_scope, conjuncts
        )

    if conjuncts:
        predicate_parts = [lower_expression(c, combined_scope, {}) for c in conjuncts]
        mask = np.ones(combined.n_rows, dtype=bool)
        for part in predicate_parts:
            mask &= part.evaluate(combined).astype(bool)
        combined = combined.filter(mask)

    return combined, combined_scope, []


def _flatten_from_item(
    item: FromItem,
    catalog: Catalog,
    env: Mapping[str, Table],
    leaves: list[tuple[str, Table]],
    conditions: list[SqlExpression],
) -> None:
    if isinstance(item, TableRef):
        table = env.get(item.name)
        if table is None:
            table = catalog.resolve(item.name)
        leaves.append((item.effective_alias, table))
        return
    if isinstance(item, SubqueryRef):
        leaves.append((item.alias, execute_statement(item.query, catalog, env)))
        return
    if isinstance(item, JoinClause):
        _flatten_from_item(item.left, catalog, env, leaves, conditions)
        _flatten_from_item(item.right, catalog, env, leaves, conditions)
        if item.condition is not None:
            conditions.extend(split_conjuncts(item.condition))
        return
    raise PlanningError(f"unsupported FROM item {type(item).__name__}")


def _combine(
    left: Table,
    left_scope: Scope,
    right: Table,
    right_scope: Scope,
    conjuncts: list[SqlExpression],
) -> tuple[Table, Scope, list[SqlExpression]]:
    """Join ``right`` into ``left``, consuming usable equality conjuncts."""
    keys: list[tuple[str, str]] = []
    used: list[SqlExpression] = []
    for conjunct in conjuncts:
        pair = equality_key_pair(conjunct)
        if pair is None:
            continue
        a, b = pair
        left_phys = left_scope.try_resolve(a)
        right_phys = right_scope.try_resolve(b)
        if left_phys is None or right_phys is None:
            left_phys = left_scope.try_resolve(b)
            right_phys = right_scope.try_resolve(a)
        if left_phys is None or right_phys is None:
            continue
        if not _is_categorical(left, left_phys) or not _is_categorical(right, right_phys):
            continue
        keys.append((left_phys, right_phys))
        used.append(conjunct)

    if keys:
        joined = hash_join(left, right, keys)
    else:
        joined = _cross_join(left, right)

    merged = Scope()
    for (alias, column), physical in left_scope.qualified.items():
        merged.add_column(alias, column, physical)
    for (alias, column), physical in right_scope.qualified.items():
        merged.add_column(alias, column, physical)
    remaining = [c for c in conjuncts if c not in used]
    return joined, merged, remaining


def _is_categorical(table: Table, name: str) -> bool:
    return table.schema[name].is_categorical


def _cross_join(left: Table, right: Table) -> Table:
    left_idx = np.repeat(np.arange(left.n_rows), right.n_rows)
    right_idx = np.tile(np.arange(right.n_rows), left.n_rows)
    left_part = left.take(left_idx)
    right_part = right.take(right_idx)
    attrs = list(left_part.schema) + list(right_part.schema)
    columns = {a.name: left_part.column(a.name) for a in left_part.schema}
    columns.update({a.name: right_part.column(a.name) for a in right_part.schema})
    return Table(Schema(attrs), columns)


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------


def _collect_statement_aggregates(statement: SelectStatement) -> list[SqlFunction]:
    calls: list[SqlFunction] = []
    seen: set[SqlFunction] = set()
    expressions: list[SqlExpression] = [
        item.expression for item in statement.items if not isinstance(item.expression, SqlStar)
    ]
    if statement.having is not None:
        expressions.append(statement.having)
    for order_item in statement.order_by:
        expressions.append(order_item.expression)
    for expression in expressions:
        for call in collect_aggregates(expression):
            if call not in seen:
                seen.add(call)
                calls.append(call)
    return calls


def _aggregate(
    statement: SelectStatement,
    source: Table,
    scope: Scope,
    calls: list[SqlFunction],
) -> tuple[Table, Scope, dict[SqlFunction, str]]:
    keys: list[str] = []
    for expression in statement.group_by:
        if not isinstance(expression, SqlName):
            raise PlanningError("GROUP BY supports column references only")
        physical = scope.resolve(expression)
        if not source.schema[physical].is_categorical:
            raise PlanningError(f"GROUP BY on measure column {expression} is not supported")
        keys.append(physical)

    working = source
    specs: list[AggregateSpec] = []
    agg_map: dict[SqlFunction, str] = {}
    for i, call in enumerate(calls):
        alias = f"__agg{i}"
        agg_map[call] = alias
        if call.star:
            specs.append(AggregateSpec("count", None, alias))
            continue
        if len(call.arguments) != 1:
            raise PlanningError(f"aggregate {call.name} takes exactly one argument")
        argument = call.arguments[0]
        if isinstance(argument, SqlName):
            physical = scope.resolve(argument)
            column = working.column(physical)
            if column.is_categorical:
                if call.name != "count":
                    raise PlanningError(
                        f"aggregate {call.name}({argument}) needs a numeric argument"
                    )
                if call.distinct:
                    # Distinct labels are counted through their dictionary
                    # codes (NULL -> NaN, excluded).
                    values = np.where(
                        column.codes >= 0, column.codes.astype(np.float64), np.nan
                    )
                else:
                    values = np.where(column.codes >= 0, 1.0, np.nan)
                temp = f"__arg{i}"
                working = working.with_column(measure(temp), MeasureColumn(values))
                specs.append(AggregateSpec("count", temp, alias, distinct=call.distinct))
            else:
                specs.append(AggregateSpec(call.name, physical, alias, distinct=call.distinct))
            continue
        lowered = lower_expression(argument, scope, {})
        values = np.asarray(lowered.evaluate(working), dtype=np.float64)
        temp = f"__arg{i}"
        working = working.with_column(measure(temp), MeasureColumn(values))
        specs.append(AggregateSpec(call.name, temp, alias, distinct=call.distinct))

    aggregated = group_by_aggregate(working, keys, specs)

    post_scope = Scope()
    for (alias, column), physical in scope.qualified.items():
        if physical in keys:
            post_scope.add_column(alias, column, physical)
    return aggregated, post_scope, agg_map


# --------------------------------------------------------------------------
# Projection and ordering
# --------------------------------------------------------------------------


def _project(
    items: Sequence[SelectItem],
    source: Table,
    scope: Scope,
    agg_map: dict[SqlFunction, str],
) -> Table:
    columns: list[tuple[str, object, bool]] = []  # (name, column, is_categorical)
    for i, item in enumerate(items):
        expression = item.expression
        if isinstance(expression, SqlStar):
            if agg_map:
                raise PlanningError("* in the select list is not allowed with aggregation")
            for physical, output_name in scope.star_columns(expression.qualifier):
                column = source.column(physical)
                columns.append((output_name, column, column.is_categorical))
            continue
        name = item.alias or _default_name(expression, i)
        if isinstance(expression, SqlName):
            physical = scope.resolve(expression)
            column = source.column(physical)
            columns.append((name, column, column.is_categorical))
            continue
        if isinstance(expression, SqlLiteral) and isinstance(expression.value, str):
            column = CategoricalColumn.from_values([expression.value] * source.n_rows)
            columns.append((name, column, True))
            continue
        lowered = lower_expression(expression, scope, agg_map)
        values = lowered.evaluate(source)
        if values.dtype == object:
            columns.append((name, CategoricalColumn.from_values(list(values)), True))
        else:
            columns.append((name, MeasureColumn(np.asarray(values, dtype=np.float64)), False))

    attrs: list[Attribute] = []
    data: dict[str, object] = {}
    used: set[str] = set()
    for name, column, is_cat in columns:
        final = name
        suffix = 1
        while final in used:
            final = f"{name}_{suffix}"
            suffix += 1
        used.add(final)
        attrs.append(Attribute(final, AttributeKind.CATEGORICAL if is_cat else AttributeKind.MEASURE))
        data[final] = column
    return Table(Schema(attrs), data)  # type: ignore[arg-type]


def _default_name(expression: SqlExpression, position: int) -> str:
    if isinstance(expression, SqlName):
        return expression.column
    if isinstance(expression, SqlFunction):
        return expression.name
    return f"column_{position + 1}"


def _order(
    statement: SelectStatement,
    source: Table,
    scope: Scope,
    agg_map: dict[SqlFunction, str],
    output: Table,
) -> Table:
    key_arrays: list[np.ndarray] = []
    ascendings: list[bool] = []
    for item in statement.order_by:
        expression = item.expression
        values: np.ndarray | None = None
        if isinstance(expression, SqlLiteral) and isinstance(expression.value, float):
            position = int(expression.value) - 1
            if not 0 <= position < len(output.schema.names):
                raise PlanningError(f"ORDER BY position {position + 1} out of range")
            values = output.column(output.schema.names[position]).values()
        elif isinstance(expression, SqlName) and expression.qualifier is None:
            if expression.column in output.schema:
                values = output.column(expression.column).values()
        if values is None:
            lowered = lower_expression(expression, scope, agg_map)
            values = lowered.evaluate(source)
            if values.size != output.n_rows:
                raise PlanningError("ORDER BY expression is not aligned with the output rows")
        key_arrays.append(values)
        ascendings.append(item.ascending)

    order = np.arange(output.n_rows)
    for values, ascending in reversed(list(zip(key_arrays, ascendings))):
        current = values[order]
        if current.dtype == object:
            keys = np.array([str(v) for v in current], dtype=object)
            nulls = np.array([v == "" or v is None for v in current], dtype=bool)
        else:
            keys = current.astype(np.float64)
            nulls = np.isnan(keys)
        local = _argsort_nulls_last(keys, nulls, ascending)
        order = order[local]
    return output.take(order)


def _argsort_nulls_last(keys: np.ndarray, nulls: np.ndarray, ascending: bool) -> np.ndarray:
    idx = np.arange(keys.size)
    non_null = idx[~nulls]
    null = idx[nulls]
    present = keys[~nulls]
    if ascending:
        order = np.argsort(present, kind="stable")
    else:
        _, ranks = np.unique(present, return_inverse=True)
        order = np.argsort(-ranks, kind="stable")
    return np.concatenate([non_null[order], null])
