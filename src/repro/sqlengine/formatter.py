"""Render SQL ASTs back to (pretty-printed) SQL text.

Used by the notebook renderer to show canonical SQL, and by round-trip
tests (``parse(format(parse(sql)))`` must be a fixed point).
"""

from __future__ import annotations

from repro.errors import PlanningError
from repro.sqlengine.ast_nodes import (
    FromItem,
    JoinClause,
    SelectItem,
    Statement,
    UnionStatement,
    SqlBetween,
    SqlBinary,
    SqlCase,
    SqlExpression,
    SqlFunction,
    SqlIn,
    SqlIsNull,
    SqlLiteral,
    SqlName,
    SqlStar,
    SqlUnary,
    SubqueryRef,
    TableRef,
)

_INDENT = "  "


def format_statement(statement: Statement, indent: int = 0) -> str:
    """Pretty-print a full statement, including any WITH clause."""
    pad = _INDENT * indent
    lines: list[str] = []
    if statement.ctes:
        cte_parts = []
        for cte in statement.ctes:
            body = format_statement(cte.query, indent + 1)
            cte_parts.append(f"{cte.name} as (\n{body}\n{pad})")
        lines.append(pad + "with " + (",\n" + pad).join(cte_parts))
    if isinstance(statement, UnionStatement):
        junction = f"\n{pad}union all\n" if statement.all else f"\n{pad}union\n"
        lines.append(junction.join(format_statement(s, indent) for s in statement.selects))
        return "\n".join(lines)
    select_kw = "select distinct" if statement.distinct else "select"
    items = ", ".join(_format_select_item(i) for i in statement.items)
    lines.append(f"{pad}{select_kw} {items}")
    if statement.from_items:
        froms = (",\n" + pad + _INDENT).join(
            _format_from_item(f, indent) for f in statement.from_items
        )
        lines.append(f"{pad}from {froms}")
    if statement.where is not None:
        lines.append(f"{pad}where {format_expression(statement.where)}")
    if statement.group_by:
        lines.append(f"{pad}group by " + ", ".join(format_expression(e) for e in statement.group_by))
    if statement.having is not None:
        lines.append(f"{pad}having {format_expression(statement.having)}")
    if statement.order_by:
        parts = []
        for item in statement.order_by:
            suffix = "" if item.ascending else " desc"
            parts.append(format_expression(item.expression) + suffix)
        lines.append(f"{pad}order by " + ", ".join(parts))
    if statement.limit is not None:
        lines.append(f"{pad}limit {statement.limit}")
    if statement.offset is not None:
        lines.append(f"{pad}offset {statement.offset}")
    return "\n".join(lines)


def format_sql(statement: Statement) -> str:
    """Pretty-print a statement with a trailing semicolon."""
    return format_statement(statement) + ";"


def _format_select_item(item: SelectItem) -> str:
    text = format_expression(item.expression)
    if item.alias:
        return f"{text} as {item.alias}"
    return text


def _format_from_item(item: FromItem, indent: int) -> str:
    if isinstance(item, TableRef):
        if item.alias and item.alias != item.name:
            return f"{item.name} {item.alias}"
        return item.name
    if isinstance(item, SubqueryRef):
        body = format_statement(item.query, indent + 1)
        pad = _INDENT * indent
        return f"(\n{body}\n{pad}) {item.alias}"
    if isinstance(item, JoinClause):
        left = _format_from_item(item.left, indent)
        right = _format_from_item(item.right, indent)
        if item.condition is None:
            return f"{left} join {right}"
        return f"{left} join {right} on {format_expression(item.condition)}"
    raise PlanningError(f"cannot format FROM item {type(item).__name__}")


_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3,
    "<>": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
}


def format_expression(node: SqlExpression, parent_precedence: int = 0) -> str:
    """Render an expression with minimal parenthesization."""
    if isinstance(node, SqlLiteral):
        return _format_literal(node.value)
    if isinstance(node, SqlName):
        return str(node)
    if isinstance(node, SqlStar):
        return f"{node.qualifier}.*" if node.qualifier else "*"
    if isinstance(node, SqlUnary):
        inner = format_expression(node.operand, 6)
        return f"not {inner}" if node.op == "not" else f"-{inner}"
    if isinstance(node, SqlBinary):
        precedence = _PRECEDENCE[node.op]
        left = format_expression(node.left, precedence)
        right = format_expression(node.right, precedence + 1)
        text = f"{left} {node.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(node, SqlFunction):
        if node.star:
            return f"{node.name}(*)"
        args = ", ".join(format_expression(a) for a in node.arguments)
        if node.distinct:
            return f"{node.name}(distinct {args})"
        return f"{node.name}({args})"
    if isinstance(node, SqlCase):
        parts = ["case"]
        for condition, value in node.branches:
            parts.append(f"when {format_expression(condition)} then {format_expression(value)}")
        if node.default is not None:
            parts.append(f"else {format_expression(node.default)}")
        parts.append("end")
        return " ".join(parts)
    if isinstance(node, SqlIsNull):
        verb = "is not null" if node.negated else "is null"
        return f"{format_expression(node.operand, 3)} {verb}"
    if isinstance(node, SqlIn):
        verb = "not in" if node.negated else "in"
        values = ", ".join(_format_literal(v.value) for v in node.values)
        return f"{format_expression(node.operand, 3)} {verb} ({values})"
    if isinstance(node, SqlBetween):
        verb = "not between" if node.negated else "between"
        return (
            f"{format_expression(node.operand, 3)} {verb} "
            f"{format_expression(node.low, 4)} and {format_expression(node.high, 4)}"
        )
    raise PlanningError(f"cannot format expression {type(node).__name__}")


def _format_literal(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
