"""Name resolution and lowering of SQL expressions onto the relational engine.

The planner binds a parsed :class:`SelectStatement` against a scope of
physical columns and rewrites aggregate calls into references to
pre-computed aggregate columns.  The output of lowering is an
:class:`repro.relational.expressions.Expression` that evaluates vectorized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import PlanningError
from repro.relational.aggregates import SCALAR_FUNCTIONS, is_aggregate
from repro.relational.expressions import (
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    ScalarFunction,
)
from repro.sqlengine.ast_nodes import (
    SqlBetween,
    SqlBinary,
    SqlCase,
    SqlExpression,
    SqlFunction,
    SqlIn,
    SqlIsNull,
    SqlLiteral,
    SqlName,
    SqlStar,
    SqlUnary,
)


@dataclass
class Scope:
    """Visible columns of the current FROM product.

    ``qualified`` maps ``(alias, column)`` to the physical column name in
    the combined table; ``unqualified`` maps a bare column name to its
    physical name when unambiguous (ambiguous names map to ``None``).
    ``order`` lists physical names in presentation order for ``*``.
    """

    qualified: dict[tuple[str, str], str] = field(default_factory=dict)
    unqualified: dict[str, str | None] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    aliases: list[str] = field(default_factory=list)

    def add_column(self, alias: str, column: str, physical: str) -> None:
        self.qualified[(alias, column)] = physical
        if column in self.unqualified and self.unqualified[column] != physical:
            self.unqualified[column] = None  # ambiguous
        else:
            self.unqualified[column] = physical
        self.order.append(physical)
        if alias not in self.aliases:
            self.aliases.append(alias)

    def resolve(self, name: SqlName) -> str:
        """Physical column name for a possibly-qualified reference."""
        if name.qualifier is not None:
            physical = self.qualified.get((name.qualifier, name.column))
            if physical is None:
                raise PlanningError(f"unknown column {name}")
            return physical
        physical = self.unqualified.get(name.column)
        if physical is None:
            if name.column in self.unqualified:
                raise PlanningError(f"ambiguous column reference {name.column!r}")
            raise PlanningError(f"unknown column {name.column!r}")
        return physical

    def try_resolve(self, name: SqlName) -> str | None:
        try:
            return self.resolve(name)
        except PlanningError:
            return None

    def star_columns(self, qualifier: str | None) -> list[tuple[str, str]]:
        """(physical, output-name) pairs expanded from ``*`` / ``alias.*``."""
        out: list[tuple[str, str]] = []
        if qualifier is None:
            seen_physical: set[str] = set()
            for (alias, column), physical in self.qualified.items():
                if physical not in seen_physical:
                    seen_physical.add(physical)
                    out.append((physical, column))
            out.sort(key=lambda pair: self.order.index(pair[0]))
            return out
        if qualifier not in self.aliases:
            raise PlanningError(f"unknown table alias {qualifier!r} in {qualifier}.*")
        for (alias, column), physical in self.qualified.items():
            if alias == qualifier:
                out.append((physical, column))
        out.sort(key=lambda pair: self.order.index(pair[0]))
        return out


def collect_aggregates(expression: SqlExpression) -> list[SqlFunction]:
    """All aggregate function calls in ``expression`` (no deduplication)."""
    found: list[SqlFunction] = []
    _walk_aggregates(expression, found, inside_aggregate=False)
    return found


def _walk_aggregates(node: SqlExpression, found: list[SqlFunction], inside_aggregate: bool) -> None:
    if isinstance(node, SqlFunction):
        if is_aggregate(node.name):
            if inside_aggregate:
                raise PlanningError(f"nested aggregate call {node.name}(...)")
            found.append(node)
            for arg in node.arguments:
                _walk_aggregates(arg, found, inside_aggregate=True)
            return
        for arg in node.arguments:
            _walk_aggregates(arg, found, inside_aggregate)
        return
    if isinstance(node, SqlBinary):
        _walk_aggregates(node.left, found, inside_aggregate)
        _walk_aggregates(node.right, found, inside_aggregate)
    elif isinstance(node, SqlUnary):
        _walk_aggregates(node.operand, found, inside_aggregate)
    elif isinstance(node, (SqlIsNull, SqlIn)):
        _walk_aggregates(node.operand, found, inside_aggregate)
    elif isinstance(node, SqlBetween):
        _walk_aggregates(node.operand, found, inside_aggregate)
        _walk_aggregates(node.low, found, inside_aggregate)
        _walk_aggregates(node.high, found, inside_aggregate)
    elif isinstance(node, SqlCase):
        for condition, value in node.branches:
            _walk_aggregates(condition, found, inside_aggregate)
            _walk_aggregates(value, found, inside_aggregate)
        if node.default is not None:
            _walk_aggregates(node.default, found, inside_aggregate)


def lower_expression(
    node: SqlExpression,
    scope: Scope,
    aggregate_columns: Mapping[SqlFunction, str] | None = None,
) -> Expression:
    """Lower a SQL expression AST onto the vectorized expression tree.

    ``aggregate_columns`` maps aggregate-call AST nodes to the physical
    column holding their per-group value; when provided, any aggregate call
    becomes a :class:`ColumnRef` to that column.
    """
    aggregate_columns = aggregate_columns or {}
    return _lower(node, scope, aggregate_columns)


def _lower(node: SqlExpression, scope: Scope, agg: Mapping[SqlFunction, str]) -> Expression:
    if isinstance(node, SqlLiteral):
        if node.value is None:
            return Literal(math.nan)
        return Literal(node.value)
    if isinstance(node, SqlName):
        return ColumnRef(scope.resolve(node))
    if isinstance(node, SqlStar):
        raise PlanningError("* is only allowed at the top level of a select list")
    if isinstance(node, SqlUnary):
        if node.op == "not":
            return Not(_lower(node.operand, scope, agg))
        return Negate(_lower(node.operand, scope, agg))
    if isinstance(node, SqlBinary):
        if node.op == "and":
            return And((_lower(node.left, scope, agg), _lower(node.right, scope, agg)))
        if node.op == "or":
            return Or((_lower(node.left, scope, agg), _lower(node.right, scope, agg)))
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            return Comparison(node.op, _lower(node.left, scope, agg), _lower(node.right, scope, agg))
        if node.op in ("+", "-", "*", "/"):
            return Arithmetic(node.op, _lower(node.left, scope, agg), _lower(node.right, scope, agg))
        raise PlanningError(f"unsupported binary operator {node.op!r}")
    if isinstance(node, SqlFunction):
        if node in agg:
            return ColumnRef(agg[node])
        if is_aggregate(node.name):
            raise PlanningError(
                f"aggregate {node.name}(...) is not allowed here (no GROUP BY context)"
            )
        if node.name not in SCALAR_FUNCTIONS:
            raise PlanningError(f"unknown function {node.name!r}")
        return ScalarFunction(node.name, tuple(_lower(a, scope, agg) for a in node.arguments))
    if isinstance(node, SqlIsNull):
        return IsNull(_lower(node.operand, scope, agg), node.negated)
    if isinstance(node, SqlIn):
        return InList(
            _lower(node.operand, scope, agg),
            tuple(v.value for v in node.values),
            node.negated,
        )
    if isinstance(node, SqlBetween):
        low = Comparison(">=", _lower(node.operand, scope, agg), _lower(node.low, scope, agg))
        high = Comparison("<=", _lower(node.operand, scope, agg), _lower(node.high, scope, agg))
        both: Expression = And((low, high))
        return Not(both) if node.negated else both
    if isinstance(node, SqlCase):
        branches = tuple(
            (_lower(condition, scope, agg), _lower(value, scope, agg))
            for condition, value in node.branches
        )
        default = _lower(node.default, scope, agg) if node.default is not None else None
        return Case(branches, default)
    raise PlanningError(f"unsupported expression node {type(node).__name__}")


def split_conjuncts(node: SqlExpression | None) -> list[SqlExpression]:
    """Flatten a WHERE tree into AND-ed conjuncts (None -> empty list)."""
    if node is None:
        return []
    if isinstance(node, SqlBinary) and node.op == "and":
        return split_conjuncts(node.left) + split_conjuncts(node.right)
    return [node]


def equality_key_pair(node: SqlExpression) -> tuple[SqlName, SqlName] | None:
    """If ``node`` is ``name = name``, the two name nodes; else None."""
    if isinstance(node, SqlBinary) and node.op == "=":
        if isinstance(node.left, SqlName) and isinstance(node.right, SqlName):
            return node.left, node.right
    return None
