"""The resilient run controller: every run returns a valid NotebookRun.

Each pipeline stage runs down a *degradation ladder* — an ordered list of
rungs from the configured behaviour to an always-cheap fallback.  A rung
that raises (deadline expiry, solver refusal, memory pressure, injected
fault) is recorded as a retry and the next rung runs; the final rung of
every ladder executes under a small grace extension past the deadline, so
a run that blew its budget mid-stage still finishes the cheap fallback.

Ladders
-------
stats:
    full config → cut permutation count (+ random sampling on large
    tables) → parametric tests with a pair cap.
generation (hypothesis evaluation):
    configured evaluator (Algorithm 2 set cover or §5.2.1 bounding) →
    Algorithm 1 + pairwise bounding → pairwise over the top-k insights.
tap:
    exact B&B (anytime: a timeout's incumbent is consumed, flagged
    ``optimal=False``) → Algorithm 3 heuristic → lazy top-k baseline.
render:
    previews + charts → SQL-only cells → skeleton notebook.

Stage boundaries checkpoint through :mod:`repro.persistence` when a
checkpoint path is given; :func:`resilient_generate` accepts a loaded
checkpoint to resume without re-running completed stages.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro import obs
from repro.backend import create_backend
from repro.backend.base import ExecutionBackend
from repro.errors import DeadlineExceeded, ReproError, SolverTimeout
from repro.generation.config import GenerationConfig, SamplingSpec
from repro.generation.generator import (
    GeneratedQuery,
    GenerationOutcome,
    PhaseTimings,
    StatsStageResult,
    run_stats_stage,
    run_support_stage,
)
from repro.generation.pipeline import DEFAULT_EPSILON_PER_QUERY, NotebookRun
from repro.notebook.build import build_notebook
from repro.notebook.cells import Notebook
from repro.notebook.narrative import notebook_header
from repro.queries.distance import query_distance
from repro.queries.sqlgen import bind_table, comparison_sql
from repro.relational.table import Table
from repro.runtime.deadline import Deadline
from repro.runtime.faults import FaultInjector
from repro.runtime.report import (
    STATUS_COMPLETED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_RESUMED,
    RunReport,
    StageReport,
)
from repro.stats.permutation import reduced_permutations
from repro.tap.baseline import solve_baseline_lazy
from repro.tap.exact import ExactConfig, solve_exact
from repro.tap.heuristic import HeuristicConfig, solve_heuristic_lazy
from repro.tap.instance import TAPInstance, TAPSolution

logger = logging.getLogger(__name__)

__all__ = [
    "STAGE_GENERATION",
    "STAGE_RENDER",
    "STAGE_STATS",
    "STAGE_TAP",
    "RuntimePolicy",
    "resilient_generate",
    "resilient_render",
]

STAGE_STATS = "stats"
STAGE_GENERATION = "generation"
STAGE_TAP = "tap"
STAGE_RENDER = "render"


@dataclass(frozen=True, slots=True)
class RuntimePolicy:
    """Tuning knobs of the resilient controller.

    Attributes
    ----------
    deadline_seconds:
        Shared wall-clock budget for the whole run (None = unlimited).
    grace_seconds:
        Extra allowance granted to the *final* rung of each ladder so a
        blown deadline still yields a result (this is why ``--deadline 5``
        may finish around six seconds, never much later).
    permutation_cut_factor:
        Permutation-count divisor of the stats stage's middle rung.
    degraded_sample_rate / degraded_sample_min_rows:
        The middle stats rung additionally switches to random offline
        sampling when the table has at least ``degraded_sample_min_rows``
        rows and no sampling was configured.
    top_k_insights:
        Insight cap of the generation stage's final rung.
    max_pairs_degraded:
        Per-attribute value-pair cap of the stats stage's final rung.
    exact_time_share:
        Fraction of the remaining deadline granted to the exact TAP solver
        before its anytime incumbent is taken.
    """

    deadline_seconds: float | None = None
    grace_seconds: float = 1.0
    permutation_cut_factor: int = 4
    degraded_sample_rate: float = 0.25
    degraded_sample_min_rows: int = 5000
    top_k_insights: int = 60
    max_pairs_degraded: int = 200
    exact_time_share: float = 0.6


@dataclass(slots=True)
class _Rung:
    """One step of a stage's degradation ladder."""

    label: str
    run: Callable[[Deadline, list[str]], object]
    degradation: str | None = None


def _run_ladder(
    stage: str,
    rungs: Sequence[_Rung],
    deadline: Deadline,
    faults: FaultInjector,
    report: RunReport,
    grace_seconds: float,
) -> object | None:
    """Run ``rungs`` in order until one succeeds; record it all in the report.

    Returns the successful rung's result, or None when every rung failed
    (the caller substitutes a valid empty result).  Rung callables receive
    the deadline to honour and a mutable note list for in-rung degradations
    (e.g. "anytime incumbent after solver timeout").
    """
    entry = StageReport(stage)
    result = None
    succeeded = False
    with obs.span(f"stage.{stage}", rungs=len(rungs)) as stage_span:
        for index, rung in enumerate(rungs):
            is_last = index == len(rungs) - 1
            rung_deadline = deadline.extended(grace_seconds) if is_last else deadline
            notes: list[str] = []
            try:
                faults.fire(stage, deadline)
                rung_deadline.check(stage)
                result = rung.run(rung_deadline, notes)
            except (DeadlineExceeded, ReproError, MemoryError) as exc:
                entry.retries += 1
                entry.warnings.append(f"rung {rung.label!r} failed: {exc}")
                obs.counter(f"runtime.{stage}.rung_failures").inc()
                logger.warning("stage %s rung %s failed (%s); falling back",
                               stage, rung.label, exc)
                continue
            succeeded = True
            entry.rung = rung.label
            if index > 0:
                entry.status = STATUS_DEGRADED
                if rung.degradation:
                    entry.degradations.append(rung.degradation)
            if notes:
                entry.status = STATUS_DEGRADED
                entry.degradations.extend(notes)
            break
        if not succeeded:
            entry.status = STATUS_FAILED
            entry.error = entry.warnings[-1] if entry.warnings else "all rungs failed"
            logger.error("stage %s failed on every rung", stage)
        stage_span.set(rung=entry.rung, status=entry.status, retries=entry.retries)
    entry.seconds = stage_span.duration
    obs.histogram(
        "runtime.stage_seconds", {"stage": stage, "outcome": entry.status}
    ).observe(entry.seconds)
    report.stages.append(entry)
    return result


def _resumed_stage(report: RunReport, stage: str) -> None:
    report.stages.append(StageReport(stage, status=STATUS_RESUMED, rung="checkpoint"))


# ---------------------------------------------------------------------------
# Stage ladders
# ---------------------------------------------------------------------------


def _stats_ladder(
    table: Table,
    config: GenerationConfig,
    policy: RuntimePolicy,
    progress: Callable[[str], None] | None,
    backend: ExecutionBackend | None = None,
    shard_store=None,
    incremental=None,
    version: str | None = None,
) -> list[_Rung]:
    base_permutations = config.significance.n_permutations
    cut = reduced_permutations(base_permutations, policy.permutation_cut_factor)
    reduced_config = replace(
        config, significance=replace(config.significance, n_permutations=cut)
    )
    reduced_note = f"permutations cut {base_permutations} -> {cut}"
    if config.sampling is None and table.n_rows >= policy.degraded_sample_min_rows:
        reduced_config = replace(
            reduced_config,
            sampling=SamplingSpec("random", policy.degraded_sample_rate),
        )
        reduced_note += f", random sampling at {policy.degraded_sample_rate:.0%}"

    pair_cap = policy.max_pairs_degraded
    if config.max_pairs_per_attribute is not None:
        pair_cap = min(pair_cap, config.max_pairs_per_attribute)
    parametric_config = replace(
        config,
        significance=replace(config.significance, engine="parametric"),
        sampling=config.sampling,
        max_pairs_per_attribute=pair_cap,
    )
    # Only the configured rung records mid-shard checkpoints or consumes
    # the incremental memo: the degraded rungs change the test
    # configuration, which would invalidate the shards' (and the memo's)
    # config token anyway.
    return [
        _Rung(
            "full",
            lambda d, n: run_stats_stage(table, config, progress, d, backend=backend,
                                         shard_store=shard_store,
                                         incremental=incremental, version=version),
        ),
        _Rung(
            "reduced",
            lambda d, n: run_stats_stage(table, reduced_config, progress, d, backend=backend),
            degradation=reduced_note,
        ),
        _Rung(
            "parametric",
            lambda d, n: run_stats_stage(
                table, parametric_config, progress, d, backend=backend
            ),
            degradation=(
                f"parametric tests, at most {pair_cap} value pairs per attribute"
            ),
        ),
    ]


def _generation_ladder(
    table: Table,
    stats: StatsStageResult,
    config: GenerationConfig,
    policy: RuntimePolicy,
    progress: Callable[[str], None] | None,
    backend: ExecutionBackend | None = None,
) -> list[_Rung]:
    rungs: list[_Rung] = [
        _Rung(
            config.evaluator,
            lambda d, n: run_support_stage(table, stats, config, progress, d, backend=backend),
        )
    ]
    if config.evaluator != "pairwise":
        pairwise_config = replace(config, evaluator="pairwise")
        rungs.append(
            _Rung(
                "pairwise",
                lambda d, n: run_support_stage(
                    table, stats, pairwise_config, progress, d, backend=backend
                ),
                degradation="fell back to Algorithm 1 + pairwise bounding",
            )
        )
    top_k = policy.top_k_insights
    truncated = sorted(stats.significant, key=lambda t: -t.significance)[:top_k]
    top_k_stats = StatsStageResult(
        truncated, stats.excluded_pairs, stats.timings, dict(stats.counters)
    )
    top_k_config = replace(config, evaluator="pairwise")
    rungs.append(
        _Rung(
            "top-k",
            lambda d, n: run_support_stage(
                table, top_k_stats, top_k_config, progress, d, backend=backend
            ),
            degradation=f"evaluated only the top {len(truncated)} insights",
        )
    )
    return rungs


def _tap_ladder(
    queries: Sequence[GeneratedQuery],
    config: GenerationConfig,
    budget: float,
    epsilon_distance: float,
    solver: str,
    exact_timeout: float | None,
    max_exact_queries: int,
    policy: RuntimePolicy,
) -> list[_Rung]:
    weights = config.distance_weights
    interests = [g.interest for g in queries]
    costs = [1.0] * len(queries)

    def distance_of(i: int, j: int) -> float:
        return query_distance(queries[i].query, queries[j].query, weights)

    rungs: list[_Rung] = []
    if solver == "exact" and len(queries) <= max_exact_queries:

        def run_exact(deadline: Deadline, notes: list[str]) -> TAPSolution:
            import numpy as np

            n = len(queries)
            with obs.span("tap.distance_matrix", n=n):
                matrix = np.zeros((n, n))
                for i in range(n):
                    deadline.check(STAGE_TAP)
                    for j in range(i + 1, n):
                        d = distance_of(i, j)
                        matrix[i, j] = d
                        matrix[j, i] = d
            instance = TAPInstance(list(queries), interests, costs, matrix)
            timeout = exact_timeout
            if deadline.limited:
                share = max(0.05, deadline.remaining() * policy.exact_time_share)
                timeout = min(share, timeout) if timeout is not None else share
            try:
                outcome = solve_exact(
                    instance,
                    ExactConfig(budget, epsilon_distance, timeout_seconds=timeout,
                                raise_on_timeout=True),
                )
            except SolverTimeout as exc:
                if exc.incumbent is None:
                    raise
                notes.append("exact solver timed out; kept anytime incumbent "
                             "(optimal=False)")
                return exc.incumbent
            return outcome.solution

        rungs.append(_Rung("exact", run_exact))

    heuristic_degradation = None
    if rungs:
        heuristic_degradation = "fell back to the Algorithm 3 heuristic"
    rungs.append(
        _Rung(
            "heuristic",
            lambda d, n: solve_heuristic_lazy(
                interests, costs, distance_of,
                HeuristicConfig(budget, epsilon_distance), deadline=d,
            ),
            degradation=heuristic_degradation,
        )
    )
    rungs.append(
        _Rung(
            "baseline",
            lambda d, n: solve_baseline_lazy(interests, costs, distance_of, budget),
            degradation="fell back to the top-k interest baseline",
        )
    )
    return rungs


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------


def resilient_generate(
    table: Table | None,
    config: GenerationConfig | None = None,
    *,
    budget: float = 10.0,
    epsilon_distance: float | None = None,
    solver: str = "heuristic",
    exact_timeout: float | None = 60.0,
    max_exact_queries: int = 2000,
    deadline_seconds: float | None = None,
    policy: RuntimePolicy | None = None,
    faults: FaultInjector | None = None,
    checkpoint_path=None,
    resume=None,
    progress: Callable[[str], None] | None = None,
    backend: ExecutionBackend | None = None,
    incremental=None,
    version: str | None = None,
) -> NotebookRun:
    """End-to-end generation that *always* returns a valid NotebookRun.

    Parameters mirror :class:`~repro.generation.pipeline.NotebookGenerator`
    plus the runtime controls: ``deadline_seconds`` (shared wall clock),
    ``faults`` (deterministic fault injection), ``checkpoint_path`` (write
    stage snapshots there after the stats and generation stages), and
    ``resume`` (a :class:`~repro.persistence.RunCheckpoint` to restart
    from).  ``table`` may be None only when resuming past the generation
    stage.  ``backend`` lets a caller (the :class:`repro.api.Session`
    facade) lend a long-lived engine; the controller then reports only the
    statements this run executed and leaves closing to the owner.

    ``incremental`` is an :class:`~repro.stats.delta.IncrementalRequest`
    from a verified prior run over a prefix of ``table``: the stats
    stage's configured rung then re-tests only the pair families touched
    by the appended rows.  ``version`` stamps the table's content-version
    token onto the run so the stats stage can memoize its raw results for
    the *next* append (``run.stats_memo``).
    """
    if solver not in ("heuristic", "exact"):
        raise ReproError(f"unknown solver {solver!r}")
    policy = policy or RuntimePolicy()
    if deadline_seconds is not None:
        policy = replace(policy, deadline_seconds=deadline_seconds)
    config = config or GenerationConfig()
    faults = faults or FaultInjector.none()
    deadline = Deadline(policy.deadline_seconds)
    parallel = config.effective_parallel()
    report = RunReport(deadline_seconds=policy.deadline_seconds,
                       backend=config.backend,
                       stats_kernel=config.significance.kernel,
                       workers=parallel.workers,
                       mqo=config.mqo)
    if epsilon_distance is None:
        epsilon_distance = DEFAULT_EPSILON_PER_QUERY * max(1.0, budget - 1.0)

    if (
        resume is not None
        and resume.report is not None
        and resume.report.backend
        and resume.report.backend != config.backend
    ):
        raise ReproError(
            f"checkpoint was produced by the {resume.report.backend!r} backend "
            f"but this run is configured for {config.backend!r}; resuming "
            "across backends would mix engines mid-run (re-run without "
            "--resume, or match the backend)"
        )

    with obs.span(
        "run", solver=solver, budget=budget, backend=config.backend,
        deadline_seconds=policy.deadline_seconds,
    ) as run_span:
        stats: StatsStageResult | None = None
        outcome: GenerationOutcome | None = None
        if resume is not None:
            report.resumed_from = str(resume.source) if resume.source else "checkpoint"
            if resume.report is not None:
                report.backend_statements = resume.report.backend_statements
                if resume.report.mqo_plan is not None:
                    report.mqo_plan = resume.report.mqo_plan
            if resume.outcome is not None:
                outcome = resume.outcome
                _resumed_stage(report, STAGE_STATS)
                _resumed_stage(report, STAGE_GENERATION)
                logger.info("resumed past the generation stage from checkpoint")
            elif resume.stats is not None:
                stats = resume.stats
                _resumed_stage(report, STAGE_STATS)
                logger.info("resumed past the stats stage from checkpoint")
            elif resume.stage == "stats-partial":
                logger.info(
                    "resuming mid-stats: %d completed shard(s) in checkpoint",
                    len(resume.partial_shards),
                )

        if outcome is None and table is None:
            raise ReproError(
                "a table is required unless the resume checkpoint contains the "
                "generation stage"
            )

        # One backend instance serves both data stages (the sqlite backend
        # loads the dataset once); resumed-past-generation runs never touch
        # the engine, so none is created for them.
        owns_backend = backend is None
        if outcome is None and backend is None:
            backend = create_backend(config.backend, table)
        statements_before = backend.statements_executed if backend is not None else 0
        try:
            # -- stage: statistical tests -----------------------------------
            if outcome is None and stats is None:
                # Sharded runs checkpoint mid-stage: completed shards are
                # written as a "stats-partial" checkpoint so a resumed run
                # skips them.  A config token guards against resuming shards
                # produced under different test settings.
                shard_store = None
                if (checkpoint_path is not None and parallel.active
                        and parallel.backend == "processes"):
                    from repro.persistence import (
                        PersistentShardStore,
                        stats_config_token,
                    )

                    token = stats_config_token(config, table.n_rows)
                    shard_store = PersistentShardStore.open(
                        checkpoint_path, token, resume
                    )
                stats = _run_ladder(
                    STAGE_STATS,
                    _stats_ladder(table, config, policy, progress, backend=backend,
                                  shard_store=shard_store,
                                  incremental=incremental, version=version),
                    deadline,
                    faults,
                    report,
                    policy.grace_seconds,
                )
                if stats is not None and checkpoint_path is not None:
                    from repro.persistence import save_checkpoint

                    executed = backend.statements_executed - statements_before
                    report.backend_statements += executed
                    save_checkpoint(checkpoint_path, stats=stats, report=report,
                                    memo=stats.memo)
                    report.backend_statements -= executed
                    logger.info("checkpoint written after stats stage: %s", checkpoint_path)
                if stats is None:
                    # Every rung failed: stand in an empty result so the run can
                    # still complete, but never checkpoint it.
                    stats = StatsStageResult([], set(), PhaseTimings(), {})

            # -- stage: hypothesis evaluation -------------------------------
            if outcome is None:
                outcome = _run_ladder(
                    STAGE_GENERATION,
                    _generation_ladder(table, stats, config, policy, progress,
                                       backend=backend),
                    deadline,
                    faults,
                    report,
                    policy.grace_seconds,
                )
                if outcome is not None and "mqo_plan_batches" in outcome.counters:
                    report.mqo_plan = {
                        "batches": outcome.counters["mqo_plan_batches"],
                        "sets": outcome.counters["mqo_plan_sets"],
                    }
                if outcome is not None and checkpoint_path is not None:
                    from repro.persistence import save_checkpoint

                    executed = backend.statements_executed - statements_before
                    report.backend_statements += executed
                    # A resumed-stats run re-saves the resume file's memo so
                    # the superseding generation checkpoint never drops it.
                    memo = stats.memo if stats is not None else None
                    if memo is None and resume is not None:
                        memo = resume.memo
                    save_checkpoint(checkpoint_path, outcome=outcome, report=report,
                                    memo=memo)
                    report.backend_statements -= executed
                    logger.info("checkpoint written after generation stage: %s",
                                checkpoint_path)
                if outcome is None:
                    outcome = GenerationOutcome(
                        [], stats.significant, {}, stats.timings, dict(stats.counters)
                    )
        finally:
            if backend is not None:
                report.backend_statements += (
                    backend.statements_executed - statements_before
                )
                if owns_backend:
                    backend.close()

        # -- stage: TAP resolution ------------------------------------------
        queries = outcome.queries
        if not queries:
            solution: TAPSolution | None = TAPSolution((), 0.0, 0.0, 0.0, optimal=True)
            with obs.span(f"stage.{STAGE_TAP}", rung="empty") as tap_span:
                pass
            report.stages.append(
                StageReport(STAGE_TAP, status=STATUS_COMPLETED, rung="empty",
                            seconds=tap_span.duration)
            )
        else:
            solution = _run_ladder(
                STAGE_TAP,
                _tap_ladder(queries, config, budget, epsilon_distance, solver,
                            exact_timeout, max_exact_queries, policy),
                deadline,
                faults,
                report,
                policy.grace_seconds,
            )
            if solution is None:
                solution = TAPSolution((), 0.0, 0.0, 0.0, optimal=False)
        # The TAP stage entry was appended last; its span-derived seconds
        # are the phase timing (span and report stay in exact agreement).
        outcome.timings.tap_solving = report.stages[-1].seconds

        selected = [queries[i] for i in solution.indices]
        report.total_seconds = run_span.elapsed
        obs.current_metrics().record_peak_rss()
    run = NotebookRun(outcome, solution, selected, budget, epsilon_distance,
                      report=report,
                      stats_memo=stats.memo if stats is not None else None)
    if report.degraded:
        logger.warning("run degraded: %s", "; ".join(report.degradations) or
                       "stage failures")
    return run


# ---------------------------------------------------------------------------
# Rendering (its own guarded stage)
# ---------------------------------------------------------------------------


def _skeleton_notebook(
    selected: Sequence[GeneratedQuery], table_name: str, title: str
) -> Notebook:
    """Bare notebook: header + raw SQL cells, no execution at all."""
    notebook = Notebook(title)
    notebook.add_markdown(notebook_header(title, table_name, len(selected)))
    for item in selected:
        notebook.add_sql(bind_table(comparison_sql(item.query), table_name) + ";")
    return notebook


def _empty_notebook(table_name: str, title: str) -> Notebook:
    notebook = Notebook(title)
    notebook.add_markdown(notebook_header(title, table_name, 0))
    notebook.add_markdown(
        "_No significant comparison insights survived this run; "
        "see the run report for the degradations applied._"
    )
    return notebook


def resilient_render(
    run: NotebookRun,
    table: Table | None = None,
    table_name: str = "dataset",
    title: str = "Comparison notebook",
    include_previews: bool = True,
    deadline: Deadline | None = None,
    faults: FaultInjector | None = None,
    policy: RuntimePolicy | None = None,
) -> Notebook:
    """Render a notebook with its own degradation ladder.

    Always returns a valid notebook: full previews/charts → SQL-only
    cells → a skeleton (header + unbound SQL).  The stage is appended to
    ``run.report`` when one is attached.
    """
    policy = policy or RuntimePolicy()
    faults = faults or FaultInjector.none()
    deadline = deadline or Deadline(None)
    report = run.report if run.report is not None else RunReport()

    if not run.selected:
        with obs.span(f"stage.{STAGE_RENDER}", rung="empty") as render_span:
            notebook = _empty_notebook(table_name, title)
        report.stages.append(
            StageReport(STAGE_RENDER, status=STATUS_COMPLETED, rung="empty",
                        seconds=render_span.duration)
        )
        return notebook

    rungs = [
        _Rung(
            "full",
            lambda d, n: build_notebook(
                run.selected, table=table, table_name=table_name, title=title,
                include_previews=include_previews and table is not None,
            ),
        ),
        _Rung(
            "sql-only",
            lambda d, n: build_notebook(
                run.selected, table=table, table_name=table_name, title=title,
                include_previews=False, include_explanations=False,
                include_charts=False,
            ),
            degradation="previews, charts, and explanations disabled",
        ),
        _Rung(
            "skeleton",
            lambda d, n: _skeleton_notebook(run.selected, table_name, title),
            degradation="skeleton notebook (header + SQL text only)",
        ),
    ]
    notebook = _run_ladder(
        STAGE_RENDER, rungs, deadline, faults, report, policy.grace_seconds
    )
    if notebook is None:
        notebook = _empty_notebook(table_name, title)
    if run.report is None:
        run.report = report
    return notebook
