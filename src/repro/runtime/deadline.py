"""Shared wall-clock deadlines with cooperative cancellation.

A :class:`Deadline` is created once per run and threaded through every
pipeline stage.  Stage loops call :meth:`Deadline.check` at natural
checkpoints (between attributes, between hypothesis groups, between
branch-and-bound nodes); when the budget is gone the check raises
:class:`~repro.errors.DeadlineExceeded`, which the run controller turns
into a fall-back to a cheaper rung of the stage's degradation ladder.

The clock is injectable so tests can drive time deterministically, and
fault injection can *consume* budget (shift the deadline earlier) instead
of really sleeping — a stalled stage is simulated in microseconds.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget shared by every stage of one run.

    Parameters
    ----------
    seconds:
        Total budget from now; ``None`` means unlimited (checks never fire).
    clock:
        Monotonic time source, injectable for tests.
    """

    __slots__ = ("_clock", "_expires_at", "_seconds")

    def __init__(
        self,
        seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if seconds is not None and seconds <= 0:
            raise DeadlineExceeded(f"deadline must be positive, got {seconds}")
        self._clock = clock
        self._seconds = seconds
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    @property
    def seconds(self) -> float | None:
        """The total budget this deadline was created with."""
        return self._seconds

    @property
    def limited(self) -> bool:
        return self._expires_at is not None

    def remaining(self) -> float:
        """Seconds left (may be negative); ``inf`` when unlimited."""
        if self._expires_at is None:
            return float("inf")
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, stage: str | None = None) -> None:
        """Cooperative cancellation point: raise when the budget is gone."""
        if self.expired:
            where = f" in stage {stage!r}" if stage else ""
            raise DeadlineExceeded(
                f"run deadline of {self._seconds}s exceeded{where}", stage=stage
            )

    def consume(self, seconds: float) -> None:
        """Move the deadline ``seconds`` earlier (fault-injected stalls).

        A no-op on unlimited deadlines: with no budget there is nothing a
        stall can exhaust.
        """
        if self._expires_at is not None:
            self._expires_at -= seconds

    def extended(self, grace_seconds: float) -> "Deadline":
        """A child deadline with ``grace_seconds`` past *this* deadline.

        The final rung of every ladder runs under a small grace extension so
        a run that blew its budget mid-stage still finishes the cheap
        fallback instead of failing outright.
        """
        if self._expires_at is None:
            return Deadline(None, self._clock)
        remaining = max(0.0, self.remaining())
        return Deadline(remaining + grace_seconds, self._clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline({self._seconds}s, {self.remaining():.3f}s remaining)"
