"""Shared retry/backoff-with-jitter primitive.

One retry policy serves every layer that replaces a failed attempt with a
fresh one: the serving layer's job execution retries transient failures
(injected crashes, worker deaths) and the :class:`~repro.parallel.pool.
ShardPool` paces crashed-worker restarts through the same backoff curve,
so "how aggressively do we retry" is tuned in exactly one place.

Design points
-------------
* **Deterministic jitter** — backoff delays are randomized (equal-jitter:
  the top ``jitter`` fraction of each delay is uniform random) from a
  *seeded* :class:`random.Random`, so tests and reproductions see the same
  delays every run while concurrent retriers still decorrelate (each call
  site seeds differently).
* **Deadline aware** — :func:`retry_call` checks the run
  :class:`~repro.runtime.deadline.Deadline` before every attempt and caps
  each backoff sleep to the remaining budget; a retry loop can never
  outlive the request it serves.
* **Injectable sleep** — chaos tests pass ``sleep=lambda s: None`` and run
  in microseconds.

Two consumption shapes::

    # Wrap a whole callable (the serving layer's job attempts):
    run = retry_call(attempt, policy=RetryPolicy(max_attempts=2),
                     retry_on=(InjectedFault, WorkerCrashed))

    # Incremental budget across discrete events (pool worker restarts):
    restarts = RetryState(RetryPolicy(base_delay=0.01), retries=2)
    delay = restarts.next_delay()   # None once the budget is spent
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ReproError
from repro.runtime.deadline import Deadline

__all__ = ["RetryPolicy", "RetryState", "retry_call"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many attempts, and how long to wait between them.

    Attributes
    ----------
    max_attempts:
        Total attempts :func:`retry_call` makes (1 = no retries).
    base_delay:
        Backoff before the first retry, in seconds.
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay:
        Ceiling on any single backoff delay.
    jitter:
        Fraction of each delay that is uniform random (0 disables jitter,
        1 makes the whole delay random).  Jitter decorrelates concurrent
        retriers hammering a shared resource.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays cannot be negative")
        if self.multiplier < 1.0:
            raise ReproError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, retry_index: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``retry_index`` (0-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** retry_index)
        if self.jitter <= 0.0 or rng is None:
            return raw
        return raw * (1.0 - self.jitter) + rng.random() * raw * self.jitter


class RetryState:
    """An incremental retry budget for discrete failure events.

    The :class:`~repro.parallel.pool.ShardPool` consumes one of these: each
    worker death asks :meth:`next_delay` whether a replacement is still
    within budget (and how long to back off before spawning it).

    Parameters
    ----------
    policy:
        Delay curve; ``policy.max_attempts`` is ignored when ``retries``
        is given explicitly.
    retries:
        Total retries allowed (defaults to ``policy.max_attempts - 1``).
    seed:
        Seed of the jitter stream (deterministic by default).
    """

    __slots__ = ("_policy", "_retries", "_rng", "_used")

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        *,
        retries: int | None = None,
        seed: int | None = 0,
    ):
        self._policy = policy or RetryPolicy()
        self._retries = (
            self._policy.max_attempts - 1 if retries is None else retries
        )
        if self._retries < 0:
            raise ReproError(f"retries cannot be negative, got {self._retries}")
        self._rng = random.Random(seed)
        self._used = 0

    @property
    def used(self) -> int:
        """Retries consumed so far."""
        return self._used

    @property
    def exhausted(self) -> bool:
        return self._used >= self._retries

    def next_delay(self) -> float | None:
        """Consume one retry; return its backoff delay, or None when spent."""
        if self.exhausted:
            return None
        delay = self._policy.delay_for(self._used, self._rng)
        self._used += 1
        return delay


def retry_call(
    fn: Callable[[], object],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] | Iterable[type[BaseException]] = (
        ReproError,
    ),
    deadline: Deadline | None = None,
    sleep: Callable[[float], None] = time.sleep,
    seed: int | None = 0,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
):
    """Call ``fn`` until it succeeds, the attempts run out, or the deadline does.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is passed through.
    policy:
        The :class:`RetryPolicy` in force (default: three attempts).
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.  The *last* attempt's exception always propagates.
    deadline:
        Optional run deadline: checked before every attempt (so a retry
        loop surfaces :class:`~repro.errors.DeadlineExceeded` for the
        degradation ladder instead of burning budget on doomed attempts),
        and every backoff sleep is capped to the remaining budget.
    sleep / seed / on_retry:
        Injectable sleep, jitter seed, and an observer called as
        ``on_retry(retry_index, delay, exc)`` before each backoff.
    """
    policy = policy or RetryPolicy()
    retry_on = tuple(retry_on)
    rng = random.Random(seed)
    for attempt in range(policy.max_attempts):
        if deadline is not None:
            deadline.check("retry")
        try:
            return fn()
        except retry_on as exc:
            if attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.delay_for(attempt, rng)
            if deadline is not None and deadline.limited:
                delay = min(delay, max(0.0, deadline.remaining()))
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
