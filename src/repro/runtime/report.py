"""Structured run reports: what each stage did, how long, and how degraded.

A :class:`RunReport` is built by the resilient controller as the run
progresses, attached to the resulting
:class:`~repro.generation.pipeline.NotebookRun`, surfaced by the CLI, and
serialized with saved runs (see :mod:`repro.persistence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunReport", "StageReport"]

#: Stage statuses, in increasing order of trouble.
STATUS_COMPLETED = "completed"   # the stage's first rung succeeded
STATUS_RESUMED = "resumed"       # restored from a checkpoint, not re-run
STATUS_DEGRADED = "degraded"     # a fallback rung produced the result
STATUS_FAILED = "failed"         # every rung failed; an empty result stands in


@dataclass(slots=True)
class StageReport:
    """Outcome of one pipeline stage."""

    name: str
    status: str = STATUS_COMPLETED
    rung: str = ""                 # label of the ladder rung that produced the result
    seconds: float = 0.0
    retries: int = 0               # failed attempts before the final one
    degradations: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    error: str | None = None       # last error message when status == failed

    @property
    def ok(self) -> bool:
        return self.status != STATUS_FAILED

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "rung": self.rung,
            "seconds": self.seconds,
            "retries": self.retries,
            "degradations": list(self.degradations),
            "warnings": list(self.warnings),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageReport":
        return cls(
            name=data["name"],
            status=data.get("status", STATUS_COMPLETED),
            rung=data.get("rung", ""),
            seconds=float(data.get("seconds", 0.0)),
            retries=int(data.get("retries", 0)),
            degradations=list(data.get("degradations", [])),
            warnings=list(data.get("warnings", [])),
            error=data.get("error"),
        )


@dataclass(slots=True)
class RunReport:
    """Per-stage accounting for one resilient run."""

    stages: list[StageReport] = field(default_factory=list)
    deadline_seconds: float | None = None
    total_seconds: float = 0.0
    resumed_from: str | None = None
    #: Execution backend the run used ("columnar"/"sqlite"); checkpoints
    #: persist it so a resume refuses to silently switch engines.
    backend: str | None = None
    #: SQL statements the backend actually sent to an external engine.
    backend_statements: int = 0
    #: Permutation-test kernel the statistics stage used ("batched"/"legacy").
    stats_kernel: str | None = None
    #: Worker count of the sharded execution layer (1 = in-process).  A
    #: "worker field" in the invariance sense: results never depend on it.
    workers: int = 1
    #: Whether batched multi-aggregate compilation (multi-query
    #: optimization) was enabled for the support stage.
    mqo: bool = True
    #: The chosen multi-query plan: ``{"batches": n, "sets": m}`` — how
    #: many per-grouping-attribute batches covered how many group-by sets.
    #: ``None`` until the support stage has run (or for old checkpoints).
    mqo_plan: dict | None = None

    def stage(self, name: str) -> StageReport | None:
        for entry in self.stages:
            if entry.name == name:
                return entry
        return None

    @property
    def degraded(self) -> bool:
        """True when any stage fell back from its first rung (or failed)."""
        return any(s.status in (STATUS_DEGRADED, STATUS_FAILED) for s in self.stages)

    @property
    def degradations(self) -> list[str]:
        notes: list[str] = []
        for entry in self.stages:
            notes.extend(f"{entry.name}: {d}" for d in entry.degradations)
        return notes

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.stages)

    def as_dict(self) -> dict:
        return {
            "stages": [s.as_dict() for s in self.stages],
            "deadline_seconds": self.deadline_seconds,
            "total_seconds": self.total_seconds,
            "resumed_from": self.resumed_from,
            "backend": self.backend,
            "backend_statements": self.backend_statements,
            "stats_kernel": self.stats_kernel,
            "workers": self.workers,
            "mqo": self.mqo,
            "mqo_plan": dict(self.mqo_plan) if self.mqo_plan else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        return cls(
            stages=[StageReport.from_dict(s) for s in data.get("stages", [])],
            deadline_seconds=data.get("deadline_seconds"),
            total_seconds=float(data.get("total_seconds", 0.0)),
            resumed_from=data.get("resumed_from"),
            backend=data.get("backend"),
            backend_statements=int(data.get("backend_statements", 0)),
            stats_kernel=data.get("stats_kernel"),
            workers=int(data.get("workers", 1)),
            mqo=bool(data.get("mqo", True)),
            mqo_plan=data.get("mqo_plan"),
        )

    def summary_lines(self) -> list[str]:
        """Human-readable per-stage lines for the CLI."""
        head = f"run report: {self.total_seconds:.2f}s total"
        if self.deadline_seconds is not None:
            head += f" (deadline {self.deadline_seconds:g}s)"
        if self.resumed_from:
            head += f", resumed from {self.resumed_from}"
        lines = [head]
        if self.backend:
            line = f"  backend      {self.backend:<10} statements={self.backend_statements}"
            if self.stats_kernel:
                line += f"  kernel={self.stats_kernel}"
            if self.workers > 1:
                line += f"  workers={self.workers}"
            if not self.mqo:
                line += "  mqo=off"
            elif self.mqo_plan:
                line += (
                    f"  mqo={self.mqo_plan.get('sets', 0)} sets"
                    f"/{self.mqo_plan.get('batches', 0)} batches"
                )
            lines.append(line)
        for entry in self.stages:
            line = (
                f"  {entry.name:<12} {entry.status:<10} {entry.seconds:6.2f}s"
            )
            if entry.rung:
                line += f"  rung={entry.rung}"
            if entry.retries:
                line += f"  retries={entry.retries}"
            lines.append(line)
            for note in entry.degradations:
                lines.append(f"    ~ {note}")
            for note in entry.warnings:
                lines.append(f"    ! {note}")
            if entry.error:
                lines.append(f"    x {entry.error}")
        return lines
