"""Resilient pipeline runtime: deadlines, degradation ladders, checkpoints.

The generation pipeline's stages (statistical testing, hypothesis
evaluation, TAP solving, notebook rendering) can each blow their budget on
real data — the paper's own evaluation reports solver timeouts (Table 4)
and memory fallbacks (Algorithm 2).  This package wraps the pipeline in a
run controller that

* enforces one shared wall-clock :class:`~repro.runtime.deadline.Deadline`
  through cooperative cancellation checkpoints threaded into the stage
  loops;
* degrades each stage down a ladder of cheaper configurations instead of
  failing (see :mod:`repro.runtime.controller`);
* checkpoints stage boundaries through :mod:`repro.persistence` so an
  interrupted run resumes without re-running permutation tests;
* records everything in a structured
  :class:`~repro.runtime.report.RunReport` attached to the resulting
  :class:`~repro.generation.pipeline.NotebookRun`;
* supports deterministic fault injection
  (:mod:`repro.runtime.faults`) so tests can prove every rung.

``controller`` is imported lazily: it depends on :mod:`repro.generation`,
which itself imports :mod:`repro.runtime.deadline`.
"""

from repro.runtime.deadline import Deadline
from repro.runtime.faults import FaultInjector, FaultSpec, InjectedFault, parse_fault_plan
from repro.runtime.report import RunReport, StageReport
from repro.runtime.retry import RetryPolicy, RetryState, retry_call

__all__ = [
    "Deadline",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "RetryState",
    "RunReport",
    "RuntimePolicy",
    "StageReport",
    "parse_fault_plan",
    "resilient_generate",
    "resilient_render",
    "retry_call",
]

_CONTROLLER_EXPORTS = ("RuntimePolicy", "resilient_generate", "resilient_render")


def __getattr__(name: str):
    if name in _CONTROLLER_EXPORTS:
        from repro.runtime import controller

        return getattr(controller, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
