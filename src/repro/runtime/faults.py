"""Deterministic fault injection for the resilient run controller.

Every stage attempt of :mod:`repro.runtime.controller` passes through
:meth:`FaultInjector.fire` before doing real work.  A matching
:class:`FaultSpec` then either *kills* the attempt (raises
:class:`InjectedFault`) or *stalls* it (consumes deadline budget — no real
sleeping, so tests run in microseconds).  Specs are one-shot by default:
the first attempt of a stage dies, the retry or the next ladder rung
proceeds, which is exactly the shape needed to prove each rung of the
degradation ladder.

The CLI activates injection from the ``REPRO_FAULTS`` environment variable
(a test hook, documented in ``docs/resilience.md``)::

    REPRO_FAULTS="stats:kill" repro generate data.csv ...
    REPRO_FAULTS="tap:stall:10,render:kill" ...

Stage names are free-form, so the serving layer (:mod:`repro.serve`)
registers its own fault points against the same plan syntax — see
``docs/serving.md`` for the chaos knobs:

``serve.admission``
    ``kill`` forces the admission controller to shed the request as if
    the queue were full (an HTTP 429, never an exception to the client).
``serve.handler``
    ``stall`` delays the HTTP handler (a slow-handler fault; real sleeps
    are capped by :data:`MAX_REAL_STALL_SECONDS`).
``serve.job``
    ``kill`` crashes a job attempt mid-execution; the executor's retry
    policy absorbs it or the job terminates ``failed`` with a report.
``serve.evict``
    ``kill`` evicts the job's dataset entry while the job is running
    (the cache-eviction race; leases keep the session alive).

:meth:`FaultInjector.fire` is thread-safe: the serving layer fires faults
from many handler threads against one shared plan.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.runtime.deadline import Deadline

logger = logging.getLogger(__name__)

__all__ = ["FaultInjector", "FaultSpec", "InjectedFault", "parse_fault_plan"]

_ACTIONS = ("kill", "stall")


class InjectedFault(ReproError):
    """An artificial stage failure raised by the fault injector."""

    def __init__(self, stage: str):
        super().__init__(f"injected fault: stage {stage!r} killed")
        self.stage = stage


@dataclass(slots=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    stage:
        Stage name the fault targets (``stats``, ``generation``, ``tap``,
        ``render``) — must match the controller's stage names.
    action:
        ``"kill"`` raises :class:`InjectedFault`; ``"stall"`` consumes
        ``seconds`` of deadline budget (or really sleeps, capped, when the
        run has no deadline).
    seconds:
        Stall duration; ignored for kills.
    times:
        How many attempts to hit before going quiet (default 1: the first
        attempt fails, the fallback succeeds).  ``None`` means every
        attempt — with it, a whole stage can be forced to fail.
    """

    stage: str
    action: str = "kill"
    seconds: float = 0.0
    times: int | None = 1
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ReproError(f"unknown fault action {self.action!r}; known: {_ACTIONS}")
        if self.action == "stall" and self.seconds <= 0:
            raise ReproError("stall faults need a positive duration")


#: Real sleeping is capped so a stall on an unlimited-deadline run cannot
#: hang the process (stalls against a deadline never sleep at all).
MAX_REAL_STALL_SECONDS = 2.0


class FaultInjector:
    """Fires planned faults at stage-attempt boundaries."""

    def __init__(self, specs: list[FaultSpec] | None = None):
        self.specs = list(specs or [])
        self._lock = threading.Lock()

    @classmethod
    def none(cls) -> "FaultInjector":
        return cls([])

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def fire(self, stage: str, deadline: Deadline | None = None) -> None:
        """Apply every still-armed fault targeting ``stage``."""
        stalls: list[float] = []
        with self._lock:
            for spec in self.specs:
                if spec.stage != stage:
                    continue
                if spec.times is not None and spec.fired >= spec.times:
                    continue
                spec.fired += 1
                if spec.action == "stall":
                    stalls.append(spec.seconds)
                else:
                    logger.warning("fault injection: killing stage %r", stage)
                    raise InjectedFault(stage)
        # Stalls happen outside the lock so a long injected sleep in one
        # server thread never blocks fault checks in the others.
        for seconds in stalls:
            logger.warning("fault injection: stalling stage %r for %.3gs",
                           stage, seconds)
            if deadline is not None and deadline.limited:
                deadline.consume(seconds)
            else:
                time.sleep(min(seconds, MAX_REAL_STALL_SECONDS))

    def poll(self, stage: str, deadline: Deadline | None = None) -> bool:
        """Non-raising fire: True when a kill fault hit ``stage``.

        Fault points that model a *condition* rather than an exception —
        the admission controller's queue-full shed, the registry's racing
        eviction — consume their faults through this wrapper.  Stalls
        still stall.
        """
        try:
            self.fire(stage, deadline)
        except InjectedFault:
            return True
        return False


def parse_fault_plan(text: str | None) -> FaultInjector:
    """Parse the ``REPRO_FAULTS`` syntax: ``stage:action[:seconds][:xN]``.

    Comma-separated entries; examples: ``stats:kill``, ``tap:stall:10``,
    ``generation:kill:x3`` (kill the first three attempts),
    ``tap:kill:xall`` (kill every attempt).
    """
    if not text or not text.strip():
        return FaultInjector.none()
    specs: list[FaultSpec] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2:
            raise ReproError(f"malformed fault spec {entry!r} (want stage:action[:...])")
        stage, action, *rest = parts
        seconds = 0.0
        times: int | None = 1
        for token in rest:
            token = token.strip().lower()
            if token == "xall":
                times = None
            elif token.startswith("x"):
                times = int(token[1:])
            else:
                seconds = float(token)
        specs.append(FaultSpec(stage.strip(), action.strip(), seconds, times))
    return FaultInjector(specs)
