"""Synthetic counterparts of the paper's three datasets (Table 2).

Scaled to laptop/CI budgets (~1/20 tuple counts) while preserving the
properties the experiments depend on:

* **Vaccine-like** — tiny: few tuples, one measure, small domains; the
  dataset whose |Q| (~700 in the paper) bounds the exact-TAP experiments;
* **ENEDIS-like** — the workhorse: 7 categorical attributes with one large
  active domain, 2 measures.  In the paper ENEDIS yields *more*
  comparison queries (1.57 M) than the 50× larger Flights, because the
  count is driven by C(adom, 2), not by tuples — the generator preserves
  that inversion via the large-domain attribute;
* **Flights-like** — many tuples, few/medium domains, 3 measures: the
  dataset where full testing takes too long and sampling pays off
  (Figure 9).

``scale`` multiplies tuple counts (1.0 = our default reduced size); domain
sizes stay fixed so query counts stay comparable across scales.
"""

from __future__ import annotations

from repro.datasets.synthetic import CategoricalSpec, MeasureSpec, SyntheticSpec, generate
from repro.relational.table import Table
from repro.stats.rng import DEFAULT_SEED


def vaccine_spec(scale: float = 1.0, seed: int = DEFAULT_SEED) -> SyntheticSpec:
    """Country-level vaccination-progress shape: 6 categoricals, 1 measure."""
    return SyntheticSpec(
        name="vaccine",
        n_rows=max(60, int(300 * scale)),
        categoricals=(
            CategoricalSpec("iso_group", 2, skew=0.0),
            CategoricalSpec("source", 4),
            CategoricalSpec("vaccine_kind", 6),
            CategoricalSpec("month", 6, skew=0.2),
            CategoricalSpec("region", 8),
            CategoricalSpec("country", 20, skew=0.8),
        ),
        measures=(MeasureSpec("daily_vaccinations", base=5000.0, noise=1200.0),),
        seed=seed,
    )


def enedis_spec(scale: float = 1.0, seed: int = DEFAULT_SEED) -> SyntheticSpec:
    """Electric-consumption shape: 7 categoricals (one large), 2 measures."""
    return SyntheticSpec(
        name="enedis",
        n_rows=max(500, int(6000 * scale)),
        categoricals=(
            CategoricalSpec("year", 3, skew=0.0),
            CategoricalSpec("category", 4),
            CategoricalSpec("sector", 8),
            CategoricalSpec("tariff", 5),
            CategoricalSpec("department", 16, skew=0.5),
            CategoricalSpec("region", 12, skew=0.4),
            CategoricalSpec("iris", 60, skew=0.9),
        ),
        measures=(
            MeasureSpec("consumption_kwh", base=900.0, noise=250.0),
            MeasureSpec("n_meters", base=120.0, noise=35.0),
        ),
        seed=seed,
    )


def flights_spec(scale: float = 1.0, seed: int = DEFAULT_SEED) -> SyntheticSpec:
    """US-flights shape: many tuples, 5 categoricals, 3 measures."""
    return SyntheticSpec(
        name="flights",
        n_rows=max(2000, int(30000 * scale)),
        categoricals=(
            CategoricalSpec("day_of_week", 7, skew=0.1),
            CategoricalSpec("carrier", 12, skew=0.7),
            CategoricalSpec("month", 12, skew=0.1),
            CategoricalSpec("origin_state", 25, skew=0.8),
            CategoricalSpec("distance_band", 8, skew=0.3),
        ),
        measures=(
            MeasureSpec("dep_delay", base=18.0, noise=22.0, mean_effect_sigma=0.3),
            MeasureSpec("arr_delay", base=15.0, noise=25.0, mean_effect_sigma=0.3),
            MeasureSpec("taxi_time", base=14.0, noise=5.0, mean_effect_sigma=0.2),
        ),
        seed=seed,
    )


def vaccine_table(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Table:
    return generate(vaccine_spec(scale, seed))


def enedis_table(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Table:
    return generate(enedis_spec(scale, seed))


def flights_table(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Table:
    return generate(flights_spec(scale, seed))
