"""Synthetic datasets mirroring the paper's evaluation data (Table 2)."""

from repro.datasets.covid import covid_table
from repro.datasets.paper_datasets import (
    enedis_spec,
    enedis_table,
    flights_spec,
    flights_table,
    vaccine_spec,
    vaccine_table,
)
from repro.datasets.synthetic import (
    CategoricalSpec,
    MeasureSpec,
    SyntheticSpec,
    describe,
    generate,
)

__all__ = [
    "CategoricalSpec",
    "MeasureSpec",
    "SyntheticSpec",
    "covid_table",
    "describe",
    "enedis_spec",
    "enedis_table",
    "flights_spec",
    "flights_table",
    "generate",
    "vaccine_spec",
    "vaccine_table",
]
