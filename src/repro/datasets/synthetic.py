"""Spec-driven synthetic single-table datasets with planted effects.

The paper evaluates on three real open datasets (Table 2).  Offline, we
regenerate each dataset's *shape* — number of categorical attributes,
active-domain sizes, number of measures, tuple count (scaled) — and plant
per-value effects so that genuine mean/variance insights exist:

* each (categorical value, measure) pair gets a multiplicative mean effect
  drawn from a log-normal, so values differ in expectation (mean-greater
  insights);
* each pair also gets a noise-scale effect, so values differ in spread
  (variance-greater insights);
* attribute value frequencies follow a Zipf-like skew, so minority values
  exist (what unbalanced sampling is designed to preserve).

Planting gives a ground truth the algorithms can be validated against —
something the paper's real datasets cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.relational.schema import Schema, categorical, measure
from repro.relational.table import Table
from repro.stats.rng import DEFAULT_SEED, derive_rng


@dataclass(frozen=True, slots=True)
class CategoricalSpec:
    """One categorical attribute: domain size and frequency skew.

    ``skew = 0`` gives uniform value frequencies; larger values give a
    Zipf-like decay (frequency of the k-th value ∝ (k+1)^-skew).
    """

    name: str
    n_values: int
    skew: float = 0.6
    value_prefix: str = ""

    def __post_init__(self) -> None:
        if self.n_values < 2:
            raise DatasetError(f"attribute {self.name!r} needs at least 2 values")
        if self.skew < 0:
            raise DatasetError("skew must be non-negative")

    def labels(self) -> list[str]:
        prefix = self.value_prefix or f"{self.name}_"
        return [f"{prefix}{k}" for k in range(self.n_values)]


@dataclass(frozen=True, slots=True)
class MeasureSpec:
    """One measure: base scale plus effect strengths.

    ``mean_effect_sigma`` is the log-normal σ of per-value mean
    multipliers; ``variance_effect_sigma`` likewise for noise scales.
    Zero disables the corresponding planted effect.
    """

    name: str
    base: float = 100.0
    noise: float = 20.0
    mean_effect_sigma: float = 0.35
    variance_effect_sigma: float = 0.35
    null_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.noise < 0:
            raise DatasetError("measure base must be positive and noise non-negative")
        if not 0 <= self.null_rate < 1:
            raise DatasetError("null_rate must be in [0, 1)")


@dataclass(frozen=True, slots=True)
class SyntheticSpec:
    """A full dataset specification."""

    name: str
    n_rows: int
    categoricals: tuple[CategoricalSpec, ...]
    measures: tuple[MeasureSpec, ...]
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.n_rows <= 0:
            raise DatasetError("n_rows must be positive")
        if not self.categoricals or not self.measures:
            raise DatasetError("a dataset needs categoricals and measures")

    def schema(self) -> Schema:
        attrs = [categorical(c.name) for c in self.categoricals]
        attrs += [measure(m.name) for m in self.measures]
        return Schema(attrs)


def _zipf_probabilities(n: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-skew if skew > 0 else np.ones(n)
    return weights / weights.sum()


def generate(spec: SyntheticSpec) -> Table:
    """Materialize the dataset described by ``spec`` (deterministic)."""
    rng = derive_rng(spec.seed, "dataset", spec.name)
    n = spec.n_rows

    codes: dict[str, np.ndarray] = {}
    data: dict[str, list | np.ndarray] = {}
    for cat in spec.categoricals:
        probabilities = _zipf_probabilities(cat.n_values, cat.skew)
        drawn = rng.choice(cat.n_values, size=n, p=probabilities)
        codes[cat.name] = drawn
        labels = cat.labels()
        data[cat.name] = [labels[c] for c in drawn]

    for m in spec.measures:
        mean_mult = np.ones(n)
        noise_mult = np.ones(n)
        for cat in spec.categoricals:
            effect_rng = derive_rng(spec.seed, "effect", spec.name, cat.name, m.name)
            if m.mean_effect_sigma > 0:
                per_value = effect_rng.lognormal(0.0, m.mean_effect_sigma, cat.n_values)
                mean_mult = mean_mult * per_value[codes[cat.name]]
            if m.variance_effect_sigma > 0:
                per_value = effect_rng.lognormal(0.0, m.variance_effect_sigma, cat.n_values)
                noise_mult = noise_mult * per_value[codes[cat.name]]
        values = m.base * mean_mult + rng.normal(0.0, m.noise, n) * noise_mult
        if m.null_rate > 0:
            nulls = rng.random(n) < m.null_rate
            values = values.astype(np.float64)
            values[nulls] = np.nan
        data[m.name] = values

    return Table.from_columns(spec.schema(), data)  # type: ignore[arg-type]


def describe(spec: SyntheticSpec, table: Table) -> dict[str, object]:
    """Table 2-style description row for a generated dataset."""
    adom = [table.n_distinct(c.name) for c in spec.categoricals]
    return {
        "name": spec.name,
        "tuples": table.n_rows,
        "bytes": table.estimated_bytes(),
        "n_categorical": len(spec.categoricals),
        "adom_min": min(adom),
        "adom_max": max(adom),
        "n_measures": len(spec.measures),
    }
