"""The paper's running example: a tiny COVID-19 case table (Figures 2-3).

Deterministic generator with the paper's planted facts:

* on average there are more cases in May (month '5') than in April ('4');
* the effect is visible when grouping by continent (the comparison query
  of Figure 2 supports the insight);
* continents have heterogeneous magnitudes so continent-level insights
  also exist.
"""

from __future__ import annotations

import numpy as np

from repro.relational.table import Table, table_from_arrays
from repro.stats.rng import DEFAULT_SEED, derive_rng

CONTINENTS = ("Africa", "America", "Asia", "Europe", "Oceania")
MONTHS = ("3", "4", "5", "6")

#: Per-continent base daily case scale (America largest, Oceania smallest),
#: loosely shaped on the paper's Figure 2 result table.
_CONTINENT_SCALE = {
    "Africa": 40.0,
    "America": 900.0,
    "Asia": 350.0,
    "Europe": 550.0,
    "Oceania": 3.0,
}

#: Per-month multiplier planting the "May > April" mean insight.
_MONTH_FACTOR = {"3": 0.5, "4": 1.0, "5": 1.8, "6": 1.3}


def covid_table(n_rows: int = 1200, seed: int = DEFAULT_SEED) -> Table:
    """Rows are (month, continent, country) daily records with cases/deaths."""
    rng = derive_rng(seed, "covid", n_rows)
    months = rng.choice(MONTHS, size=n_rows)
    continents = rng.choice(CONTINENTS, size=n_rows, p=[0.2, 0.25, 0.25, 0.2, 0.1])
    country_of = {c: [f"{c[:2].upper()}{k}" for k in range(6)] for c in CONTINENTS}
    countries = np.array([rng.choice(country_of[c]) for c in continents])

    scale = np.array([_CONTINENT_SCALE[c] for c in continents])
    factor = np.array([_MONTH_FACTOR[m] for m in months])
    lam = scale * factor
    cases = rng.poisson(lam).astype(np.float64)
    deaths = rng.binomial(np.maximum(cases, 0).astype(np.int64), 0.02).astype(np.float64)

    return table_from_arrays(
        {"month": months, "continent": continents, "country": countries},
        {"cases": cases, "deaths": deaths},
    )
