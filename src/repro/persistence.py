"""Save / load generation runs as JSON.

Generating the query set Q is the expensive phase (statistical tests +
hypothesis evaluation); solving the TAP and rendering notebooks are cheap.
Persisting a run lets a user re-cut notebooks — different budgets ε_t,
distance bounds ε_d, or solvers — without re-testing:

    run = NotebookGenerator().generate(table, budget=10)
    save_run(run, "enedis_run.json")
    ...
    outcome = load_outcome("enedis_run.json")
    shorter = resolve_outcome(outcome, budget=5, epsilon_distance=12.0)

The format is versioned, plain JSON, and contains only derived artifacts
(never the dataset rows).
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.generation.config import GenerationConfig
from repro.generation.generator import (
    GeneratedQuery,
    GenerationOutcome,
    PhaseTimings,
    StatsStageResult,
)
from repro.generation.pipeline import DEFAULT_EPSILON_PER_QUERY, NotebookRun
from repro.insights.insight import CandidateInsight, InsightEvidence, TestedInsight
from repro.parallel.shards import ShardStore
from repro.queries.comparison import ComparisonQuery
from repro.queries.distance import DEFAULT_WEIGHTS, DistanceWeights, query_distance
from repro.runtime.report import RunReport
from repro.stats.delta import StatsMemo
from repro.stats.permutation import TestResult
from repro.tap.heuristic import HeuristicConfig, solve_heuristic_lazy

logger = logging.getLogger(__name__)

SCHEMA_VERSION = 1

#: Version of the stage-checkpoint format (independent of saved runs).
CHECKPOINT_VERSION = 1


class PersistenceError(ReproError):
    """The file is not a valid saved run (wrong shape or version)."""


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _insight_to_dict(evidence: InsightEvidence) -> dict:
    insight = evidence.insight
    candidate = insight.candidate
    return {
        "measure": candidate.measure,
        "attribute": candidate.attribute,
        "val": candidate.val,
        "val_other": candidate.val_other,
        "type": candidate.type_code,
        "statistic": insight.statistic,
        "p_value": insight.p_value,
        "p_adjusted": insight.p_adjusted,
        "n_supporting": evidence.n_supporting,
        "n_postulating": evidence.n_postulating,
    }


def outcome_to_dict(outcome: GenerationOutcome) -> dict:
    """JSON-ready representation of a generation outcome."""
    evidences = {}
    for key, evidence in outcome.evidences.items():
        evidences["|".join(key)] = _insight_to_dict(evidence)
    queries = []
    for generated in outcome.queries:
        q = generated.query
        queries.append(
            {
                "group_by": q.group_by,
                "selection_attribute": q.selection_attribute,
                "val": q.val,
                "val_other": q.val_other,
                "measure": q.measure,
                "agg": q.agg,
                "tuples_aggregated": generated.tuples_aggregated,
                "n_groups": generated.n_groups,
                "interest": generated.interest,
                "supported": ["|".join(e.insight.key) for e in generated.supported],
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "queries": queries,
        "evidences": evidences,
        "counters": dict(outcome.counters),
        "timings": outcome.timings.as_dict(),
    }


def run_to_dict(run: NotebookRun) -> dict:
    """JSON-ready representation of a full end-to-end run."""
    data = outcome_to_dict(run.outcome)
    data["solution"] = {
        "indices": list(run.solution.indices),
        "interest": run.solution.interest,
        "cost": run.solution.cost,
        "distance": run.solution.distance,
        "optimal": run.solution.optimal,
    }
    data["budget"] = run.budget
    data["epsilon_distance"] = run.epsilon_distance
    if run.report is not None:
        data["report"] = run.report.as_dict()
    return data


def save_run(run: NotebookRun, path: str | Path) -> None:
    Path(path).write_text(json.dumps(run_to_dict(run), indent=1), encoding="utf-8")


def save_outcome(outcome: GenerationOutcome, path: str | Path) -> None:
    Path(path).write_text(json.dumps(outcome_to_dict(outcome), indent=1), encoding="utf-8")


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------


def _evidence_from_dict(data: dict) -> InsightEvidence:
    candidate = CandidateInsight(
        data["measure"], data["attribute"], data["val"], data["val_other"], data["type"]
    )
    tested = TestedInsight(candidate, data["statistic"], data["p_value"], data["p_adjusted"])
    return InsightEvidence(
        tested, n_supporting=data["n_supporting"], n_postulating=data["n_postulating"]
    )


def outcome_from_dict(data: dict) -> GenerationOutcome:
    """Rebuild a :class:`GenerationOutcome` (shared evidence identity kept)."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported saved-run version {version!r} (expected {SCHEMA_VERSION})"
        )
    try:
        evidences = {key: _evidence_from_dict(d) for key, d in data["evidences"].items()}
        queries = []
        for q in data["queries"]:
            supported = tuple(evidences[key] for key in q["supported"])
            queries.append(
                GeneratedQuery(
                    ComparisonQuery(
                        q["group_by"],
                        q["selection_attribute"],
                        q["val"],
                        q["val_other"],
                        q["measure"],
                        q["agg"],
                    ),
                    q["tuples_aggregated"],
                    q["n_groups"],
                    supported,
                    q["interest"],
                )
            )
        timings = PhaseTimings(**data.get("timings", {}))
        keyed = {tuple(key.split("|")): evidence for key, evidence in evidences.items()}
        significant = [e.insight for e in evidences.values()]
        return GenerationOutcome(queries, significant, keyed, timings, dict(data.get("counters", {})))
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed saved run: {exc}") from exc


def load_outcome(path: str | Path) -> GenerationOutcome:
    return outcome_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def load_run(path: str | Path) -> NotebookRun:
    """Rebuild the full run, including the stored TAP solution."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    outcome = outcome_from_dict(data)
    solution_data = data.get("solution")
    if solution_data is None:
        raise PersistenceError("saved file holds an outcome, not a full run")
    from repro.tap.instance import TAPSolution

    solution = TAPSolution(
        tuple(solution_data["indices"]),
        solution_data["interest"],
        solution_data["cost"],
        solution_data["distance"],
        optimal=solution_data.get("optimal", False),
    )
    selected = [outcome.queries[i] for i in solution.indices]
    report = None
    if data.get("report") is not None:
        report = RunReport.from_dict(data["report"])
    return NotebookRun(
        outcome, solution, selected, data["budget"], data["epsilon_distance"],
        report=report,
    )


# ---------------------------------------------------------------------------
# Stage-level checkpoints (the resilient runtime's resume unit)
# ---------------------------------------------------------------------------


def _tested_to_dict(tested: TestedInsight) -> dict:
    candidate = tested.candidate
    return {
        "measure": candidate.measure,
        "attribute": candidate.attribute,
        "val": candidate.val,
        "val_other": candidate.val_other,
        "type": candidate.type_code,
        "statistic": tested.statistic,
        "p_value": tested.p_value,
        "p_adjusted": tested.p_adjusted,
    }


def _tested_from_dict(data: dict) -> TestedInsight:
    candidate = CandidateInsight(
        data["measure"], data["attribute"], data["val"], data["val_other"], data["type"]
    )
    return TestedInsight(candidate, data["statistic"], data["p_value"], data["p_adjusted"])


def stats_stage_to_dict(stats: StatsStageResult) -> dict:
    """JSON-ready snapshot of a completed statistical stage."""
    return {
        "significant": [_tested_to_dict(t) for t in stats.significant],
        "excluded_pairs": sorted(sorted(pair) for pair in stats.excluded_pairs),
        "timings": stats.timings.as_dict(),
        "counters": dict(stats.counters),
    }


def stats_stage_from_dict(data: dict) -> StatsStageResult:
    try:
        significant = [_tested_from_dict(d) for d in data["significant"]]
        excluded = {frozenset(pair) for pair in data.get("excluded_pairs", [])}
        timings = PhaseTimings(**data.get("timings", {}))
        return StatsStageResult(significant, excluded, timings, dict(data.get("counters", {})))
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed stats checkpoint: {exc}") from exc


@dataclass(slots=True)
class RunCheckpoint:
    """A loaded stage checkpoint: what completed, ready to resume from.

    ``stage`` names the last completed stage (``"stats"``,
    ``"generation"``, or ``"stats-partial"`` — a mid-stage snapshot of
    completed stats shards); the matching payload field is populated.
    The TAP and render stages are cheap and always re-run on resume.
    """

    stage: str
    stats: StatsStageResult | None = None
    outcome: GenerationOutcome | None = None
    report: RunReport | None = None
    source: Path | None = None
    #: ``stats-partial`` only: completed shards keyed by shard id, and the
    #: config token they were produced under (mismatched tokens are
    #: ignored on resume rather than mixing incompatible test results).
    partial_shards: dict[str, tuple[list, list]] = field(default_factory=dict)
    partial_token: str | None = None
    #: The run's per-family stats memo, when the checkpointed run was
    #: memoizable — the seed of a ``--since-checkpoint`` incremental run.
    memo: StatsMemo | None = None


def _candidate_to_dict(candidate: CandidateInsight) -> dict:
    return {
        "measure": candidate.measure,
        "attribute": candidate.attribute,
        "val": candidate.val,
        "val_other": candidate.val_other,
        "type": candidate.type_code,
    }


def _candidate_from_dict(data: dict) -> CandidateInsight:
    return CandidateInsight(
        data["measure"], data["attribute"], data["val"], data["val_other"], data["type"]
    )


def stats_config_token(config: GenerationConfig, n_rows: int) -> str:
    """Fingerprint of everything that shapes stats-shard ids and contents.

    A ``stats-partial`` checkpoint is only reusable when the resumed run
    would cut identical shards and test them identically; any drift in
    these fields silently invalidates the partial state (the shards are
    re-run, never mixed).
    """
    significance = config.significance
    payload = {
        "n_rows": n_rows,
        "backend": config.backend,
        "insight_types": list(config.insight_types),
        "max_pairs_per_attribute": config.max_pairs_per_attribute,
        "sampling": (
            [config.sampling.strategy, config.sampling.rate]
            if config.sampling is not None else None
        ),
        "significance": {
            "n_permutations": significance.n_permutations,
            "threshold": significance.threshold,
            "engine": significance.engine,
            "apply_bh": significance.apply_bh,
            "share_across_pairs": significance.share_across_pairs,
            "seed": significance.seed,
            "kernel": significance.kernel,
        },
        "chunk_size": config.effective_parallel().chunk_size,
    }
    digest = hashlib.blake2s(
        json.dumps(payload, sort_keys=True).encode("utf-8"), digest_size=8
    )
    return digest.hexdigest()


class PersistentShardStore(ShardStore):
    """A :class:`~repro.parallel.shards.ShardStore` backed by a checkpoint file.

    Every completed stats shard rewrites the ``stats-partial`` checkpoint
    (atomically), so a run killed mid-stage resumes from its last finished
    shard.  The file is superseded by the regular ``stats`` checkpoint the
    controller writes once the stage completes.
    """

    def __init__(
        self,
        path: str | Path,
        token: str,
        completed: dict[str, tuple[list, list]] | None = None,
    ):
        super().__init__(completed)
        self._path = Path(path)
        self._token = token

    @classmethod
    def open(cls, path: str | Path, token: str,
             resume: RunCheckpoint | None = None) -> "PersistentShardStore":
        """A store at ``path``, preloaded from a matching partial resume."""
        completed = None
        if resume is not None and resume.stage == "stats-partial":
            if resume.partial_token == token:
                completed = resume.partial_shards
            else:
                import logging

                logging.getLogger(__name__).warning(
                    "ignoring stats-partial checkpoint: config token %s does "
                    "not match this run's %s", resume.partial_token, token,
                )
        return cls(path, token, completed)

    def put(self, shard_id, oriented, results) -> None:
        super().put(shard_id, oriented, results)
        self._write()

    def _write(self) -> None:
        shards = {}
        for shard_id, (oriented, results) in sorted(self._completed.items()):
            shards[shard_id] = {
                "candidates": [_candidate_to_dict(c) for c in oriented],
                "results": [[r.statistic, r.p_value] for r in results],
            }
        data = {
            "schema_version": CHECKPOINT_VERSION,
            "kind": "checkpoint",
            "stage": "stats-partial",
            "token": self._token,
            "shards": shards,
        }
        scratch = self._path.with_name(self._path.name + ".tmp")
        scratch.write_text(json.dumps(data, indent=1), encoding="utf-8")
        scratch.replace(self._path)


def _partial_shards_from_dict(data: dict) -> dict[str, tuple[list, list]]:
    shards: dict[str, tuple[list, list]] = {}
    for shard_id, payload in data.items():
        oriented = [_candidate_from_dict(c) for c in payload["candidates"]]
        results = [TestResult(float(s), float(p)) for s, p in payload["results"]]
        if len(oriented) != len(results):
            raise PersistenceError(
                f"shard {shard_id!r} has {len(oriented)} candidates but "
                f"{len(results)} results"
            )
        shards[shard_id] = (oriented, results)
    return shards


def save_checkpoint(
    path: str | Path,
    stats: StatsStageResult | None = None,
    outcome: GenerationOutcome | None = None,
    report: RunReport | None = None,
    memo: StatsMemo | None = None,
) -> None:
    """Write a stage snapshot; the generation outcome supersedes stats.

    ``memo`` rides along when the run was memoizable: a later
    ``--since-checkpoint`` run over a grown copy of the same data reuses
    it to re-test only the pair families the appended rows touched.

    The write goes through a temporary file and an atomic rename so a
    crash mid-checkpoint never leaves a truncated file behind.
    """
    if outcome is None and stats is None:
        raise PersistenceError("a checkpoint needs a stats result or an outcome")
    data: dict = {
        "schema_version": CHECKPOINT_VERSION,
        "kind": "checkpoint",
        "stage": "generation" if outcome is not None else "stats",
    }
    if outcome is not None:
        data["outcome"] = outcome_to_dict(outcome)
    elif stats is not None:
        data["stats"] = stats_stage_to_dict(stats)
    if report is not None:
        data["report"] = report.as_dict()
    if memo is not None:
        data["incremental"] = memo.to_dict()
    path = Path(path)
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_text(json.dumps(data, indent=1), encoding="utf-8")
    scratch.replace(path)


def load_checkpoint(path: str | Path) -> RunCheckpoint:
    """Load a stage checkpoint written by :func:`save_checkpoint`.

    Every way the file can be unusable — deleted, unreadable, truncated,
    binary-corrupt, or structurally wrong — raises
    :class:`PersistenceError` with the path and the reason, so callers
    (the CLI's ``--resume``, the serving layer) turn it into a clean
    error instead of an unhandled traceback.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise PersistenceError(
            f"checkpoint {path} does not exist (deleted, or never written); "
            "re-run without --resume"
        ) from None
    except OSError as exc:
        raise PersistenceError(f"checkpoint {path} is not readable: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise PersistenceError(
            f"checkpoint {path} is corrupt (not UTF-8 text): {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != "checkpoint":
        raise PersistenceError(f"{path} is not a stage checkpoint")
    version = data.get("schema_version")
    if version != CHECKPOINT_VERSION:
        raise PersistenceError(
            f"unsupported checkpoint version {version!r} (expected {CHECKPOINT_VERSION})"
        )
    stage = data.get("stage")
    if stage not in ("stats", "generation", "stats-partial"):
        raise PersistenceError(f"checkpoint names unknown stage {stage!r}")
    stats = None
    outcome = None
    partial: dict[str, tuple[list, list]] = {}
    token = None
    if stage == "generation":
        if not isinstance(data.get("outcome"), dict):
            raise PersistenceError(
                f"checkpoint {path} names stage 'generation' but carries no outcome"
            )
        outcome = outcome_from_dict(data["outcome"])
    elif stage == "stats":
        if not isinstance(data.get("stats"), dict):
            raise PersistenceError(
                f"checkpoint {path} names stage 'stats' but carries no stats payload"
            )
        stats = stats_stage_from_dict(data["stats"])
    else:
        try:
            partial = _partial_shards_from_dict(data.get("shards", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"malformed stats-partial checkpoint: {exc}") from exc
        token = data.get("token")
    try:
        report = RunReport.from_dict(data["report"]) if data.get("report") else None
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise PersistenceError(
            f"checkpoint {path} carries a malformed run report: {exc}"
        ) from exc
    memo = None
    if data.get("incremental") is not None:
        # The memo is an optimization seed, never a correctness input: a
        # malformed or stale payload downgrades to a full run, not an error.
        try:
            memo = StatsMemo.from_dict(data["incremental"])
        except (KeyError, TypeError, ValueError) as exc:
            logger.warning(
                "ignoring malformed incremental payload in checkpoint %s: %s",
                path, exc,
            )
    return RunCheckpoint(stage, stats=stats, outcome=outcome, report=report,
                         source=path, partial_shards=partial, partial_token=token,
                         memo=memo)


def resolve_outcome(
    outcome: GenerationOutcome,
    budget: float,
    epsilon_distance: float | None = None,
    weights: DistanceWeights = DEFAULT_WEIGHTS,
) -> NotebookRun:
    """Re-solve the TAP over a (loaded) outcome — no statistics re-run."""
    if epsilon_distance is None:
        epsilon_distance = DEFAULT_EPSILON_PER_QUERY * max(1.0, budget - 1.0)
    queries = outcome.queries

    def distance_of(i: int, j: int) -> float:
        return query_distance(queries[i].query, queries[j].query, weights)

    solution = solve_heuristic_lazy(
        [g.interest for g in queries],
        [1.0] * len(queries),
        distance_of,
        HeuristicConfig(budget, epsilon_distance),
    )
    selected = [queries[i] for i in solution.indices]
    return NotebookRun(outcome, solution, selected, budget, epsilon_distance)
