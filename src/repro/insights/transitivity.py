"""Transitivity pruning of deducible insights (Section 3.3).

For order-like insight types (mean, variance, median), significant insights
within one (measure, attribute, type) family form a directed graph over the
attribute's values: an edge ``val -> val'`` for each insight "val dominates
val'".  If ``x > y`` and ``y > z`` are retained, ``x > z`` is deducible and
can be pruned.  Pruning keeps exactly the edges of the transitive
*reduction* of each family's DAG.

The orientation step guarantees acyclicity within a family (edges follow
the observed statistic, which is a fixed total preorder of the values); if
a cycle nevertheless appears (ties broken inconsistently by sampling), the
family is left unpruned rather than guessing which edge to drop.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.insights.insight import TestedInsight


def _family_key(insight: TestedInsight) -> tuple[str, str, str]:
    candidate = insight.candidate
    return (candidate.measure, candidate.attribute, candidate.type_code)


def prune_transitive(insights: Sequence[TestedInsight]) -> list[TestedInsight]:
    """Remove insights deducible by transitivity, per family.

    Returns the retained insights in their original order.  Families whose
    dominance graph is not a DAG are kept whole (see module docstring).
    """
    families: dict[tuple[str, str, str], list[TestedInsight]] = {}
    for insight in insights:
        families.setdefault(_family_key(insight), []).append(insight)

    keep: set[int] = set()
    for family in families.values():
        keep.update(id(i) for i in _prune_family(family))
    return [i for i in insights if id(i) in keep]


def _prune_family(family: list[TestedInsight]) -> list[TestedInsight]:
    if len(family) <= 1:
        return family
    graph = nx.DiGraph()
    edge_to_insight: dict[tuple[str, str], TestedInsight] = {}
    for insight in family:
        edge = (insight.candidate.val, insight.candidate.val_other)
        graph.add_edge(*edge)
        # Keep the most significant duplicate if the same edge repeats.
        existing = edge_to_insight.get(edge)
        if existing is None or insight.significance > existing.significance:
            edge_to_insight[edge] = insight
    if not nx.is_directed_acyclic_graph(graph):
        return family
    reduced = nx.transitive_reduction(graph)
    return [edge_to_insight[edge] for edge in reduced.edges if edge in edge_to_insight]


def deducible_count(insights: Sequence[TestedInsight]) -> int:
    """How many insights pruning would remove (for reporting/ablation)."""
    return len(insights) - len(prune_transitive(insights))
