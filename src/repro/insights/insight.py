"""The insight value object (Definition 3.4) and its tested form.

An insight ``i = (M, B, val, val', p)`` declares that measure ``M``
dominates (mean- or variance-wise) for ``B = val`` over ``B = val'``.
:class:`CandidateInsight` is the untested enumeration unit;
:class:`TestedInsight` attaches the permutation-test outcome, the
BH-corrected significance, and (later) the credibility evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.insights.types import InsightType


@dataclass(frozen=True, slots=True)
class CandidateInsight:
    """An insight candidate before statistical testing.

    ``val`` is the dominant side of the one-sided hypothesis: the candidate
    postulates ``stat(M | B=val) > stat(M | B=val')``.
    """

    measure: str
    attribute: str
    val: str
    val_other: str
    type_code: str

    @property
    def key(self) -> tuple[str, str, str, str, str]:
        """Identity tuple (measure, attribute, val, val', type)."""
        return (self.measure, self.attribute, self.val, self.val_other, self.type_code)

    @property
    def pair_key(self) -> tuple[str, frozenset[str]]:
        """Selection pair identity: (attribute, {val, val'}) — unordered."""
        return (self.attribute, frozenset((self.val, self.val_other)))

    def describe(self, insight_type: InsightType) -> str:
        """One-line human statement, e.g. for notebook narration."""
        return (
            f"{insight_type.label} of {self.measure} for "
            f"{self.attribute}={self.val} over {self.attribute}={self.val_other}"
        )


@dataclass(frozen=True, slots=True)
class TestedInsight:
    """An insight with its statistical evidence attached.

    Attributes
    ----------
    candidate:
        The identity of the insight.
    statistic:
        Observed test statistic on the (possibly sampled) base data.
    p_value:
        Raw permutation p-value.
    p_adjusted:
        Benjamini–Hochberg adjusted p-value (within the attribute's family).
    """

    __test__ = False  # name starts with "Test"; tell pytest it is not one

    candidate: CandidateInsight
    statistic: float
    p_value: float
    p_adjusted: float

    @property
    def significance(self) -> float:
        """The paper's ``sig(i) = 1 - p`` (on the corrected p-value)."""
        return 1.0 - self.p_adjusted

    def is_significant(self, threshold: float = 0.95) -> bool:
        """Significance test used throughout the paper: ``sig(i) >= 0.95``."""
        return self.significance >= threshold

    @property
    def key(self) -> tuple[str, str, str, str, str]:
        return self.candidate.key


@dataclass(slots=True)
class InsightEvidence:
    """Mutable credibility bookkeeping for one significant insight.

    ``n_supporting`` counts hypothesis queries that support the insight;
    ``n_postulating`` is ``|Q^i|`` — the number of hypothesis queries
    postulating it (``n - 1`` grouping attributes, times the number of
    aggregate functions when more than one is enabled).
    """

    insight: TestedInsight
    n_supporting: int = 0
    n_postulating: int = 0

    @property
    def credibility(self) -> int:
        """Definition 3.11: the number of supporting hypothesis queries."""
        return self.n_supporting

    @property
    def credibility_ratio(self) -> float:
        """``credibility(i) / |Q^i|`` — 0 when nothing postulates it."""
        if self.n_postulating == 0:
            return 0.0
        return self.n_supporting / self.n_postulating

    @property
    def type_two_error_probability(self) -> float:
        """P(type II error) = ``1 - credibility/|Q^i|`` given significance."""
        return 1.0 - self.credibility_ratio
