"""Candidate-insight enumeration and the paper's counting lemmas.

Lemma 3.5: the number of insights over ``R[A1..An, M1..Mm]`` with ``T``
insight types is ``sum_i C(|dom(Ai)|, 2) * m * T``.  Enumeration yields one
*candidate per unordered value pair*; the dominant direction is decided by
the observed statistic when the candidate is tested (a one-sided test in
the direction the data suggests, as a user eyeballing the chart would).

Lemma 3.2: the number of comparison queries adds the choice of grouping
attribute (``n - 1``) and aggregate function (``f``).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterable, Iterator, Sequence

from repro.errors import InsightError
from repro.insights.insight import CandidateInsight
from repro.insights.types import InsightType, resolve_insight_types
from repro.relational.table import Table


def count_insights(adom_sizes: Sequence[int], n_measures: int, n_types: int) -> int:
    """Lemma 3.5: total insights for the given active-domain sizes."""
    if n_measures < 0 or n_types < 0:
        raise InsightError("counts must be non-negative")
    return sum(comb(size, 2) for size in adom_sizes) * n_measures * n_types


def count_comparison_queries(
    adom_sizes: Sequence[int], n_measures: int, n_aggregates: int
) -> int:
    """Lemma 3.2: total comparison queries (grouping attribute choices x aggs).

    ``sum_i C(|dom(Ai)|, 2) * (n - 1) * m * f`` with ``n = len(adom_sizes)``.
    """
    n = len(adom_sizes)
    if n < 2:
        return 0
    return sum(comb(size, 2) for size in adom_sizes) * (n - 1) * n_measures * n_aggregates


def count_hypothesis_queries_per_insight(n_categorical: int, n_aggregates: int = 1) -> int:
    """``|Q^i|``: hypothesis queries postulating one insight.

    The paper states ``|Q^i| = n - 1`` (one per grouping attribute); with
    ``f`` aggregate functions enabled each grouping attribute contributes
    ``f`` hypothesis queries, so the general count is ``(n - 1) * f``.
    """
    return max(0, n_categorical - 1) * n_aggregates


def table_adom_sizes(table: Table) -> dict[str, int]:
    """Active-domain size of every categorical attribute."""
    return {name: table.n_distinct(name) for name in table.schema.categorical_names}


def enumerate_candidates(
    table: Table,
    insight_types: Iterable[InsightType | str] | None = None,
    attributes: Sequence[str] | None = None,
    measures: Sequence[str] | None = None,
    max_pairs_per_attribute: int | None = None,
) -> Iterator[CandidateInsight]:
    """Yield every candidate insight of ``table`` (Algorithm 1's outer loop).

    Pairs are unordered at this stage (``val < val'`` lexicographically);
    orientation is fixed by the observed statistic during testing.
    ``max_pairs_per_attribute`` truncates enumeration for very large active
    domains (an explicit cap — callers log when it kicks in).
    """
    types = resolve_insight_types(insight_types)
    cat_names = list(attributes if attributes is not None else table.schema.categorical_names)
    measure_names = list(measures if measures is not None else table.schema.measure_names)
    if not measure_names:
        raise InsightError("the relation has no measures to build insights on")
    for attribute in cat_names:
        table.schema.require_categorical(attribute)
        values = sorted(set(table.categorical_column(attribute).values()) - {""})
        pair_count = 0
        for val, val_other in combinations(values, 2):
            if max_pairs_per_attribute is not None and pair_count >= max_pairs_per_attribute:
                break
            pair_count += 1
            for measure_name in measure_names:
                table.schema.require_measure(measure_name)
                for itype in types:
                    yield CandidateInsight(measure_name, attribute, val, val_other, itype.code)
