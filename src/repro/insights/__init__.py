"""Insight framework: types, enumeration, significance, transitivity."""

from repro.insights.enumeration import (
    count_comparison_queries,
    count_hypothesis_queries_per_insight,
    count_insights,
    enumerate_candidates,
    table_adom_sizes,
)
from repro.insights.insight import CandidateInsight, InsightEvidence, TestedInsight
from repro.insights.significance import (
    SignificanceConfig,
    family_chunks,
    finalize_attribute,
    run_attribute_chunk,
    run_attribute_significance,
    run_significance_tests,
    significant_insights,
)
from repro.insights.transitivity import deducible_count, prune_transitive
from repro.insights.types import (
    DEFAULT_INSIGHT_TYPES,
    MEAN_GREATER,
    MEDIAN_GREATER,
    VARIANCE_GREATER,
    InsightType,
    MeanGreater,
    MedianGreater,
    VarianceGreater,
    insight_type,
    register_insight_type,
    registered_insight_types,
    resolve_insight_types,
)

__all__ = [
    "DEFAULT_INSIGHT_TYPES",
    "MEAN_GREATER",
    "MEDIAN_GREATER",
    "VARIANCE_GREATER",
    "CandidateInsight",
    "InsightEvidence",
    "InsightType",
    "MeanGreater",
    "MedianGreater",
    "SignificanceConfig",
    "TestedInsight",
    "VarianceGreater",
    "count_comparison_queries",
    "count_hypothesis_queries_per_insight",
    "count_insights",
    "deducible_count",
    "enumerate_candidates",
    "insight_type",
    "prune_transitive",
    "register_insight_type",
    "registered_insight_types",
    "resolve_insight_types",
    "significant_insights",
    "table_adom_sizes",
    "family_chunks",
    "finalize_attribute",
    "run_attribute_chunk",
    "run_attribute_significance",
    "run_significance_tests",
]
