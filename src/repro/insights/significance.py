"""Statistical testing of candidate insights (Algorithm 1, line 3).

The runner implements the paper's optimizations from Section 5.1:

* permutation batches are *shared* across all measures and insight types of
  a selection pair (Section 5.1.1), and — one step further — across pairs
  with identical sample sizes (a permutation batch depends only on the two
  sizes, never on the data);
* p-values are corrected per attribute family with Benjamini–Hochberg;
* tests may run on an offline sample of the relation (Section 5.1.2) —
  callers pass the sampled table here and keep the full table for
  credibility/interestingness.

Orientation: enumeration yields unordered pairs; the runner orients each
insight in the direction of the observed statistic (the direction a user
looking at the chart would postulate), then tests one-sided.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.errors import StatisticsError
from repro.insights.enumeration import enumerate_candidates
from repro.insights.insight import CandidateInsight, TestedInsight
from repro.insights.types import InsightType, insight_type
from repro.stats.corrections import benjamini_hochberg
from repro.stats.kernel import (
    KERNEL_NAMES,
    KernelTest,
    default_stats_kernel,
    run_batched_tests,
)
from repro.stats.permutation import DEFAULT_PERMUTATIONS, SharedPermutations, TestResult
from repro.stats.rng import DEFAULT_SEED, derive_rng
from repro.relational.table import Table

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class SignificanceConfig:
    """Settings for the significance runner.

    Attributes
    ----------
    n_permutations:
        Label permutations per test (permutation engine only).
    threshold:
        ``sig(i) >= threshold`` marks an insight significant (paper: 0.95).
    engine:
        ``"permutation"`` (paper default) or ``"parametric"`` (ablation).
    apply_bh:
        Benjamini–Hochberg correction per attribute family (paper default
        True; False is the correction ablation).
    share_across_pairs:
        Reuse permutation batches between pairs with equal sample sizes.
        Always statistically sound (batches are data-independent); disable
        to measure the sharing speedup.
    seed:
        Root seed for permutation generation.
    kernel:
        ``"batched"`` (mask-GEMM moment sums, the default) or ``"legacy"``
        (per-test gathers).  Both produce identical results — the batched
        kernel is a pure execution-strategy change; parity is enforced in
        tests and the ``REPRO_STATS_KERNEL`` CI matrix.
    """

    n_permutations: int = DEFAULT_PERMUTATIONS
    threshold: float = 0.95
    engine: str = "permutation"
    apply_bh: bool = True
    share_across_pairs: bool = True
    seed: int = DEFAULT_SEED
    kernel: str = field(default_factory=default_stats_kernel)

    def __post_init__(self) -> None:
        if self.engine not in ("permutation", "parametric"):
            raise StatisticsError(f"unknown test engine {self.engine!r}")
        if not 0 < self.threshold < 1:
            raise StatisticsError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.kernel not in KERNEL_NAMES:
            raise StatisticsError(
                f"unknown stats kernel {self.kernel!r}; known: {KERNEL_NAMES}"
            )


class _BatchCache:
    """Permutation batches keyed by (n_x, n_y).

    Each batch's RNG is *derived from its key* (seed, attribute, sizes)
    rather than drawn from a shared sequential stream, so results are
    identical however the candidate list is chunked or parallelized.
    """

    def __init__(self, seed: int, attribute: str, n_permutations: int, share: bool):
        self._seed = seed
        self._attribute = attribute
        self._n_permutations = n_permutations
        self._share = share
        self._cache: dict[tuple[int, int], SharedPermutations] = {}
        self._fresh_counter = 0

    def _make(self, n_x: int, n_y: int, extra: object = None) -> SharedPermutations:
        rng = derive_rng(self._seed, "perm-batch", self._attribute, n_x, n_y, extra)
        return SharedPermutations(n_x, n_y, self._n_permutations, rng)

    def get(self, n_x: int, n_y: int) -> SharedPermutations:
        if not self._share:
            self._fresh_counter += 1
            return self._make(n_x, n_y, self._fresh_counter)
        key = (n_x, n_y)
        batch = self._cache.get(key)
        if batch is None:
            batch = self._make(n_x, n_y)
            self._cache[key] = batch
        else:
            obs.counter("stats.permutation_batches_reused").inc()
        return batch


def _value_row_index(codes: np.ndarray) -> dict[int, np.ndarray]:
    """code -> row indices, computed in one stable pass."""
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    index: dict[int, np.ndarray] = {}
    for chunk in np.split(order, boundaries):
        code = int(codes[chunk[0]])
        if code >= 0:
            index[code] = chunk
    return index


def run_significance_tests(
    table: Table,
    candidates: Iterable[CandidateInsight],
    config: SignificanceConfig | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[TestedInsight]:
    """Test every candidate insight against ``table``.

    Returns one :class:`TestedInsight` per candidate, *oriented* toward the
    observed dominant side, with per-attribute BH-adjusted p-values.
    Candidates whose samples are unusable (an empty side) are dropped.
    """
    config = config or SignificanceConfig()
    by_attribute: dict[str, list[CandidateInsight]] = {}
    total = 0
    for candidate in candidates:
        by_attribute.setdefault(candidate.attribute, []).append(candidate)
        total += 1

    # Per-candidate progress: one large attribute family no longer holds the
    # callback hostage until its whole group is tested.
    done = 0
    advance: Callable[[int], None] | None = None
    if progress is not None:
        def advance(n: int) -> None:
            nonlocal done
            done += n
            progress(done, total)

    tested: list[TestedInsight] = []
    for attribute, group in by_attribute.items():
        tested.extend(
            _test_attribute_group(table, attribute, group, config, progress=advance)
        )
    if progress is not None and done != total:  # pragma: no cover - safety net
        progress(total, total)
    return tested


def run_attribute_significance(
    table: Table,
    attribute: str,
    candidates: Sequence[CandidateInsight],
    config: SignificanceConfig | None = None,
    checkpoint: Callable[[], None] | None = None,
) -> list[TestedInsight]:
    """Test the candidates of a single attribute (the multithreading unit)."""
    config = config or SignificanceConfig()
    return _test_attribute_group(table, attribute, list(candidates), config, checkpoint)


def _test_attribute_group(
    table: Table,
    attribute: str,
    group: list[CandidateInsight],
    config: SignificanceConfig,
    checkpoint: Callable[[], None] | None = None,
    progress: Callable[[int], None] | None = None,
) -> list[TestedInsight]:
    oriented, results = run_attribute_chunk(
        table, attribute, group, config, checkpoint, progress
    )
    return finalize_attribute(oriented, results, config)


def family_chunks(
    candidates: Sequence[CandidateInsight], chunk_size: int
) -> list[list[CandidateInsight]]:
    """Contiguous chunks of ~``chunk_size``, cut only at pair-family borders.

    Enumeration yields all candidates of a ``(val, val')`` selection pair
    contiguously; cutting only where the pair changes feeds the batched
    kernel whole pair-families per worker while preserving candidate order,
    so chunked (threaded or process-pool) runs remain result-identical to
    unchunked runs.
    """
    if chunk_size < 1:
        raise StatisticsError("chunk_size must be at least 1")
    chunks: list[list[CandidateInsight]] = []
    current: list[CandidateInsight] = []
    for candidate in candidates:
        if (
            len(current) >= chunk_size
            and candidate.pair_key != current[-1].pair_key
        ):
            chunks.append(current)
            current = []
        current.append(candidate)
    if current:
        chunks.append(current)
    return chunks


def run_attribute_chunk(
    table: Table,
    attribute: str,
    group: Sequence[CandidateInsight],
    config: SignificanceConfig | None = None,
    checkpoint: Callable[[], None] | None = None,
    progress: Callable[[int], None] | None = None,
) -> tuple[list[CandidateInsight], list[TestResult]]:
    """Raw (uncorrected) tests for a chunk of one attribute's candidates.

    The parallel unit: chunks of the same attribute can run on different
    workers and be merged before :func:`finalize_attribute` applies the
    BH correction over the whole family.  Results are independent of the
    chunking (permutation batches are key-derived, not stream-drawn).

    With the batched kernel the loop only *plans* tests — orientation, NaN
    cleaning, and batch lookup exactly as the legacy path — and the pending
    tests of each shared batch are then executed together through the
    mask-GEMM kernel (:func:`repro.stats.kernel.run_batched_tests`).
    Planning performs the same :class:`_BatchCache` lookups in the same
    order as the legacy path, so both kernels consume identical
    permutations and return identical results in identical order.

    ``checkpoint`` is called once per candidate (and between kernel
    slices) — the cooperative cancellation hook of the resilient runtime
    (it raises :class:`~repro.errors.DeadlineExceeded` past the run
    deadline).  ``progress`` is called with the number of candidates
    retired as they are (per candidate, or per batch group at the end of a
    batched chunk).
    """
    config = config or SignificanceConfig()
    batched = config.engine == "permutation" and config.kernel == "batched"
    advance = progress or (lambda n: None)
    with obs.span(
        "stats.test_attribute",
        attribute=attribute, candidates=len(group), kernel=config.kernel,
    ) as chunk_span:
        column = table.categorical_column(attribute)
        row_index = _value_row_index(column.codes)
        measures = {name: table.measure_values(name) for name in table.schema.measure_names}
        batches = _BatchCache(
            config.seed, attribute, config.n_permutations, config.share_across_pairs
        )

        oriented: list[CandidateInsight] = []
        results: list[TestResult | None] = []
        # Batched mode: planned tests per shared batch, in planning order.
        pending: dict[int, tuple[SharedPermutations, list[KernelTest]]] = {}
        for candidate in group:
            if checkpoint is not None:
                checkpoint()
            itype = insight_type(candidate.type_code)
            code_x = column.code_of(candidate.val)
            code_y = column.code_of(candidate.val_other)
            rows_x = row_index.get(code_x)
            rows_y = row_index.get(code_y)
            if rows_x is None or rows_y is None:
                advance(1)
                continue
            values = measures.get(candidate.measure)
            if values is None:
                raise StatisticsError(f"unknown measure {candidate.measure!r}")
            x = values[rows_x]
            y = values[rows_y]
            x = x[~np.isnan(x)]
            y = y[~np.isnan(y)]
            if x.size == 0 or y.size == 0:
                advance(1)
                continue
            # Orient toward the observed dominant side.
            statistic = itype.observed_statistic(x, y)
            if np.isnan(statistic):
                advance(1)
                continue
            if statistic >= 0:
                side_x, side_y = x, y
                final = candidate
            else:
                side_x, side_y = y, x
                final = CandidateInsight(
                    candidate.measure,
                    candidate.attribute,
                    candidate.val_other,
                    candidate.val,
                    candidate.type_code,
                )
            if config.engine == "parametric":
                oriented.append(final)
                results.append(itype.parametric_test(side_x, side_y))
                advance(1)
                continue
            batch = batches.get(side_x.size, side_y.size)
            if not batched:
                oriented.append(final)
                results.append(itype.test(batch, side_x, side_y))
                advance(1)
                continue
            slot = len(results)
            oriented.append(final)
            results.append(None)
            observed = itype.observed_statistic(side_x, side_y)
            entry = pending.get(id(batch))
            if entry is None:
                entry = (batch, [])
                pending[id(batch)] = entry
            entry[1].append(
                KernelTest(slot, itype, np.concatenate([side_x, side_y]), observed)
            )
        for batch, planned in pending.values():
            for slot, result in run_batched_tests(batch, planned, checkpoint, progress):
                results[slot] = result
        chunk_span.set(tested=len(results))

    return oriented, results


def finalize_attribute(
    oriented: Sequence[CandidateInsight],
    results: Sequence[TestResult],
    config: SignificanceConfig | None = None,
) -> list[TestedInsight]:
    """Apply the per-attribute-family BH correction to merged chunk results."""
    config = config or SignificanceConfig()
    if not oriented:
        return []
    raw_p = [r.p_value for r in results]
    if config.apply_bh:
        with obs.span(
            "stats.bh_correction",
            attribute=oriented[0].attribute, family_size=len(raw_p),
        ):
            adjusted = benjamini_hochberg(raw_p)
    else:
        adjusted = np.asarray(raw_p)
    return [
        TestedInsight(candidate, result.statistic, result.p_value, float(adj))
        for candidate, result, adj in zip(oriented, results, adjusted)
    ]


def significant_insights(
    table: Table,
    insight_types: Iterable[InsightType | str] | None = None,
    config: SignificanceConfig | None = None,
    attributes: Sequence[str] | None = None,
    measures: Sequence[str] | None = None,
    max_pairs_per_attribute: int | None = None,
) -> list[TestedInsight]:
    """Enumerate, test, and filter: the significant insights of a relation."""
    config = config or SignificanceConfig()
    candidates = enumerate_candidates(
        table,
        insight_types=insight_types,
        attributes=attributes,
        measures=measures,
        max_pairs_per_attribute=max_pairs_per_attribute,
    )
    tested = run_significance_tests(table, candidates, config)
    return [t for t in tested if t.is_significant(config.threshold)]
