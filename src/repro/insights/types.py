"""Insight types and their testing/supporting semantics.

Definition 3.4 of the paper makes an insight type "a name giving the
semantics of an insight"; the paper instantiates two — *mean greater*
(``M``) and *variance greater* (``V``) — and explicitly leaves the
framework open to more (Section 7 lists the three ingredients: a SQL
hypothesis predicate, a statistical test, and the measure adaptations).

:class:`InsightType` bundles exactly those ingredients:

* :meth:`test` — the one-sided permutation test on raw data (Table 1);
* :meth:`supports` — the predicate ``p`` evaluated on the two aggregated
  series of a comparison-query result (Definition 3.8);
* :meth:`hypothesis_predicate_sql` — the SQL rendering of ``p`` used in
  hypothesis queries (Figure 3).

A registry maps the one-letter codes to instances.  ``MEDIAN_GREATER`` is
provided as a worked example of the paper's extension path and is *not*
enabled by default.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from repro.errors import InsightError
from repro.stats.parametric import f_variance_greater, welch_mean_greater
from repro.stats.permutation import (
    SharedPermutations,
    TestResult,
    _one_sided,
    mean_stat_from_moments,
    variance_stat_from_moments,
)


class InsightType(abc.ABC):
    """Semantics of one insight family (test + support predicate + SQL)."""

    #: Short registry code, e.g. ``"M"``.
    code: str
    #: Human-readable label used in hypothesis queries, e.g. ``"mean greater"``.
    label: str
    #: Null hypothesis, for documentation / Table 1 rendering.
    null_hypothesis: str
    #: Test statistic description, for documentation / Table 1 rendering.
    statistic_name: str
    #: Highest pooled-moment order the batched kernel must supply for this
    #: type (1 = first moment, 2 = first + second).  0 opts the type out of
    #: mask-GEMM batching; the kernel then falls back to :meth:`test`.
    moment_order: int = 0

    def statistic_from_moments(
        self,
        x_sums: tuple[np.ndarray, ...],
        totals: tuple[float, ...],
        n_x: int,
        n_y: int,
    ) -> np.ndarray:
        """Per-permutation statistics from X-side pooled-moment sums.

        ``x_sums[k]`` holds, for every permutation, the X-side sum of the
        pooled values raised to the power ``k + 1``; ``totals[k]`` the
        matching pooled total.  Only called when ``moment_order > 0``; must
        evaluate the same floating-point expression as :meth:`test` so the
        batched and legacy kernels agree exactly.
        """
        raise NotImplementedError(
            f"insight type {self.code!r} declares moment_order="
            f"{self.moment_order} but no statistic_from_moments"
        )

    @abc.abstractmethod
    def test(self, batch: SharedPermutations, x: np.ndarray, y: np.ndarray) -> TestResult:
        """One-sided permutation test that X dominates Y for this type."""

    @abc.abstractmethod
    def parametric_test(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        """Parametric counterpart (used by the ablation engine)."""

    @abc.abstractmethod
    def observed_statistic(self, x: np.ndarray, y: np.ndarray) -> float:
        """Signed statistic on raw data; > 0 means X dominates Y."""

    @abc.abstractmethod
    def supports(self, x_series: np.ndarray, y_series: np.ndarray) -> bool:
        """Predicate ``p`` over the aggregated series of a comparison query."""

    @abc.abstractmethod
    def hypothesis_predicate_sql(self, x_column: str, y_column: str) -> str:
        """SQL text of ``p`` for the HAVING clause of a hypothesis query."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(code={self.code!r})"


def _finite(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    return values[~np.isnan(values)]


class MeanGreater(InsightType):
    """Type ``M``: ``avg(val) > avg(val')`` (Definition 3.4)."""

    code = "M"
    label = "mean greater"
    null_hypothesis = "E[X] = E[Y]"
    statistic_name = "|mu_X - mu_Y|"
    moment_order = 1

    def test(self, batch: SharedPermutations, x: np.ndarray, y: np.ndarray) -> TestResult:
        return batch.mean_greater(x, y)

    def statistic_from_moments(self, x_sums, totals, n_x, n_y):
        return mean_stat_from_moments(x_sums[0], totals[0], n_x, n_y)

    def parametric_test(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        return welch_mean_greater(x, y)

    def observed_statistic(self, x: np.ndarray, y: np.ndarray) -> float:
        x, y = _finite(x), _finite(y)
        if x.size == 0 or y.size == 0:
            return float("nan")
        return float(np.mean(x) - np.mean(y))

    def supports(self, x_series: np.ndarray, y_series: np.ndarray) -> bool:
        x, y = _finite(x_series), _finite(y_series)
        if x.size == 0 or y.size == 0:
            return False
        return bool(np.mean(x) > np.mean(y))

    def hypothesis_predicate_sql(self, x_column: str, y_column: str) -> str:
        return f"avg({x_column}) > avg({y_column})"


class VarianceGreater(InsightType):
    """Type ``V``: ``variance(val) > variance(val')`` (Definition 3.4)."""

    code = "V"
    label = "variance greater"
    null_hypothesis = "var(X) = var(Y)"
    statistic_name = "|sigma2_X - sigma2_Y|"
    moment_order = 2

    def test(self, batch: SharedPermutations, x: np.ndarray, y: np.ndarray) -> TestResult:
        return batch.variance_greater(x, y)

    def statistic_from_moments(self, x_sums, totals, n_x, n_y):
        return variance_stat_from_moments(
            x_sums[0], x_sums[1], totals[0], totals[1], n_x, n_y
        )

    def parametric_test(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        return f_variance_greater(x, y)

    def observed_statistic(self, x: np.ndarray, y: np.ndarray) -> float:
        x, y = _finite(x), _finite(y)
        if x.size < 2 or y.size < 2:
            return float("nan")
        return float(np.var(x, ddof=1) - np.var(y, ddof=1))

    def supports(self, x_series: np.ndarray, y_series: np.ndarray) -> bool:
        x, y = _finite(x_series), _finite(y_series)
        if x.size < 2 or y.size < 2:
            return False
        return bool(np.var(x, ddof=1) > np.var(y, ddof=1))

    def hypothesis_predicate_sql(self, x_column: str, y_column: str) -> str:
        return f"var({x_column}) > var({y_column})"


class MedianGreater(InsightType):
    """Extension type ``D``: ``median(val) > median(val')``.

    Not part of the paper's evaluation; included as the worked example of
    the extension recipe from the paper's conclusion (new predicate, new
    permutation statistic, same interestingness machinery).  Enable by
    passing it in ``insight_types`` explicitly.
    """

    code = "D"
    label = "median greater"
    null_hypothesis = "median(X) = median(Y)"
    statistic_name = "|med_X - med_Y|"

    def test(self, batch: SharedPermutations, x: np.ndarray, y: np.ndarray) -> TestResult:
        x, y = _finite(x), _finite(y)
        observed = self.observed_statistic(x, y)
        pooled = np.concatenate([x, y])
        # The median is order-insensitive, so the (sorted) complement of the
        # X side stands in for the dropped y_indices array.
        perm_x = np.median(pooled[batch.x_indices], axis=1)
        perm_y = np.median(pooled[batch.complement_indices()], axis=1)
        # Shared extreme-counting helper: its tie slack scales with the
        # statistic, so large-magnitude measures tie-count correctly too.
        return _one_sided(observed, perm_x - perm_y)

    def parametric_test(self, x: np.ndarray, y: np.ndarray) -> TestResult:
        # Mood's median test has no directional scipy form; use Welch as a
        # pragmatic surrogate for the ablation engine.
        return welch_mean_greater(x, y)

    def observed_statistic(self, x: np.ndarray, y: np.ndarray) -> float:
        x, y = _finite(x), _finite(y)
        if x.size == 0 or y.size == 0:
            return float("nan")
        return float(np.median(x) - np.median(y))

    def supports(self, x_series: np.ndarray, y_series: np.ndarray) -> bool:
        x, y = _finite(x_series), _finite(y_series)
        if x.size == 0 or y.size == 0:
            return False
        return bool(np.median(x) > np.median(y))

    def hypothesis_predicate_sql(self, x_column: str, y_column: str) -> str:
        # Median is not a standard SQL aggregate; the engine understands it
        # through avg on ranked halves is overkill — we keep the SQL textual
        # form informative even if only the in-memory evaluator checks it.
        return f"median({x_column}) > median({y_column})"


MEAN_GREATER = MeanGreater()
VARIANCE_GREATER = VarianceGreater()
MEDIAN_GREATER = MedianGreater()

#: The paper's two insight types, in evaluation order.
DEFAULT_INSIGHT_TYPES: tuple[InsightType, ...] = (MEAN_GREATER, VARIANCE_GREATER)

_REGISTRY: dict[str, InsightType] = {
    MEAN_GREATER.code: MEAN_GREATER,
    VARIANCE_GREATER.code: VARIANCE_GREATER,
    MEDIAN_GREATER.code: MEDIAN_GREATER,
}


def register_insight_type(insight_type: InsightType, replace: bool = False) -> None:
    """Add a custom insight type to the registry."""
    if insight_type.code in _REGISTRY and not replace:
        raise InsightError(f"insight type code {insight_type.code!r} already registered")
    _REGISTRY[insight_type.code] = insight_type


def insight_type(code: str) -> InsightType:
    """Look up a registered insight type by code."""
    found = _REGISTRY.get(code)
    if found is None:
        raise InsightError(f"unknown insight type {code!r}; known: {sorted(_REGISTRY)}")
    return found


def registered_insight_types() -> tuple[InsightType, ...]:
    return tuple(_REGISTRY.values())


def resolve_insight_types(types: Iterable[InsightType | str] | None) -> tuple[InsightType, ...]:
    """Normalize a user-supplied list of types/codes (None -> paper default)."""
    if types is None:
        return DEFAULT_INSIGHT_TYPES
    resolved = []
    for t in types:
        resolved.append(insight_type(t) if isinstance(t, str) else t)
    if not resolved:
        raise InsightError("at least one insight type is required")
    return tuple(resolved)
