"""Column storage for the in-memory columnar engine.

Two concrete column types exist, matching the paper's data model:

* :class:`CategoricalColumn` — dictionary-encoded strings: a tuple of unique
  category labels plus an ``int32`` code array.  Dictionary encoding makes
  group-by and equality selection cheap (integer comparisons) and keeps the
  memory footprint predictable, which Algorithm 2's memory-budgeted
  aggregate cache relies on.
* :class:`MeasureColumn` — a ``float64`` array; ``NaN`` encodes SQL ``NULL``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import SchemaError

#: Sentinel label used to display a NULL categorical value.
NULL_LABEL = ""


class CategoricalColumn:
    """Dictionary-encoded column of string categories.

    Parameters
    ----------
    codes:
        ``int32`` array of indices into ``categories``; ``-1`` encodes NULL.
    categories:
        Unique labels, in code order.
    """

    __slots__ = ("codes", "categories", "_category_index")

    def __init__(self, codes: np.ndarray, categories: Sequence[str]):
        codes = np.asarray(codes, dtype=np.int32)
        cats = tuple(str(c) for c in categories)
        if len(set(cats)) != len(cats):
            raise SchemaError("categorical categories must be unique")
        if codes.size and (codes.max(initial=-1) >= len(cats) or codes.min(initial=0) < -1):
            raise SchemaError("categorical codes out of range")
        self.codes = codes
        self.categories = cats
        self._category_index: dict[str, int] | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[object]) -> "CategoricalColumn":
        """Build a column from raw values; ``None`` and ``""`` become NULL
        (code ``-1``), never a dictionary entry."""
        labels = [NULL_LABEL if v is None else str(v) for v in values]
        categories: list[str] = []
        index: dict[str, int] = {}
        codes = np.empty(len(labels), dtype=np.int32)
        for i, label in enumerate(labels):
            if label == NULL_LABEL:
                codes[i] = -1
                continue
            code = index.get(label)
            if code is None:
                code = len(categories)
                index[label] = code
                categories.append(label)
            codes[i] = code
        return cls(codes, categories)

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return int(self.codes.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoricalColumn):
            return NotImplemented
        return self.to_list() == other.to_list()

    def __repr__(self) -> str:
        return f"CategoricalColumn(n={len(self)}, n_categories={len(self.categories)})"

    @property
    def is_categorical(self) -> bool:
        return True

    # -- accessors ------------------------------------------------------------

    def code_of(self, label: str) -> int:
        """Code for ``label``, or ``-1`` if the label is not in the dictionary."""
        if self._category_index is None:
            self._category_index = {c: i for i, c in enumerate(self.categories)}
        return self._category_index.get(str(label), -1)

    def values(self) -> np.ndarray:
        """Materialize labels as an object array (NULL codes map to '')."""
        lookup = np.array(self.categories + (NULL_LABEL,), dtype=object)
        return lookup[self.codes]

    def to_list(self) -> list[str]:
        return list(self.values())

    def n_distinct(self) -> int:
        """Number of distinct non-null values actually present."""
        present = self.codes[self.codes >= 0]
        return int(np.unique(present).size)

    def equals_mask(self, label: str) -> np.ndarray:
        """Boolean mask of rows equal to ``label`` (vectorized)."""
        code = self.code_of(label)
        if code < 0:
            return np.zeros(len(self), dtype=bool)
        return self.codes == code

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        """Row subset (categories dictionary is shared, not compacted)."""
        return CategoricalColumn(self.codes[indices], self.categories)

    def compact(self) -> "CategoricalColumn":
        """Re-encode so the dictionary only contains present categories."""
        present = np.unique(self.codes[self.codes >= 0])
        remap = np.full(len(self.categories) + 1, -1, dtype=np.int32)
        for new_code, old_code in enumerate(present):
            remap[old_code] = new_code
        codes = remap[self.codes]  # codes==-1 indexes remap[-1] == -1, still NULL
        categories = [self.categories[c] for c in present]
        return CategoricalColumn(codes, categories)

    def estimated_bytes(self) -> int:
        """Approximate memory footprint (codes + dictionary)."""
        dictionary = sum(len(c) for c in self.categories) + 50 * len(self.categories)
        return int(self.codes.nbytes) + dictionary


class MeasureColumn:
    """Numeric column stored as ``float64``; ``NaN`` encodes NULL."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float64)

    @classmethod
    def from_values(cls, values: Iterable[object]) -> "MeasureColumn":
        """Build a column from raw values; ``None``/'' become NaN."""
        out = []
        for v in values:
            if v is None or (isinstance(v, str) and not v.strip()):
                out.append(np.nan)
            else:
                out.append(float(v))
        return cls(np.array(out, dtype=np.float64))

    def __len__(self) -> int:
        return int(self.data.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MeasureColumn):
            return NotImplemented
        if len(self) != len(other):
            return False
        a, b = self.data, other.data
        both_nan = np.isnan(a) & np.isnan(b)
        return bool(np.all(both_nan | (a == b)))

    def __repr__(self) -> str:
        return f"MeasureColumn(n={len(self)})"

    @property
    def is_categorical(self) -> bool:
        return False

    def values(self) -> np.ndarray:
        return self.data

    def to_list(self) -> list[float]:
        return list(self.data)

    def n_distinct(self) -> int:
        finite = self.data[~np.isnan(self.data)]
        return int(np.unique(finite).size)

    def non_null(self) -> np.ndarray:
        """The non-NaN values, as a fresh contiguous array."""
        return self.data[~np.isnan(self.data)]

    def take(self, indices: np.ndarray) -> "MeasureColumn":
        return MeasureColumn(self.data[indices])

    def estimated_bytes(self) -> int:
        return int(self.data.nbytes)


Column = Union[CategoricalColumn, MeasureColumn]


def column_from_values(values: Sequence[object], is_measure: bool) -> Column:
    """Dispatch constructor used by the CSV reader and table builders."""
    if is_measure:
        return MeasureColumn.from_values(values)
    return CategoricalColumn.from_values(values)
