"""Functional-dependency detection among categorical attributes.

The paper runs a pre-processing step that detects functional dependencies
between categorical attributes "to prevent meaningless queries from being
generated" (Section 6.1) — e.g. selecting two days and grouping by month
when day determines month.  We detect single-attribute FDs ``A -> B``
exactly: ``A`` determines ``B`` iff every value of ``A`` co-occurs with a
single value of ``B``, i.e. the number of distinct ``(A, B)`` pairs equals
the number of distinct ``A`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.relational.table import Table


@dataclass(frozen=True, slots=True)
class FunctionalDependency:
    """A single-attribute functional dependency ``determinant -> dependent``."""

    determinant: str
    dependent: str

    def __str__(self) -> str:
        return f"{self.determinant} -> {self.dependent}"


def holds(table: Table, determinant: str, dependent: str) -> bool:
    """True iff ``determinant -> dependent`` holds exactly in ``table``."""
    pairs = table.group_by_codes([determinant, dependent]).n_groups
    singles = table.group_by_codes([determinant]).n_groups
    return pairs == singles


def detect_functional_dependencies(table: Table) -> list[FunctionalDependency]:
    """All single-attribute FDs among the categorical attributes.

    Trivial dependencies (``A -> A``) are excluded.  Complexity is
    O(n² · |R| log |R|) for n categorical attributes, which is fine for the
    single-digit attribute counts of the paper's datasets (Table 2).
    """
    names = table.schema.categorical_names
    found = []
    for det in names:
        for dep in names:
            if det != dep and holds(table, det, dep):
                found.append(FunctionalDependency(det, dep))
    return found


def related_attributes(
    dependencies: Iterable[FunctionalDependency],
) -> set[frozenset[str]]:
    """Unordered attribute pairs linked by an FD in either direction.

    The query generator excludes these pairs as (selection attribute,
    grouping attribute) combinations: comparing two days while grouping by
    month is meaningless when day determines month (paper footnote 2).
    """
    return {frozenset((fd.determinant, fd.dependent)) for fd in dependencies}
