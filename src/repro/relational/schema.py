"""Relation schemas for the single-table model of the paper.

The paper (Section 3.1) works with one relation ``R[A1..An, M1..Mm]`` where
the ``Ai`` are *categorical* attributes and the ``Mj`` are numeric *measures*.
:class:`Schema` captures that split and provides the attribute lookups used
throughout the library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError


class AttributeKind(enum.Enum):
    """Role of an attribute in the single-table model."""

    CATEGORICAL = "categorical"
    MEASURE = "measure"


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named, typed attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name; must be a non-empty identifier, unique in its schema.
    kind:
        Whether the attribute is categorical (a grouping/selection dimension)
        or a numeric measure.
    """

    name: str
    kind: AttributeKind

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")

    @property
    def is_categorical(self) -> bool:
        return self.kind is AttributeKind.CATEGORICAL

    @property
    def is_measure(self) -> bool:
        return self.kind is AttributeKind.MEASURE


def categorical(name: str) -> Attribute:
    """Shorthand constructor for a categorical attribute."""
    return Attribute(name, AttributeKind.CATEGORICAL)


def measure(name: str) -> Attribute:
    """Shorthand constructor for a measure attribute."""
    return Attribute(name, AttributeKind.MEASURE)


class Schema:
    """Ordered collection of attributes with unique names.

    The ordering is the column order of the relation; lookups are by exact
    name.  Schemas are immutable value objects: deriving a sub-schema returns
    a new instance.
    """

    __slots__ = ("_attributes", "_by_name")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        by_name: dict[str, Attribute] = {}
        for attr in attrs:
            if attr.name in by_name:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            by_name[attr.name] = attr
        self._attributes = attrs
        self._by_name = by_name

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {sorted(self._by_name)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}:{a.kind.value[0].upper()}" for a in self._attributes)
        return f"Schema({parts})"

    # -- accessors -----------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names, in column order."""
        return tuple(a.name for a in self._attributes)

    @property
    def categorical_names(self) -> tuple[str, ...]:
        """Names of the categorical attributes, in column order."""
        return tuple(a.name for a in self._attributes if a.is_categorical)

    @property
    def measure_names(self) -> tuple[str, ...]:
        """Names of the measure attributes, in column order."""
        return tuple(a.name for a in self._attributes if a.is_measure)

    def kind_of(self, name: str) -> AttributeKind:
        """Kind of the attribute called ``name`` (raises if unknown)."""
        return self[name].kind

    def require_categorical(self, name: str) -> Attribute:
        """Return the attribute, raising :class:`SchemaError` unless categorical."""
        attr = self[name]
        if not attr.is_categorical:
            raise SchemaError(f"attribute {name!r} is a measure, expected categorical")
        return attr

    def require_measure(self, name: str) -> Attribute:
        """Return the attribute, raising :class:`SchemaError` unless a measure."""
        attr = self[name]
        if not attr.is_measure:
            raise SchemaError(f"attribute {name!r} is categorical, expected a measure")
        return attr

    def subset(self, names: Iterable[str]) -> "Schema":
        """New schema restricted to ``names``, in the order given."""
        return Schema(self[name] for name in names)
