"""Table statistics and group-by size estimation.

Algorithm 2 weighs each candidate group-by set by "their estimated memory
footprint, as obtained from the query optimizer".  Our substitute for the
PostgreSQL optimizer is the classic Cardenas estimator on per-attribute
distinct counts, with an exact mode available for tests and ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.relational.table import Table

#: Bytes charged per group and per measure summary slot when translating a
#: group count into a memory footprint (codes + five float64 summary fields).
BYTES_PER_GROUP_KEY = 8
BYTES_PER_MEASURE_SUMMARY = 40


@dataclass(frozen=True, slots=True)
class ColumnStatistics:
    """Distinct count and null count for one column."""

    name: str
    n_distinct: int
    n_null: int


def collect_statistics(table: Table) -> dict[str, ColumnStatistics]:
    """Per-column statistics for every attribute of ``table``."""
    stats = {}
    for attr in table.schema:
        col = table.column(attr.name)
        if col.is_categorical:
            n_null = int((col.codes < 0).sum())
        else:
            n_null = int(np.isnan(col.data).sum())
        stats[attr.name] = ColumnStatistics(attr.name, col.n_distinct(), n_null)
    return stats


def cardenas(n_rows: int, n_cells: float) -> float:
    """Expected number of occupied cells when ``n_rows`` balls land uniformly
    in ``n_cells`` cells (Cardenas' formula)."""
    if n_cells <= 0:
        return 0.0
    if n_rows == 0:
        return 0.0
    # n_cells * (1 - (1 - 1/n_cells)^n_rows), computed stably in log space.
    ratio = n_rows / n_cells
    if ratio > 50:  # essentially every cell occupied
        return float(n_cells)
    return float(n_cells * -math.expm1(n_rows * math.log1p(-1.0 / n_cells))) if n_cells > 1 else 1.0


def estimate_group_count(table: Table, attributes: Sequence[str]) -> float:
    """Estimated number of groups of ``GROUP BY attributes``.

    Independence-based estimate: the cell space is the product of the
    per-attribute distinct counts, corrected by Cardenas' formula so the
    estimate never exceeds the row count.
    """
    if not attributes:
        return 1.0 if table.n_rows else 0.0
    cells = 1.0
    for name in attributes:
        cells *= max(1, table.n_distinct(name))
    return cardenas(table.n_rows, cells)


def exact_group_count(table: Table, attributes: Sequence[str]) -> int:
    """Exact number of groups (used by tests and the exact-weights ablation)."""
    return table.group_by_codes(list(attributes)).n_groups


def estimate_aggregate_bytes(
    table: Table, attributes: Sequence[str], n_measures: int | None = None
) -> float:
    """Estimated memory footprint of the cached aggregate for a group-by set.

    This is the weight Algorithm 2 assigns to each candidate group-by set:
    groups × (key storage + per-measure additive summary).
    """
    if n_measures is None:
        n_measures = len(table.schema.measure_names)
    groups = estimate_group_count(table, attributes)
    per_group = BYTES_PER_GROUP_KEY * max(1, len(attributes))
    per_group += BYTES_PER_MEASURE_SUMMARY * n_measures
    return groups * per_group
