"""Group-by lattice and in-memory partial aggregates (Algorithm 2 substrate).

Section 5.2.2 of the paper evaluates hypothesis queries "for free" from
in-memory partial aggregates: it materializes a few large group-by sets
chosen by weighted set cover, then answers every 2-attribute group-by by
rolling the materialized aggregates up.  This module provides:

* :class:`MaterializedAggregate` — a group-by result holding, per measure,
  an additive :class:`~repro.relational.aggregates.GroupedSummary` that can
  be rolled up to any coarser attribute subset;
* :class:`PairAggregate` — the 2-attribute view used to evaluate comparison
  and hypothesis queries without touching base data;
* :class:`PartialAggregateCache` — lookup structure mapping an attribute
  pair to a covering materialized aggregate (with memoized roll-ups).
"""

from __future__ import annotations

from itertools import combinations
from types import MappingProxyType
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import QueryError
from repro.relational.aggregates import GroupedSummary
from repro.relational.table import Table, group_codes_from_arrays


def powerset_group_by_sets(
    attributes: Sequence[str], min_size: int = 2, max_size: int | None = None
) -> list[frozenset[str]]:
    """All group-by sets of ``attributes`` with ``min_size`` to ``max_size`` members.

    This is the candidate collection ``G`` of Algorithm 2 (the powerset
    minus the 1-group-by sets).  ``max_size`` (inclusive, ``None`` = no cap)
    bounds the enumeration: the full powerset is exponential in attribute
    count, and sets wider than a few attributes are never chosen by the
    weighted cover anyway — their estimated size approaches the base table.
    """
    top = len(attributes) if max_size is None else min(max_size, len(attributes))
    sets: list[frozenset[str]] = []
    for size in range(min_size, top + 1):
        sets.extend(frozenset(c) for c in combinations(attributes, size))
    return sets


def pair_group_by_sets(attributes: Sequence[str]) -> list[frozenset[str]]:
    """The universe ``U`` of Algorithm 2: all 2-attribute group-by sets."""
    return [frozenset(pair) for pair in combinations(attributes, 2)]


class MaterializedAggregate:
    """A group-by result at some granularity, with additive summaries.

    Attributes
    ----------
    attributes:
        Grouping attributes, in a canonical (sorted) order.
    keys:
        One ``int64`` code array per attribute (length = number of groups);
        codes index the base table's category dictionaries.
    categories:
        The dictionary (tuple of labels) of each grouping attribute.
    summaries:
        Mapping measure name -> :class:`GroupedSummary` over the groups.
    """

    __slots__ = ("attributes", "keys", "categories", "summaries", "_pair_views")

    def __init__(
        self,
        attributes: tuple[str, ...],
        keys: tuple[np.ndarray, ...],
        categories: Mapping[str, tuple[str, ...]],
        summaries: Mapping[str, GroupedSummary],
    ):
        self.attributes = attributes
        self.keys = keys
        self.categories = dict(categories)
        self.summaries = dict(summaries)
        self._pair_views: dict[tuple[str, str], "PairAggregate"] = {}

    @property
    def n_groups(self) -> int:
        return 0 if not self.keys else int(self.keys[0].size)

    def actual_bytes(self) -> int:
        """Measured memory footprint of keys + summaries."""
        total = sum(int(k.nbytes) for k in self.keys)
        for summary in self.summaries.values():
            total += sum(
                int(getattr(summary, field).nbytes)
                for field in ("count", "total", "total_sq", "minimum", "maximum")
            )
        return total

    @classmethod
    def build(
        cls, table: Table, attributes: Iterable[str], measures: Sequence[str] | None = None
    ) -> "MaterializedAggregate":
        """Materialize ``GROUP BY attributes`` summaries from base data."""
        attrs = tuple(sorted(attributes))
        if measures is None:
            measures = table.schema.measure_names
        grouping = table.group_by_codes(attrs)
        categories = {name: table.categorical_column(name).categories for name in attrs}
        summaries = {
            m: GroupedSummary.from_values(
                grouping.group_ids, table.measure_values(m), grouping.n_groups
            )
            for m in measures
        }
        return cls(attrs, grouping.key_codes, categories, summaries)

    @classmethod
    def build_many(
        cls,
        table: Table,
        requests: Sequence[tuple[tuple[str, ...], Sequence[str] | None]],
    ) -> list["MaterializedAggregate"]:
        """Fused batch build: one pass over base columns serves every set.

        The multi-query-optimized counterpart of :meth:`build` — the shifted
        categorical code arrays (``codes + 1``) and measure value arrays are
        fetched from the table *once* and shared across all requested
        group-by sets, so the per-set cost is only the mixed-radix combine
        and the bincounts.  Each set still runs through the identical numpy
        op sequence as :meth:`build`
        (:func:`~repro.relational.table.group_codes_from_arrays` +
        :meth:`GroupedSummary.from_values`), so results are bit-identical to
        per-set builds — the exact-parity obligation of the batched backend
        contract.
        """
        shifted_codes: dict[str, "np.ndarray"] = {}
        radices: dict[str, int] = {}
        categories: dict[str, tuple[str, ...]] = {}
        measure_arrays: dict[str, "np.ndarray"] = {}
        out: list[MaterializedAggregate] = []
        for attributes, measures in requests:
            attrs = tuple(sorted(attributes))
            if measures is None:
                measures = table.schema.measure_names
            for name in attrs:
                if name not in shifted_codes:
                    col = table.categorical_column(name)
                    shifted_codes[name] = col.codes.astype(np.int64) + 1
                    radices[name] = len(col.categories) + 1
                    categories[name] = col.categories
            for m in measures:
                if m not in measure_arrays:
                    measure_arrays[m] = table.measure_values(m)
            if attrs:
                grouping = group_codes_from_arrays(
                    [shifted_codes[a] for a in attrs],
                    [radices[a] for a in attrs],
                    table.n_rows,
                )
            else:
                grouping = table.group_by_codes(attrs)
            summaries = {
                m: GroupedSummary.from_values(
                    grouping.group_ids, measure_arrays[m], grouping.n_groups
                )
                for m in measures
            }
            out.append(
                cls(
                    attrs,
                    grouping.key_codes,
                    {a: categories[a] for a in attrs},
                    summaries,
                )
            )
        return out

    def patched(self, table: Table, delta_start: int,
                stats_out: dict | None = None) -> "MaterializedAggregate":
        """This aggregate updated for an appended row block — in O(delta).

        ``table`` must extend the base relation this aggregate was built
        from by rows ``delta_start:`` (dictionary-extending append, see
        :meth:`Table.append_block`).  The result is *bit-identical* to
        ``build(table, self.attributes, measures)``: the delta rows are
        folded into the old per-group summaries with the same sequential
        accumulation ops (``np.add.at`` continues exactly where the cold
        ``np.bincount`` fold would be after the prefix rows), and the
        merged group keys are re-ranked through the same mixed-radix
        grouping, so group order matches a cold build's lexicographic
        order.

        ``stats_out``, when given, receives ``touched_groups`` (groups the
        delta block landed in) and ``total_groups`` — the partition-
        granularity evidence the cache-invalidation counters report.
        """
        measures = tuple(self.summaries)
        n_delta = table.n_rows - delta_start
        if n_delta < 0:
            raise QueryError(
                f"table of {table.n_rows} rows cannot have a delta at {delta_start}"
            )
        if n_delta == 0:
            if stats_out is not None:
                stats_out["touched_groups"] = 0
                stats_out["total_groups"] = self.n_groups
            return self
        if not self.attributes or self.n_groups == 0:
            # Global group, or an empty base: a cold build is already O(delta).
            built = MaterializedAggregate.build(table, self.attributes, measures)
            if stats_out is not None:
                stats_out["touched_groups"] = built.n_groups
                stats_out["total_groups"] = built.n_groups
            return built
        attrs = self.attributes
        shifted: list[np.ndarray] = []
        radices: list[int] = []
        for name in attrs:
            col = table.categorical_column(name)
            shifted.append(col.codes[delta_start:].astype(np.int64) + 1)
            radices.append(len(col.categories) + 1)
        delta_grouping = group_codes_from_arrays(shifted, radices, n_delta)
        # Rank the union of old and delta group keys with the same grouping
        # machinery a cold build uses: the dense ids come out in the cold
        # build's lexicographic key order, and the slot arrays say where
        # each old group and each delta group lands.
        n_old = self.n_groups
        merged = group_codes_from_arrays(
            [
                np.concatenate([self.keys[j] + 1, delta_grouping.key_codes[j] + 1])
                for j in range(len(attrs))
            ],
            radices,
            n_old + delta_grouping.n_groups,
        )
        old_slot = merged.group_ids[:n_old]
        delta_slot = merged.group_ids[n_old:]
        n_final = merged.n_groups
        row_slot = delta_slot[delta_grouping.group_ids]
        summaries: dict[str, GroupedSummary] = {}
        for m in measures:
            old = self.summaries[m]
            values = np.asarray(table.measure_values(m)[delta_start:], dtype=np.float64)
            valid = ~np.isnan(values)
            gid = row_slot[valid]
            vals = values[valid]
            count = np.zeros(n_final, dtype=np.float64)
            count[old_slot] = old.count
            count += np.bincount(gid, minlength=n_final).astype(np.float64)
            total = np.zeros(n_final, dtype=np.float64)
            total[old_slot] = old.total
            np.add.at(total, gid, vals)
            total_sq = np.zeros(n_final, dtype=np.float64)
            total_sq[old_slot] = old.total_sq
            np.add.at(total_sq, gid, vals * vals)
            minimum = np.full(n_final, np.inf)
            maximum = np.full(n_final, -np.inf)
            nonempty = old.count > 0
            minimum[old_slot[nonempty]] = old.minimum[nonempty]
            maximum[old_slot[nonempty]] = old.maximum[nonempty]
            np.minimum.at(minimum, gid, vals)
            np.maximum.at(maximum, gid, vals)
            empty = count == 0
            minimum[empty] = np.nan
            maximum[empty] = np.nan
            summaries[m] = GroupedSummary(count, total, total_sq, minimum, maximum)
        categories = {name: table.categorical_column(name).categories for name in attrs}
        if stats_out is not None:
            stats_out["touched_groups"] = int(delta_grouping.n_groups)
            stats_out["total_groups"] = int(n_final)
        return MaterializedAggregate(attrs, merged.key_codes, categories, summaries)

    def pair_view(self, first: str, second: str) -> "PairAggregate":
        """Memoized 2-attribute view over this (pair-granularity) aggregate.

        Aggregates served repeatedly from the cross-stage cache keep one
        :class:`PairAggregate` per orientation, so its per-series memo
        accumulates across evaluation and rendering instead of being thrown
        away with each throwaway view.  Benign under concurrency: a lost
        race costs one duplicate view, never a wrong result.
        """
        key = (first, second)
        view = self._pair_views.get(key)
        if view is None:
            view = PairAggregate(self, first, second)
            self._pair_views[key] = view
        return view

    def rollup_to(self, attributes: Iterable[str]) -> "MaterializedAggregate":
        """Re-aggregate to a coarser granularity (subset of our attributes)."""
        target = tuple(sorted(attributes))
        if not set(target) <= set(self.attributes):
            raise QueryError(
                f"cannot roll up {self.attributes} to non-subset {target}"
            )
        if target == self.attributes:
            return self
        positions = [self.attributes.index(a) for a in target]
        # Mixed-radix combine of the retained key columns with iterative
        # compaction (same overflow-safe scheme as Table.group_by_codes).
        first_radix = len(self.categories[self.attributes[positions[0]]]) + 1
        combined = self.keys[positions[0]].astype(np.int64) + 1
        unique_combined = np.unique(combined)
        coarse_ids = np.searchsorted(unique_combined, combined).astype(np.int64)
        decode_stack: list[tuple[np.ndarray, int]] = [(unique_combined, first_radix)]
        for pos in positions[1:]:
            radix = len(self.categories[self.attributes[pos]]) + 1
            combined = coarse_ids * radix + (self.keys[pos].astype(np.int64) + 1)
            unique_combined, coarse_ids = np.unique(combined, return_inverse=True)
            coarse_ids = coarse_ids.astype(np.int64)
            decode_stack.append((unique_combined, radix))
        n_coarse = int(unique_combined.size) if self.n_groups else 0
        new_keys_rev: list[np.ndarray] = []
        current = decode_stack[-1][0]
        for level in range(len(decode_stack) - 1, 0, -1):
            _, radix = decode_stack[level]
            new_keys_rev.append((current % radix).astype(np.int64) - 1)
            current = decode_stack[level - 1][0][current // radix]
        new_keys_rev.append(current.astype(np.int64) - 1)
        new_keys = list(reversed(new_keys_rev))
        summaries = {m: s.rollup(coarse_ids, n_coarse) for m, s in self.summaries.items()}
        categories = {a: self.categories[a] for a in target}
        return MaterializedAggregate(target, tuple(new_keys), categories, summaries)


#: Shared read-only result for series of an absent selection label.
_EMPTY_SERIES: Mapping[str, float] = MappingProxyType({})


class PairAggregate:
    """2-attribute aggregate view used to evaluate comparison queries.

    For a comparison query ``(A, B, val, val', M, agg)`` the evaluator needs,
    for each value ``a`` of ``A``, the aggregate of ``M`` over rows with
    ``B = val`` (and likewise ``val'``).  :meth:`series` answers exactly
    that from the materialized summaries, and :meth:`aligned_series` returns
    the two series joined on the grouping attribute as the comparison
    query's join does.
    """

    __slots__ = ("aggregate", "first", "second", "_series_cache")

    def __init__(self, aggregate: MaterializedAggregate, first: str, second: str):
        if set(aggregate.attributes) != {first, second}:
            raise QueryError(
                f"aggregate over {aggregate.attributes} is not the pair ({first}, {second})"
            )
        self.aggregate = aggregate
        self.first = first
        self.second = second
        self._series_cache: dict[tuple, Mapping[str, float]] = {}

    def _axis(self, attribute: str) -> int:
        return self.aggregate.attributes.index(attribute)

    def series(self, group_attr: str, select_attr: str, label: str, measure: str, agg: str) -> Mapping[str, float]:
        """Per-``group_attr``-value aggregate of ``measure`` where ``select_attr = label``.

        Returns a mapping group label -> aggregate value; groups with no
        matching rows are absent (they would not appear in the SQL result).
        Memoized per view: hypothesis evaluation and rendering repeatedly
        finalize the same (label, measure, agg) series.  The mapping is a
        read-only :class:`types.MappingProxyType` — the view (and thus the
        memo) is shared across pipeline stages through the cross-stage
        aggregate cache, so a mutation would corrupt every later consumer;
        the proxy makes the attempt raise instead.
        """
        memo_key = (group_attr, select_attr, label, measure, agg)
        cached = self._series_cache.get(memo_key)
        if cached is not None:
            return cached
        select_axis = self._axis(select_attr)
        group_axis = self._axis(group_attr)
        categories = self.aggregate.categories[select_attr]
        try:
            code = categories.index(str(label))
        except ValueError:
            return _EMPTY_SERIES
        mask = self.aggregate.keys[select_axis] == code
        group_codes = self.aggregate.keys[group_axis][mask]
        summary = self.aggregate.summaries.get(measure)
        if summary is None:
            raise QueryError(f"measure {measure!r} not materialized in this aggregate")
        selected = GroupedSummary(
            summary.count[mask],
            summary.total[mask],
            summary.total_sq[mask],
            summary.minimum[mask],
            summary.maximum[mask],
        )
        values = selected.finalize(agg)
        group_categories = self.aggregate.categories[group_attr]
        out: dict[str, float] = {}
        for gcode, value in zip(group_codes, values):
            label_g = group_categories[gcode] if gcode >= 0 else ""
            out[label_g] = float(value)
        frozen = MappingProxyType(out)
        self._series_cache[memo_key] = frozen
        return frozen

    def aligned_series(
        self, group_attr: str, select_attr: str, label_a: str, label_b: str, measure: str, agg: str
    ) -> tuple[list[str], np.ndarray, np.ndarray]:
        """The comparison query's joined result: common groups + two columns.

        Mirrors Definition 3.1: an inner join on the grouping attribute, so
        only groups present under *both* selections appear; groups are
        returned sorted (the τ operator).
        """
        left = self.series(group_attr, select_attr, label_a, measure, agg)
        right = self.series(group_attr, select_attr, label_b, measure, agg)
        common = sorted(set(left) & set(right))
        return (
            common,
            np.array([left[g] for g in common], dtype=np.float64),
            np.array([right[g] for g in common], dtype=np.float64),
        )


class PartialAggregateCache:
    """Maps attribute pairs to covering materialized aggregates.

    Built by Algorithm 2 from a set-cover solution: each chosen group-by set
    is materialized once; pair lookups roll up (memoized) from a covering
    set.  The cache reports its measured memory so the fallback strategy of
    Section 5.2.2 can be exercised under a byte budget.
    """

    def __init__(self) -> None:
        self._materialized: list[MaterializedAggregate] = []
        self._pair_cache: dict[frozenset[str], PairAggregate] = {}

    @property
    def materialized(self) -> tuple[MaterializedAggregate, ...]:
        return tuple(self._materialized)

    def add(self, aggregate: MaterializedAggregate) -> None:
        self._materialized.append(aggregate)

    def total_bytes(self) -> int:
        return sum(m.actual_bytes() for m in self._materialized)

    def covers(self, first: str, second: str) -> bool:
        pair = {first, second}
        return any(pair <= set(m.attributes) for m in self._materialized)

    def pair(self, first: str, second: str) -> PairAggregate:
        """The 2-attribute view for ``{first, second}`` (memoized roll-up)."""
        key = frozenset((first, second))
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        cover = None
        for m in self._materialized:
            if key <= set(m.attributes):
                if cover is None or m.n_groups < cover.n_groups:
                    cover = m
        if cover is None:
            raise QueryError(f"no materialized aggregate covers pair ({first}, {second})")
        rolled = cover.rollup_to(key)
        view = PairAggregate(rolled, first, second)
        self._pair_cache[key] = view
        return view
