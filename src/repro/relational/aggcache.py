"""Cross-stage aggregate cache: one group-by pass serves every consumer.

Hypothesis-query evaluation (``generation/evaluators.py``), credibility
computation, and notebook rendering all materialize group-by aggregates
over the same ``(grouping attribute, selection attribute)`` pairs — often
the *identical* aggregate, rebuilt per stage because each stage only sees
its own slice of the pipeline.  :class:`AggregateCache` memoizes
:class:`~repro.relational.cube.MaterializedAggregate` builds across stages:

* **keying** — ``(backend name, sorted grouping attributes)`` plus the
  materialized measure set.  Backend names partition the cache because
  different engines may order groups differently (floating-point parity is
  per-engine, never across engines).
* **measure-superset serving** — a request for a subset of measures is a
  hit on an aggregate materialized with a superset (the additive summaries
  carry every measure independently); ``measures=None`` (all measures)
  serves every request.
* **single-flight building** — concurrent requests for the same key build
  once; latecomers wait on a reservation event (the same check-then-build
  discipline as ``PairwiseEvaluator``).

Counters ``cache.aggregate_hits`` / ``cache.aggregate_misses`` and the
``cache.aggregate_build`` span make reuse visible in every trace and
benchmark snapshot (see ``docs/observability.md``).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.relational.cube import MaterializedAggregate

__all__ = ["AggregateCache"]


class AggregateCache:
    """Memoized, single-flight store of materialized group-by aggregates."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (backend, attrs) -> list of (measure set or None for all, aggregate)
        self._entries: dict[tuple, list] = {}
        # (backend, attrs, requested measures) -> in-progress build event
        self._building: dict[tuple, threading.Event] = {}

    def get_or_build(
        self,
        backend: str,
        attributes: Iterable[str],
        measures: Sequence[str] | None,
        build: Callable[[], MaterializedAggregate],
    ) -> MaterializedAggregate:
        """The cached aggregate for the key, building (once) on a miss.

        ``build`` runs outside the cache lock; a failed build releases the
        reservation so the next caller can retry.
        """
        attrs = tuple(sorted(attributes))
        want = None if measures is None else frozenset(measures)
        key = (backend, attrs)
        reservation_key = (backend, attrs, want)
        while True:
            with self._lock:
                hit = self._find(key, want)
                if hit is not None:
                    obs.counter("cache.aggregate_hits").inc()
                    return hit
                reservation = self._building.get(reservation_key)
                if reservation is None:
                    self._building[reservation_key] = threading.Event()
                    break
            reservation.wait()
        obs.counter("cache.aggregate_misses").inc()
        try:
            with obs.span(
                "cache.aggregate_build",
                backend=backend,
                attributes="|".join(attrs),
                measures="*" if want is None else len(want),
            ):
                built = build()
            with self._lock:
                self._entries.setdefault(key, []).append((want, built))
            return built
        finally:
            with self._lock:
                event = self._building.pop(reservation_key)
            event.set()

    def _find(self, key: tuple, want: frozenset | None) -> MaterializedAggregate | None:
        for have, aggregate in self._entries.get(key, []):
            if have is None or (want is not None and want <= have):
                return aggregate
        return None

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._entries.values())

    def total_bytes(self) -> int:
        """Measured footprint of every cached aggregate."""
        with self._lock:
            return sum(
                aggregate.actual_bytes()
                for entries in self._entries.values()
                for _, aggregate in entries
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
