"""Cross-stage aggregate cache: one group-by pass serves every consumer.

Hypothesis-query evaluation (``generation/evaluators.py``), credibility
computation, and notebook rendering all materialize group-by aggregates
over the same ``(grouping attribute, selection attribute)`` pairs — often
the *identical* aggregate, rebuilt per stage because each stage only sees
its own slice of the pipeline.  :class:`AggregateCache` memoizes
:class:`~repro.relational.cube.MaterializedAggregate` builds across stages:

* **keying** — ``(backend name, sorted grouping attributes)`` plus the
  materialized measure set.  Backend names partition the cache because
  different engines may order groups differently (floating-point parity is
  per-engine, never across engines).
* **measure-superset serving** — a request for a subset of measures is a
  hit on an aggregate materialized with a superset (the additive summaries
  carry every measure independently); ``measures=None`` (all measures)
  serves every request.
* **single-flight building** — concurrent requests for the same key build
  once; latecomers wait on a reservation event (the same check-then-build
  discipline as ``PairwiseEvaluator``).
* **batch-aware single-flight** — :meth:`AggregateCache.get_or_build_batch`
  classifies a whole plan of requests in one pass under the lock: hits are
  served from cache, every missing key is reserved at once, and only the
  *residual* batch reaches the backend's multi-query compiler.  Keys some
  other thread is already building are waited on afterwards, so one
  aggregation pass per key still holds under concurrency.
* **byte-budget LRU eviction** — unlike the transient per-stage aggregates
  it replaces, the cache lives for the owning ``Table``'s lifetime, so on
  wide tables it could otherwise pin every pair aggregate at once.  A
  ``max_bytes`` budget (default :data:`DEFAULT_MAX_BYTES`) bounds the
  retained footprint with least-recently-used eviction — the same
  accuracy-for-memory discipline as the Section 5.2.2 byte-budget fallback
  of ``PartialAggregateCache``.  ``max_bytes=None`` removes the bound;
  :meth:`clear` drops everything at a stage boundary.

Counters ``cache.aggregate_hits`` / ``cache.aggregate_misses`` /
``cache.aggregate_evictions`` and the ``cache.aggregate_build`` span make
reuse (and memory pressure) visible in every trace and benchmark snapshot
(see ``docs/observability.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.relational.cube import MaterializedAggregate

__all__ = ["DEFAULT_MAX_BYTES", "AggregateCache"]

#: Default retained-aggregate budget (256 MiB).  Generous next to any of the
#: paper's workloads, yet it keeps wide tables from pinning every pair
#: aggregate of the evaluation phase simultaneously.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class AggregateCache:
    """Memoized, single-flight, byte-bounded store of group-by aggregates."""

    def __init__(self, max_bytes: int | None = DEFAULT_MAX_BYTES) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be None or non-negative")
        self._lock = threading.Lock()
        self._max_bytes = max_bytes
        # (backend, attrs, measure set or None for all) -> (aggregate, bytes),
        # in least-recently-used-first order (hits refresh recency).
        self._entries: OrderedDict[tuple, tuple[MaterializedAggregate, int]] = (
            OrderedDict()
        )
        self._retained_bytes = 0
        # (backend, attrs, requested measures) -> in-progress build event
        self._building: dict[tuple, threading.Event] = {}

    @property
    def max_bytes(self) -> int | None:
        return self._max_bytes

    def get_or_build(
        self,
        backend: str,
        attributes: Iterable[str],
        measures: Sequence[str] | None,
        build: Callable[[], MaterializedAggregate],
    ) -> MaterializedAggregate:
        """The cached aggregate for the key, building (once) on a miss.

        ``build`` runs outside the cache lock; a failed build releases the
        reservation so the next caller can retry.
        """
        attrs = tuple(sorted(attributes))
        want = None if measures is None else frozenset(measures)
        reservation_key = (backend, attrs, want)
        while True:
            with self._lock:
                hit = self._find(backend, attrs, want)
                if hit is not None:
                    obs.counter("cache.aggregate_hits").inc()
                    obs.counter("cache.aggregate_requests",
                                {"outcome": "hit"}).inc()
                    return hit
                reservation = self._building.get(reservation_key)
                if reservation is None:
                    self._building[reservation_key] = threading.Event()
                    break
            reservation.wait()
        obs.counter("cache.aggregate_misses").inc()
        obs.counter("cache.aggregate_requests", {"outcome": "miss"}).inc()
        try:
            with obs.span(
                "cache.aggregate_build",
                backend=backend,
                attributes="|".join(attrs),
                measures="*" if want is None else len(want),
            ):
                built = build()
            nbytes = built.actual_bytes()
            with self._lock:
                self._entries[(backend, attrs, want)] = (built, nbytes)
                self._retained_bytes += nbytes
                self._evict_over_budget()
            return built
        finally:
            with self._lock:
                event = self._building.pop(reservation_key)
            event.set()

    def get_or_build_batch(
        self,
        backend: str,
        requests: Sequence[tuple[tuple[str, ...], Sequence[str] | None]],
        build_batch: Callable[[list[tuple[tuple[str, ...], Sequence[str] | None]]],
                              Sequence[MaterializedAggregate]],
    ) -> list[MaterializedAggregate]:
        """Serve a whole plan of ``(attributes, measures)`` requests at once.

        Hits come straight from the cache; all missing keys are reserved in
        one pass and ``build_batch`` receives only that *residual* list (in
        request order, duplicates collapsed) — the hook where a backend
        compiles the batch into minimal engine work.  Keys reserved by a
        concurrent builder are not rebuilt: they are awaited after our own
        residual lands, preserving the one-build-per-key guarantee.

        Returns the aggregates in request order.  A failed batch build
        releases every reservation this call made.
        """
        keyed = [
            (tuple(sorted(attrs)), None if measures is None else frozenset(measures))
            for attrs, measures in requests
        ]
        results: dict[int, MaterializedAggregate] = {}
        residual: list[tuple[tuple[str, ...], Sequence[str] | None]] = []
        residual_keys: list[tuple] = []
        foreign: list[int] = []
        with self._lock:
            reserved_here: set[tuple] = set()
            for index, (request, (attrs, want)) in enumerate(zip(requests, keyed)):
                hit = self._find(backend, attrs, want)
                if hit is not None:
                    obs.counter("cache.aggregate_hits").inc()
                    obs.counter("cache.aggregate_requests", {"outcome": "hit"}).inc()
                    results[index] = hit
                    continue
                reservation_key = (backend, attrs, want)
                if reservation_key in reserved_here:
                    # Duplicate within this very batch: the first occurrence
                    # builds it; resolve this index from the cache afterwards.
                    foreign.append(index)
                    continue
                if reservation_key in self._building:
                    foreign.append(index)
                    continue
                self._building[reservation_key] = threading.Event()
                reserved_here.add(reservation_key)
                residual.append(request)
                residual_keys.append(reservation_key)
                results[index] = None  # type: ignore[assignment] # placeholder
                obs.counter("cache.aggregate_misses").inc()
                obs.counter("cache.aggregate_requests", {"outcome": "miss"}).inc()
        built_by_key: dict[tuple, MaterializedAggregate] = {}
        try:
            if residual:
                with obs.span(
                    "cache.aggregate_build",
                    backend=backend,
                    batch=len(residual),
                    measures="batch",
                ):
                    built = list(build_batch(residual))
                if len(built) != len(residual):
                    raise ValueError(
                        f"batch builder returned {len(built)} aggregates "
                        f"for {len(residual)} requests"
                    )
                with self._lock:
                    for reservation_key, aggregate in zip(residual_keys, built):
                        _, attrs, want = reservation_key
                        nbytes = aggregate.actual_bytes()
                        self._entries[(backend, attrs, want)] = (aggregate, nbytes)
                        self._retained_bytes += nbytes
                        built_by_key[reservation_key] = aggregate
                    self._evict_over_budget()
        finally:
            with self._lock:
                events = [self._building.pop(key, None) for key in residual_keys]
            for event in events:
                if event is not None:
                    event.set()
        for reservation_key, index in zip(residual_keys, (
            i for i, r in results.items() if r is None
        )):
            results[index] = built_by_key[reservation_key]
        # Keys built elsewhere (or duplicated within the batch): the plain
        # single-flight path waits on the reservation and serves the hit.
        for index in foreign:
            attrs, want = keyed[index]
            request = requests[index]
            results[index] = self.get_or_build(
                backend,
                attrs,
                request[1],
                lambda r=request: self._batch_single(build_batch, r),
            )
        return [results[index] for index in range(len(requests))]

    @staticmethod
    def _batch_single(build_batch, request) -> MaterializedAggregate:
        """Build one straggler through the batch builder (degenerate batch).

        Reached only when a foreign reservation's builder failed and this
        caller retries as the new builder.
        """
        return list(build_batch([request]))[0]

    def seed(
        self,
        backend: str,
        attributes: Iterable[str],
        measures: Sequence[str] | None,
        aggregate: MaterializedAggregate,
    ) -> None:
        """Insert a ready-built aggregate (moment-store / migration path).

        The entry lands with normal LRU recency and counts against the byte
        budget; an existing entry under the same key is replaced.
        """
        attrs = tuple(sorted(attributes))
        want = None if measures is None else frozenset(measures)
        nbytes = aggregate.actual_bytes()
        with self._lock:
            key = (backend, attrs, want)
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._retained_bytes -= previous[1]
            self._entries[key] = (aggregate, nbytes)
            self._retained_bytes += nbytes
            self._evict_over_budget()

    def adopt(
        self,
        previous: "AggregateCache",
        table,
        delta_start: int,
        patchable_backends: Iterable[str],
    ) -> dict[str, int]:
        """Carry a previous table version's entries across an append.

        Entries built by a backend declaring ``incremental_aggregates``
        are *patched* in O(delta) (:meth:`MaterializedAggregate.patched`)
        — partition-granular invalidation: only the groups the appended
        block touched are recomputed, every other partition's moments are
        carried verbatim.  Entries of non-incremental backends are dropped
        (their engine re-aggregates from the grown table on next request).

        Returns migration stats: ``migrated`` / ``dropped`` entry counts
        plus ``groups_touched`` / ``groups_carried`` partition totals, also
        published as ``cache.*`` counters.
        """
        patchable = set(patchable_backends)
        with previous._lock:
            snapshot = [
                (key, aggregate) for key, (aggregate, _) in previous._entries.items()
            ]
        migrated = dropped = groups_touched = groups_carried = 0
        for (backend, attrs, want), aggregate in snapshot:
            if backend not in patchable:
                dropped += 1
                continue
            stats: dict[str, int] = {}
            patched = aggregate.patched(table, delta_start, stats)
            self.seed(backend, attrs, want, patched)
            migrated += 1
            groups_touched += stats["touched_groups"]
            groups_carried += stats["total_groups"] - stats["touched_groups"]
        obs.counter("cache.aggregates_migrated").inc(migrated)
        obs.counter("cache.aggregates_dropped").inc(dropped)
        obs.counter("cache.groups_touched").inc(groups_touched)
        obs.counter("cache.groups_carried").inc(groups_carried)
        return {
            "migrated": migrated,
            "dropped": dropped,
            "groups_touched": groups_touched,
            "groups_carried": groups_carried,
        }

    def _find(
        self, backend: str, attrs: tuple, want: frozenset | None
    ) -> MaterializedAggregate | None:
        """Lock held.  A hit refreshes the entry's LRU recency."""
        for key, (aggregate, _) in self._entries.items():
            have_backend, have_attrs, have = key
            if have_backend != backend or have_attrs != attrs:
                continue
            if have is None or (want is not None and want <= have):
                self._entries.move_to_end(key)
                return aggregate
        return None

    def _evict_over_budget(self) -> None:
        """Lock held.  Drop least-recently-used entries past the budget.

        A single aggregate larger than the whole budget is evicted too: the
        caller already holds the built object, so correctness is unaffected —
        the cache simply declines to retain it.
        """
        if self._max_bytes is None:
            return
        while self._entries and self._retained_bytes > self._max_bytes:
            _, (_, nbytes) = self._entries.popitem(last=False)
            self._retained_bytes -= nbytes
            obs.counter("cache.aggregate_evictions").inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def total_bytes(self) -> int:
        """Retained footprint of every cached aggregate (always <= budget)."""
        with self._lock:
            return self._retained_bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._retained_bytes = 0
