"""CSV import/export with attribute-kind inference.

The paper's setting is "a data enthusiast pointing the system at a CSV
file": the user only distinguishes numeric attributes (measures) from
categorical ones.  :func:`read_csv` automates that split with a simple,
predictable inference rule and lets the caller override it per column.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import SchemaError, TypeInferenceError
from repro.relational.schema import AttributeKind, Schema, categorical, measure
from repro.relational.table import Table

#: A column whose non-empty values all parse as float, with more than this
#: many distinct values, is inferred to be a measure.  Low-cardinality
#: numeric columns (e.g. a month number 1..12) default to categorical,
#: matching how the paper treats attributes like ``month``.
MEASURE_MIN_DISTINCT = 13


def _parses_as_float(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


def infer_kinds(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    overrides: Mapping[str, AttributeKind] | None = None,
) -> dict[str, AttributeKind]:
    """Infer an :class:`AttributeKind` for every column.

    A column is a measure when every non-empty cell parses as a float and it
    has at least :data:`MEASURE_MIN_DISTINCT` distinct values; otherwise it
    is categorical.  ``overrides`` wins over inference.
    """
    overrides = dict(overrides or {})
    unknown = set(overrides) - set(header)
    if unknown:
        raise TypeInferenceError(f"overrides for unknown columns: {sorted(unknown)}")
    kinds: dict[str, AttributeKind] = {}
    for j, name in enumerate(header):
        if name in overrides:
            kinds[name] = overrides[name]
            continue
        non_empty = [row[j] for row in rows if j < len(row) and row[j].strip()]
        if not non_empty:
            kinds[name] = AttributeKind.CATEGORICAL
            continue
        all_numeric = all(_parses_as_float(v) for v in non_empty)
        distinct = len(set(non_empty))
        if all_numeric and distinct >= MEASURE_MIN_DISTINCT:
            kinds[name] = AttributeKind.MEASURE
        else:
            kinds[name] = AttributeKind.CATEGORICAL
    return kinds


def read_csv(
    path: str | Path,
    overrides: Mapping[str, AttributeKind] | None = None,
    delimiter: str = ",",
    strict: bool = False,
) -> Table:
    """Load a CSV file into a :class:`Table`, inferring attribute kinds.

    ``strict=True`` additionally runs :func:`validate_for_analysis`, so a
    file the generation pipeline cannot use fails here with a clear
    :class:`~repro.errors.SchemaError` rather than deep inside the
    permutation tests.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        return read_csv_text(
            handle.read(), overrides=overrides, delimiter=delimiter, strict=strict
        )


def read_csv_text(
    text: str,
    overrides: Mapping[str, AttributeKind] | None = None,
    delimiter: str = ",",
    strict: bool = False,
) -> Table:
    """Parse CSV from a string (same semantics as :func:`read_csv`)."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise TypeInferenceError("CSV input is empty") from None
    header = [h.strip() for h in header]
    if len(set(header)) != len(header):
        duplicated = sorted({h for h in header if header.count(h) > 1})
        raise SchemaError(f"duplicate column names in CSV header: {duplicated}")
    rows = [row for row in reader if any(cell.strip() for cell in row)]
    kinds = infer_kinds(header, rows, overrides)

    attrs = [
        measure(name) if kinds[name] is AttributeKind.MEASURE else categorical(name)
        for name in header
    ]
    data: dict[str, list[object]] = {name: [] for name in header}
    for row in rows:
        for j, name in enumerate(header):
            cell = row[j].strip() if j < len(row) else ""
            if kinds[name] is AttributeKind.MEASURE:
                data[name].append(cell if cell else None)
            else:
                data[name].append(cell if cell else None)
    table = Table.from_columns(Schema(attrs), data)
    if strict:
        validate_for_analysis(table)
    return table


def validate_for_analysis(table: Table) -> None:
    """Reject tables the comparison pipeline cannot meaningfully process.

    Raises :class:`~repro.errors.SchemaError` when the table is empty, a
    measure column holds no values at all (all-NULL/NaN — its permutation
    tests would have empty sides), or a categorical attribute has fewer
    than two distinct values (no pair to compare).  Catching these at
    ingestion gives the user one actionable message instead of a failure
    deep inside the statistics stage.
    """
    if table.n_rows == 0:
        raise SchemaError("CSV contains a header but no data rows")
    problems: list[str] = []
    for name in table.schema.measure_names:
        values = table.measure_values(name)
        if values.size == 0 or not (values == values).any():  # NaN != NaN
            problems.append(f"measure column {name!r} has no usable (non-NaN) values")
    for name in table.schema.categorical_names:
        if table.categorical_column(name).n_distinct() < 2:
            problems.append(
                f"categorical attribute {name!r} has fewer than two distinct values"
            )
    if problems:
        raise SchemaError(
            "table is unusable for comparison analysis: " + "; ".join(problems)
        )


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write a table back out as CSV (labels for categoricals)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.schema.names)
        for row in table.to_rows():
            writer.writerow(["" if _is_null(v) else v for v in row])


def _is_null(value: object) -> bool:
    if value is None or value == "":
        return True
    return isinstance(value, float) and value != value  # NaN
