"""Columnar in-memory table: the relation ``R`` of the paper.

A :class:`Table` pairs a :class:`~repro.relational.schema.Schema` with one
column per attribute.  All rows-level operations (filter, take) are
vectorized; the grouping machinery (:meth:`Table.group_by_codes`) produces
dense group ids that the aggregate layer consumes.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relational.columns import (
    NULL_LABEL,
    CategoricalColumn,
    Column,
    MeasureColumn,
    column_from_values,
)
from repro.relational.schema import Attribute, Schema, categorical, measure

#: Guards lazy attachment of per-table aggregate caches (double-checked).
_CACHE_ATTACH_LOCK = threading.Lock()


class GroupingResult:
    """Outcome of grouping a table by a list of categorical attributes.

    Attributes
    ----------
    group_ids:
        Dense ``int64`` array, one entry per input row, in ``[0, n_groups)``.
    n_groups:
        Number of distinct groups present.
    key_codes:
        For each grouped attribute, the per-group category *code* — i.e.
        ``key_codes[j][g]`` is the code (into that attribute's dictionary)
        of group ``g`` on the j-th key.
    """

    __slots__ = ("group_ids", "n_groups", "key_codes")

    def __init__(self, group_ids: np.ndarray, n_groups: int, key_codes: tuple[np.ndarray, ...]):
        self.group_ids = group_ids
        self.n_groups = n_groups
        self.key_codes = key_codes


def group_codes_from_arrays(
    code_arrays: Sequence[np.ndarray], radices: Sequence[int], n_rows: int
) -> GroupingResult:
    """Mixed-radix grouping over pre-shifted code arrays (codes + 1).

    The single op sequence behind :meth:`Table.group_by_codes`; exposed at
    module level so batched aggregation (``MaterializedAggregate.build_many``)
    can share the prefetched code arrays across many group-by sets while
    producing *bit-identical* results to the per-set path — identical inputs
    through identical numpy calls.

    Mixed-radix combine with *iterative compaction*: after folding each
    attribute in, compact the combined key to dense ids so the running key
    stays below ``n_rows * radix`` — no int64 overflow however many
    attributes or how large their domains.
    """
    combined = code_arrays[0]
    unique_combined = np.unique(combined)
    group_ids = np.searchsorted(unique_combined, combined).astype(np.int64)
    per_group_key = unique_combined  # dense id -> combined key (for decode)
    decode_stack: list[tuple[np.ndarray, int]] = [(per_group_key, radices[0])]
    for codes, radix in zip(code_arrays[1:], radices[1:]):
        combined = group_ids * radix + codes
        unique_combined, group_ids = np.unique(combined, return_inverse=True)
        group_ids = group_ids.astype(np.int64)
        decode_stack.append((unique_combined, radix))
    n_groups = int(unique_combined.size) if n_rows else 0
    # Decode per-attribute codes of each group by unwinding the stack.
    key_codes_rev: list[np.ndarray] = []
    current = decode_stack[-1][0]
    for level in range(len(decode_stack) - 1, 0, -1):
        _, radix = decode_stack[level]
        key_codes_rev.append((current % radix).astype(np.int64) - 1)
        parent_ids = current // radix  # dense ids at the previous level
        current = decode_stack[level - 1][0][parent_ids]
    key_codes_rev.append(current.astype(np.int64) - 1)
    key_codes = tuple(reversed(key_codes_rev))
    return GroupingResult(group_ids, n_groups, key_codes)


class Table:
    """Immutable-by-convention columnar relation.

    Construct via :meth:`from_columns`, :meth:`from_rows`, or the CSV reader.
    Mutating the underlying arrays after construction is unsupported.
    """

    __slots__ = ("schema", "_columns", "_aggregate_cache", "_store")

    def __init__(self, schema: Schema, columns: Mapping[str, Column]):
        lengths = {name: len(col) for name, col in columns.items()}
        if set(lengths) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(lengths)} do not match schema attributes {sorted(schema.names)}"
            )
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        for attr in schema:
            col = columns[attr.name]
            if attr.is_categorical != col.is_categorical:
                raise SchemaError(
                    f"column {attr.name!r} storage does not match its declared kind {attr.kind}"
                )
        self.schema = schema
        self._columns = dict(columns)
        self._aggregate_cache = None
        self._store = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_columns(cls, schema: Schema, data: Mapping[str, Sequence[object]]) -> "Table":
        """Build a table from raw per-column value sequences."""
        if set(data) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(data)} do not match schema attributes {sorted(schema.names)}"
            )
        columns = {
            attr.name: column_from_values(data[attr.name], attr.is_measure) for attr in schema
        }
        return cls(schema, columns)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[object]]) -> "Table":
        """Build a table from an iterable of row tuples (schema order)."""
        names = schema.names
        buckets: dict[str, list[object]] = {name: [] for name in names}
        for row in rows:
            if len(row) != len(names):
                raise SchemaError(f"row of arity {len(row)} for schema of arity {len(names)}")
            for name, value in zip(names, row):
                buckets[name].append(value)
        return cls.from_columns(schema, buckets)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        return cls.from_columns(schema, {name: [] for name in schema.names})

    # -- basic protocol -------------------------------------------------------

    @property
    def n_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __len__(self) -> int:
        return self.n_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema != other.schema:
            return False
        return all(self._columns[n] == other._columns[n] for n in self.schema.names)

    def __repr__(self) -> str:
        return f"Table({self.schema!r}, n_rows={self.n_rows})"

    # -- pickling -------------------------------------------------------------
    # The aggregate cache holds threading primitives and is a pure memo;
    # process-pool workers (the parallel test phase) rebuild it lazily.
    # The column store is process-local lifecycle state: a pickled copy
    # materializes the arrays and lands on the heap (zero-copy transfer
    # is the handle's job — see repro.relational.store).

    def __getstate__(self) -> tuple:
        return (self.schema, self._columns)

    def __setstate__(self, state: tuple) -> None:
        self.schema, self._columns = state
        self._aggregate_cache = None
        self._store = None

    # -- storage --------------------------------------------------------------

    @property
    def storage(self) -> str:
        """Where this table's arrays live: ``"heap"`` or ``"shm"``."""
        return "heap" if self._store is None else self._store.kind

    def handle(self):
        """The compact :class:`~repro.relational.store.TableHandle` of a
        shared table, or ``None`` for heap-backed tables."""
        return None if self._store is None else self._store.handle

    # -- aggregate cache ------------------------------------------------------

    def aggregate_cache(self):
        """This table's cross-stage aggregate cache (created lazily).

        Shared by every consumer that aggregates this table — execution
        backends, hypothesis evaluation, notebook rendering — so identical
        group-bys are computed once per run instead of once per stage.  See
        :class:`repro.relational.aggcache.AggregateCache`.
        """
        cache = self._aggregate_cache
        if cache is None:
            from repro.relational.aggcache import AggregateCache

            with _CACHE_ATTACH_LOCK:
                cache = self._aggregate_cache
                if cache is None:
                    cache = self._aggregate_cache = AggregateCache()
        return cache

    # -- column access --------------------------------------------------------

    def column(self, name: str) -> Column:
        """The column object for attribute ``name``."""
        self.schema[name]  # raises SchemaError for unknown names
        return self._columns[name]

    def categorical_column(self, name: str) -> CategoricalColumn:
        self.schema.require_categorical(name)
        return self._columns[name]  # type: ignore[return-value]

    def measure_column(self, name: str) -> MeasureColumn:
        self.schema.require_measure(name)
        return self._columns[name]  # type: ignore[return-value]

    def measure_values(self, name: str) -> np.ndarray:
        """Raw float64 array of a measure column (NaN = NULL)."""
        return self.measure_column(name).data

    def to_rows(self) -> list[tuple[object, ...]]:
        """Materialize all rows as tuples (labels for categoricals)."""
        materialized = [self._columns[name].values() for name in self.schema.names]
        return [tuple(col[i] for col in materialized) for i in range(self.n_rows)]

    def to_dict(self) -> dict[str, list[object]]:
        """Materialize all columns as plain Python lists."""
        return {name: self._columns[name].to_list() for name in self.schema.names}

    # -- row-level operations ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset/reorder by integer indices."""
        indices = np.asarray(indices)
        columns = {name: col.take(indices) for name, col in self._columns.items()}
        return Table(self.schema, columns)

    def filter(self, mask: np.ndarray) -> "Table":
        """Row subset by boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.n_rows:
            raise SchemaError(f"mask of length {mask.size} for table of {self.n_rows} rows")
        return self.take(np.flatnonzero(mask))

    def where_equal(self, attribute: str, label: str) -> "Table":
        """Rows where categorical ``attribute`` equals ``label``."""
        return self.filter(self.categorical_column(attribute).equals_mask(label))

    def project(self, names: Sequence[str]) -> "Table":
        """Column subset, in the order given."""
        schema = self.schema.subset(names)
        return Table(schema, {name: self._columns[name] for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; attributes keep their kinds."""
        attrs = []
        columns = {}
        for attr in self.schema:
            new_name = mapping.get(attr.name, attr.name)
            attrs.append(Attribute(new_name, attr.kind))
            columns[new_name] = self._columns[attr.name]
        return Table(Schema(attrs), columns)

    def with_column(self, attribute: Attribute, column: Column) -> "Table":
        """A new table with one extra column appended."""
        attrs = list(self.schema) + [attribute]
        columns = dict(self._columns)
        columns[attribute.name] = column
        return Table(Schema(attrs), columns)

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self.n_rows)))

    # -- append ------------------------------------------------------------------

    def append_block(self, rows: "Iterable[Sequence[object]] | Mapping[str, Sequence[object]]") -> "Table":
        """This table plus an appended row block, as a new table.

        ``rows`` is an iterable of row tuples in schema order, or a mapping
        of column name -> value sequence.  Existing rows keep their exact
        dictionary codes: each categorical dictionary is *extended* with the
        block's previously-unseen labels in first-appearance order, which is
        precisely the encoding a cold :meth:`from_columns` load of the
        concatenated data would produce.  That prefix stability is what lets
        aggregates and version tokens of the old table be reused verbatim
        for the grown table's prefix (see
        :meth:`~repro.relational.cube.MaterializedAggregate.patched`).
        """
        if isinstance(rows, Mapping):
            data = {name: list(values) for name, values in rows.items()}
            if set(data) != set(self.schema.names):
                raise SchemaError(
                    f"appended columns {sorted(data)} do not match schema "
                    f"attributes {sorted(self.schema.names)}"
                )
            lengths = {len(v) for v in data.values()}
            if len(lengths) > 1:
                raise SchemaError(f"ragged appended columns: { {n: len(v) for n, v in data.items()} }")
        else:
            names = self.schema.names
            data = {name: [] for name in names}
            for row in rows:
                if len(row) != len(names):
                    raise SchemaError(
                        f"appended row of arity {len(row)} for schema of arity {len(names)}"
                    )
                for name, value in zip(names, row):
                    data[name].append(value)
        columns: dict[str, Column] = {}
        for attr in self.schema:
            old = self._columns[attr.name]
            values = data[attr.name]
            if attr.is_measure:
                delta = MeasureColumn.from_values(values)
                columns[attr.name] = MeasureColumn(
                    np.concatenate([old.data, delta.data])
                )
                continue
            categories = list(old.categories)
            index = {c: i for i, c in enumerate(categories)}
            codes = np.empty(len(values), dtype=np.int32)
            for i, value in enumerate(values):
                label = NULL_LABEL if value is None else str(value)
                if label == NULL_LABEL:
                    codes[i] = -1
                    continue
                code = index.get(label)
                if code is None:
                    code = len(categories)
                    index[label] = code
                    categories.append(label)
                codes[i] = code
            columns[attr.name] = CategoricalColumn(
                np.concatenate([old.codes, codes]), categories
            )
        return Table(self.schema, columns)

    # -- grouping ---------------------------------------------------------------

    def group_by_codes(self, attributes: Sequence[str]) -> GroupingResult:
        """Group rows by categorical ``attributes`` and return dense ids.

        Uses mixed-radix combination of the per-attribute dictionary codes,
        then compacts to dense ids with ``np.unique`` — O(n log n) overall,
        independent of the number of attributes beyond the radix product.
        """
        if not attributes:
            # One global group containing all rows.
            return GroupingResult(np.zeros(self.n_rows, dtype=np.int64), 1 if self.n_rows else 0, ())
        code_arrays = []
        radices = []
        for name in attributes:
            col = self.categorical_column(name)
            # Shift by one so NULL (-1) participates as its own group value.
            code_arrays.append(col.codes.astype(np.int64) + 1)
            radices.append(len(col.categories) + 1)
        return group_codes_from_arrays(code_arrays, radices, self.n_rows)

    def group_keys_table(self, attributes: Sequence[str], grouping: GroupingResult) -> "Table":
        """Per-group key columns as a table (one row per group)."""
        attrs = [categorical(name) for name in attributes]
        columns: dict[str, Column] = {}
        for name, codes in zip(attributes, grouping.key_codes):
            source = self.categorical_column(name)
            columns[name] = CategoricalColumn(codes.astype(np.int32), source.categories)
        return Table(Schema(attrs), columns)

    # -- statistics ---------------------------------------------------------------

    def n_distinct(self, name: str) -> int:
        return self.column(name).n_distinct()

    def estimated_bytes(self) -> int:
        """Approximate memory footprint of all columns."""
        return sum(col.estimated_bytes() for col in self._columns.values())

    def pretty(self, limit: int = 10) -> str:
        """Plain-text rendering of the first ``limit`` rows (for examples)."""
        names = self.schema.names
        rows = self.head(limit).to_rows()
        cells = [[str(n) for n in names]] + [
            [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(names))]
        lines = []
        for j, row in enumerate(cells):
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
            if j == 0:
                lines.append("-+-".join("-" * w for w in widths))
        if self.n_rows > limit:
            lines.append(f"... ({self.n_rows - limit} more rows)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Content-addressed version tokens
# ---------------------------------------------------------------------------


def _categorical_stream_bytes(col: CategoricalColumn, start: int) -> bytes:
    """The label stream of rows ``start:`` (``\\x1f``-joined, prefix-stable).

    A column's full stream is its decoded labels joined by ``\\x1f``; the
    stream of a grown column is the old stream plus these bytes, so running
    hashers advance in O(delta).
    """
    labels = col.values()[start:].tolist()
    text = "\x1f".join(labels)
    if start > 0 and labels:
        text = "\x1f" + text
    return text.encode("utf-8", "surrogatepass")


def _measure_stream_bytes(col: MeasureColumn, start: int) -> bytes:
    return np.ascontiguousarray(col.data[start:]).tobytes()


class TableVersioner:
    """Streaming content-version tokens for a growing table.

    The token is a pure function of the table's *content* (decoded labels
    and measure bytes, in schema order) — independent of dictionary layout,
    storage plane, or how many append steps produced the rows.  Keeping one
    unfinalized hasher per column lets :meth:`advance` fold in an appended
    block in O(delta); :func:`content_token` computes the identical token
    cold, so a checkpointed token can be validated against a re-loaded
    (possibly externally grown) file by hashing just the prefix rows.
    """

    __slots__ = ("_hashers", "_names", "n_rows")

    def __init__(self, table: Table):
        self._names = table.schema.names
        self._hashers = {}
        self.n_rows = 0
        for name in self._names:
            h = hashlib.blake2s(digest_size=16)
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            self._hashers[name] = h
        self.advance(table, 0)

    def advance(self, table: Table, delta_start: int) -> str:
        """Fold rows ``delta_start:`` of ``table`` into the running token.

        ``table`` must extend the previously hashed rows exactly (the
        caller guarantees this by building it with :meth:`Table.append_block`).
        """
        if tuple(table.schema.names) != tuple(self._names):
            raise SchemaError("appended table has a different schema")
        if delta_start != self.n_rows:
            raise SchemaError(
                f"version stream is at row {self.n_rows}, got delta at {delta_start}"
            )
        for name in self._names:
            col = table.column(name)
            if col.is_categorical:
                self._hashers[name].update(_categorical_stream_bytes(col, delta_start))
            else:
                self._hashers[name].update(_measure_stream_bytes(col, delta_start))
        self.n_rows = table.n_rows
        return self.token

    @property
    def token(self) -> str:
        combined = hashlib.blake2s(digest_size=10)
        for name in self._names:
            combined.update(self._hashers[name].copy().digest())
        return f"{self.n_rows}-{combined.hexdigest()}"


def content_token(table: Table, n_rows: int | None = None) -> str:
    """Content-addressed version token of (a row prefix of) ``table``.

    ``content_token(grown, k) == content_token(old)`` whenever ``grown``
    extends ``old``'s ``k`` rows — the prefix check behind the CLI's
    ``--since-checkpoint`` validation.
    """
    if n_rows is not None and n_rows < table.n_rows:
        table = table.take(np.arange(n_rows))
    return TableVersioner(table).token


def table_from_arrays(
    categorical_data: Mapping[str, Sequence[object]],
    measure_data: Mapping[str, Sequence[object]],
) -> Table:
    """Convenience builder: categoricals first, then measures, schema inferred."""
    attrs = [categorical(n) for n in categorical_data] + [measure(n) for n in measure_data]
    data: dict[str, Sequence[object]] = {}
    data.update(categorical_data)
    data.update(measure_data)
    return Table.from_columns(Schema(attrs), data)
