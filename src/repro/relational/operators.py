"""Physical relational operators over :class:`~repro.relational.table.Table`.

These are the building blocks the SQL executor and the comparison-query
evaluator compose: selection, projection, group-by aggregation, equi-join,
sort, and limit.  Each operator takes tables and returns a new table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ExecutionError, SchemaError
from repro.relational.aggregates import GroupedSummary, is_aggregate
from repro.relational.columns import MeasureColumn
from repro.relational.expressions import Expression
from repro.relational.schema import Schema, measure
from repro.relational.table import Table


def select(table: Table, predicate: Expression) -> Table:
    """Filter rows by a boolean predicate expression."""
    mask = predicate.evaluate(table)
    if mask.dtype != bool:
        raise ExecutionError("selection predicate did not evaluate to booleans")
    return table.filter(mask)


def project(table: Table, names: Sequence[str]) -> Table:
    """Project to the named columns (duplicates not allowed)."""
    return table.project(names)


@dataclass(frozen=True)
class AggregateSpec:
    """One output aggregate of a group-by: ``function(measure) AS alias``.

    ``measure`` is ``None`` only for ``count`` (i.e. ``COUNT(*)``);
    ``distinct`` is only valid for ``count`` with a measure argument.
    """

    function: str
    measure: str | None
    alias: str
    distinct: bool = False

    def __post_init__(self) -> None:
        if not is_aggregate(self.function):
            raise ExecutionError(f"unknown aggregate function {self.function!r}")
        if self.measure is None and self.function.lower() != "count":
            raise ExecutionError(f"aggregate {self.function!r} requires a measure argument")
        if self.distinct and (self.function.lower() != "count" or self.measure is None):
            raise ExecutionError("DISTINCT is only supported for count(<column>)")


def group_by_aggregate(
    table: Table, keys: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> Table:
    """SQL ``GROUP BY keys`` with the given aggregate outputs.

    The result has one categorical column per key (in order) followed by one
    measure column per aggregate.  Shared :class:`GroupedSummary` objects are
    computed once per distinct measure so asking for ``sum(M)`` and
    ``avg(M)`` costs a single pass over ``M``.
    """
    grouping = table.group_by_codes(keys)
    result = table.group_keys_table(keys, grouping)

    summaries: dict[str, GroupedSummary] = {}
    counts_all: np.ndarray | None = None
    for spec in aggregates:
        if spec.measure is None:
            if counts_all is None:
                counts_all = np.bincount(
                    grouping.group_ids, minlength=grouping.n_groups
                ).astype(np.float64)
            values = counts_all.copy()
        elif spec.distinct:
            values = grouped_distinct_count(
                grouping.group_ids, table.measure_values(spec.measure), grouping.n_groups
            )
        else:
            summary = summaries.get(spec.measure)
            if summary is None:
                summary = GroupedSummary.from_values(
                    grouping.group_ids, table.measure_values(spec.measure), grouping.n_groups
                )
                summaries[spec.measure] = summary
            values = summary.finalize(spec.function)
        result = result.with_column(measure(spec.alias), MeasureColumn(values))
    return result


def grouped_distinct_count(
    group_ids: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group count of distinct non-null values (``COUNT(DISTINCT m)``)."""
    values = np.asarray(values, dtype=np.float64)
    valid = ~np.isnan(values)
    gid = group_ids[valid]
    vals = values[valid]
    if gid.size == 0:
        return np.zeros(n_groups, dtype=np.float64)
    pairs = np.unique(np.stack([gid.astype(np.float64), vals]), axis=1)
    return np.bincount(pairs[0].astype(np.int64), minlength=n_groups).astype(np.float64)


def sort(table: Table, keys: Sequence[str], ascending: Sequence[bool] | None = None) -> Table:
    """Stable multi-key sort; NULLs sort last within each direction."""
    if not keys:
        return table
    if ascending is None:
        ascending = [True] * len(keys)
    if len(ascending) != len(keys):
        raise ExecutionError("sort: ascending flags must match keys")
    order = np.arange(table.n_rows)
    # Stable sorts applied from the least-significant key to the most.
    for name, asc in reversed(list(zip(keys, ascending))):
        col = table.column(name)
        if col.is_categorical:
            labels = col.values()[order]
            sort_key = np.array([str(v) for v in labels], dtype=object)
            nulls = np.array([v == "" for v in labels], dtype=bool)
        else:
            data = col.values()[order]
            sort_key = data
            nulls = np.isnan(data)
        local = _argsort_nulls_last(sort_key, nulls, asc)
        order = order[local]
    return table.take(order)


def _argsort_nulls_last(keys: np.ndarray, nulls: np.ndarray, ascending: bool) -> np.ndarray:
    """Stable argsort placing NULLs last regardless of direction."""
    idx = np.arange(keys.size)
    non_null = idx[~nulls]
    null = idx[nulls]
    present = keys[~nulls]
    if ascending:
        order = np.argsort(present, kind="stable")
    else:
        # Stable descending sort: rank values, then stable-sort negated ranks
        # (reversing an ascending stable sort would reverse ties too).
        _, ranks = np.unique(present, return_inverse=True)
        order = np.argsort(-ranks, kind="stable")
    return np.concatenate([non_null[order], null])


def hash_join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    suffix: str = "_r",
) -> Table:
    """Inner equi-join on categorical key pairs ``(left_name, right_name)``.

    Right-side columns that collide with a left-side name get ``suffix``
    appended.  The join is a classic build/probe hash join on dictionary
    labels (robust to the two tables having different dictionaries).
    """
    if not on:
        raise ExecutionError("hash_join requires at least one key pair")
    left_keys = [left.categorical_column(l).values() for l, _ in on]
    right_keys = [right.categorical_column(r).values() for _, r in on]

    build: dict[tuple[str, ...], list[int]] = {}
    for i in range(right.n_rows):
        key = tuple(str(col[i]) for col in right_keys)
        build.setdefault(key, []).append(i)

    left_idx: list[int] = []
    right_idx: list[int] = []
    for i in range(left.n_rows):
        key = tuple(str(col[i]) for col in left_keys)
        for j in build.get(key, ()):
            left_idx.append(i)
            right_idx.append(j)

    left_part = left.take(np.array(left_idx, dtype=np.int64))
    right_part = right.take(np.array(right_idx, dtype=np.int64))
    rename: dict[str, str] = {}
    for attr in right.schema:
        if attr.name in left.schema:
            rename[attr.name] = attr.name + suffix
    right_part = right_part.rename(rename)

    attrs = list(left_part.schema) + list(right_part.schema)
    columns = {a.name: left_part.column(a.name) for a in left_part.schema}
    columns.update({a.name: right_part.column(a.name) for a in right_part.schema})
    return Table(Schema(attrs), columns)


def limit(table: Table, n: int) -> Table:
    """First ``n`` rows."""
    if n < 0:
        raise ExecutionError("limit must be non-negative")
    return table.head(n)


def distinct(table: Table) -> Table:
    """Remove duplicate rows (keeps first occurrence, stable)."""
    seen: set[tuple[object, ...]] = set()
    keep: list[int] = []
    for i, row in enumerate(table.to_rows()):
        if row not in seen:
            seen.add(row)
            keep.append(i)
    return table.take(np.array(keep, dtype=np.int64))


def union_all(first: Table, second: Table) -> Table:
    """Concatenate two tables with identical schemas."""
    if first.schema.names != second.schema.names:
        raise SchemaError("union_all requires identical column names")
    data: dict[str, list[object]] = {}
    for name in first.schema.names:
        data[name] = first.column(name).to_list() + second.column(name).to_list()
    return Table.from_columns(first.schema, data)
