"""Typed expression trees evaluated vectorized against a table.

These expressions serve two clients: the relational operators (filter
predicates, computed projections) and the SQL engine, whose planner lowers
parsed SQL expressions into this representation.

Evaluation returns numpy arrays: ``float64`` for numeric expressions,
``bool`` for predicates, and ``object`` (labels) for categorical references.
Comparisons between a categorical column and a string literal are evaluated
on dictionary codes, never on materialized labels.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.relational.aggregates import SCALAR_FUNCTIONS
from repro.relational.table import Table


class Expression(abc.ABC):
    """Base class for all expression nodes."""

    @abc.abstractmethod
    def evaluate(self, table: Table) -> np.ndarray:
        """Evaluate against every row of ``table``."""

    @abc.abstractmethod
    def references(self) -> frozenset[str]:
        """Names of the columns this expression reads."""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self)


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: float, string, or bool."""

    value: object

    def evaluate(self, table: Table) -> np.ndarray:
        n = table.n_rows
        if isinstance(self.value, bool):
            return np.full(n, self.value, dtype=bool)
        if isinstance(self.value, (int, float)):
            return np.full(n, float(self.value), dtype=np.float64)
        return np.full(n, self.value, dtype=object)

    def references(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column by name."""

    name: str

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name).values()

    def references(self) -> frozenset[str]:
        return frozenset({self.name})


_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison producing a boolean mask."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ExecutionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        fast = self._evaluate_on_codes(table)
        if fast is not None:
            return fast
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        if left.dtype == object or right.dtype == object:
            left = left.astype(object) if left.dtype != object else left
            right = right.astype(object) if right.dtype != object else right
            left = np.array([str(v) for v in left], dtype=object)
            right = np.array([str(v) for v in right], dtype=object)
        with np.errstate(invalid="ignore"):
            if self.op == "=":
                return left == right
            if self.op == "<>":
                return left != right
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            return left >= right

    def _evaluate_on_codes(self, table: Table) -> np.ndarray | None:
        """Fast path: categorical = 'literal' via dictionary codes."""
        if self.op not in ("=", "<>"):
            return None
        ref, lit = None, None
        if isinstance(self.left, ColumnRef) and isinstance(self.right, Literal):
            ref, lit = self.left, self.right
        elif isinstance(self.right, ColumnRef) and isinstance(self.left, Literal):
            ref, lit = self.right, self.left
        if ref is None or not isinstance(lit.value, str):
            return None
        if ref.name not in table.schema or not table.schema[ref.name].is_categorical:
            return None
        mask = table.categorical_column(ref.name).equals_mask(lit.value)
        return ~mask if self.op == "<>" else mask

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()


@dataclass(frozen=True)
class And(Expression):
    operands: tuple[Expression, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        result = np.ones(table.n_rows, dtype=bool)
        for op in self.operands:
            result &= op.evaluate(table).astype(bool)
        return result

    def references(self) -> frozenset[str]:
        return frozenset().union(*(op.references() for op in self.operands))


@dataclass(frozen=True)
class Or(Expression):
    operands: tuple[Expression, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        result = np.zeros(table.n_rows, dtype=bool)
        for op in self.operands:
            result |= op.evaluate(table).astype(bool)
        return result

    def references(self) -> frozenset[str]:
        return frozenset().union(*(op.references() for op in self.operands))


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, table: Table) -> np.ndarray:
        return ~self.operand.evaluate(table).astype(bool)

    def references(self) -> frozenset[str]:
        return self.operand.references()


_ARITHMETIC_OPS = ("+", "-", "*", "/")


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary numeric arithmetic; division by zero yields NaN (SQL NULL)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC_OPS:
            raise ExecutionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        left = np.asarray(self.left.evaluate(table), dtype=np.float64)
        right = np.asarray(self.right.evaluate(table), dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.op == "+":
                return left + right
            if self.op == "-":
                return left - right
            if self.op == "*":
                return left * right
            out = left / right
        out[~np.isfinite(out)] = np.nan
        return out

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()


@dataclass(frozen=True)
class Negate(Expression):
    operand: Expression

    def evaluate(self, table: Table) -> np.ndarray:
        return -np.asarray(self.operand.evaluate(table), dtype=np.float64)

    def references(self) -> frozenset[str]:
        return self.operand.references()


@dataclass(frozen=True)
class ScalarFunction(Expression):
    """Call to a whitelisted scalar function (see ``SCALAR_FUNCTIONS``)."""

    name: str
    arguments: tuple[Expression, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        func = SCALAR_FUNCTIONS.get(self.name.lower())
        if func is None:
            raise ExecutionError(f"unknown scalar function {self.name!r}")
        args = [np.asarray(a.evaluate(table), dtype=np.float64) for a in self.arguments]
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.asarray(func(*args), dtype=np.float64)

    def references(self) -> frozenset[str]:
        return frozenset().union(*(a.references() for a in self.arguments)) if self.arguments else frozenset()


@dataclass(frozen=True)
class IsNull(Expression):
    """SQL ``IS [NOT] NULL`` test."""

    operand: Expression
    negated: bool = False

    def evaluate(self, table: Table) -> np.ndarray:
        values = self.operand.evaluate(table)
        if values.dtype == object:
            mask = np.array([v is None or v == "" for v in values], dtype=bool)
        else:
            mask = np.isnan(values.astype(np.float64))
        return ~mask if self.negated else mask

    def references(self) -> frozenset[str]:
        return self.operand.references()


@dataclass(frozen=True)
class InList(Expression):
    """SQL ``col IN (v1, v2, ...)`` over literal values."""

    operand: Expression
    values: tuple[object, ...]
    negated: bool = False

    def evaluate(self, table: Table) -> np.ndarray:
        mask = np.zeros(table.n_rows, dtype=bool)
        for value in self.values:
            mask |= Comparison("=", self.operand, Literal(value)).evaluate(table)
        return ~mask if self.negated else mask

    def references(self) -> frozenset[str]:
        return self.operand.references()


@dataclass(frozen=True)
class Case(Expression):
    """Searched CASE: first branch whose condition holds wins; else default.

    Numeric branches produce ``float64`` (missing default -> NaN); if any
    branch value is a string, the whole expression evaluates as labels.
    """

    branches: tuple[tuple[Expression, Expression], ...]
    default: Expression | None = None

    def evaluate(self, table: Table) -> np.ndarray:
        conditions = [cond.evaluate(table).astype(bool) for cond, _ in self.branches]
        values = [value.evaluate(table) for _, value in self.branches]
        default = self.default.evaluate(table) if self.default is not None else None
        is_object = any(v.dtype == object for v in values) or (
            default is not None and default.dtype == object
        )
        if is_object:
            out = np.full(table.n_rows, "", dtype=object)
            if default is not None:
                out[:] = default.astype(object)
            for cond, val in zip(reversed(conditions), reversed(values)):
                # reversed so earlier branches overwrite later ones (priority)
                out[cond] = val.astype(object)[cond]
            return out
        out = np.full(table.n_rows, np.nan, dtype=np.float64)
        if default is not None:
            out[:] = np.asarray(default, dtype=np.float64)
        for cond, val in zip(reversed(conditions), reversed(values)):
            out[cond] = np.asarray(val, dtype=np.float64)[cond]
        return out

    def references(self) -> frozenset[str]:
        refs: frozenset[str] = frozenset()
        for cond, val in self.branches:
            refs |= cond.references() | val.references()
        if self.default is not None:
            refs |= self.default.references()
        return refs


def conjunction(parts: Sequence[Expression]) -> Expression:
    """AND together ``parts`` (empty -> TRUE literal)."""
    if not parts:
        return Literal(True)
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))
