"""In-memory columnar relational engine (the paper's RDBMS substrate).

The paper runs on PostgreSQL; this package is the drop-in substrate for the
reproduction: a columnar table model with vectorized selection, grouping,
aggregation, join, and sort, plus the optimizer-adjacent facilities the
generation pipeline needs (size estimation, functional-dependency
detection, and the partial-aggregate cube of Algorithm 2).
"""

from repro.relational.aggregates import (
    AGGREGATE_NAMES,
    DEFAULT_COMPARISON_AGGREGATES,
    GroupedSummary,
    aggregate_all,
    aggregate_grouped,
    is_aggregate,
)
from repro.relational.columns import CategoricalColumn, MeasureColumn
from repro.relational.csv_io import (
    infer_kinds,
    read_csv,
    read_csv_text,
    validate_for_analysis,
    write_csv,
)
from repro.relational.cube import (
    MaterializedAggregate,
    PairAggregate,
    PartialAggregateCache,
    pair_group_by_sets,
    powerset_group_by_sets,
)
from repro.relational.expressions import (
    And,
    Arithmetic,
    Case,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    ScalarFunction,
    conjunction,
)
from repro.relational.functional_deps import (
    FunctionalDependency,
    detect_functional_dependencies,
    related_attributes,
)
from repro.relational.operators import (
    AggregateSpec,
    distinct,
    grouped_distinct_count,
    group_by_aggregate,
    hash_join,
    limit,
    project,
    select,
    sort,
    union_all,
)
from repro.relational.schema import Attribute, AttributeKind, Schema, categorical, measure
from repro.relational.store import (
    ColumnStore,
    SharedMemoryStore,
    TableHandle,
    attach_table,
    leaked_segments,
    share_table,
    shm_available,
    shm_resident_bytes,
)
from repro.relational.statistics import (
    collect_statistics,
    estimate_aggregate_bytes,
    estimate_group_count,
    exact_group_count,
)
from repro.relational.table import Table, table_from_arrays

__all__ = [
    "AGGREGATE_NAMES",
    "DEFAULT_COMPARISON_AGGREGATES",
    "AggregateSpec",
    "And",
    "Arithmetic",
    "Case",
    "Attribute",
    "AttributeKind",
    "CategoricalColumn",
    "ColumnRef",
    "ColumnStore",
    "SharedMemoryStore",
    "TableHandle",
    "attach_table",
    "leaked_segments",
    "share_table",
    "shm_available",
    "shm_resident_bytes",
    "Comparison",
    "Expression",
    "FunctionalDependency",
    "GroupedSummary",
    "InList",
    "IsNull",
    "Literal",
    "MaterializedAggregate",
    "MeasureColumn",
    "Negate",
    "Not",
    "Or",
    "PairAggregate",
    "PartialAggregateCache",
    "ScalarFunction",
    "Schema",
    "Table",
    "aggregate_all",
    "aggregate_grouped",
    "categorical",
    "collect_statistics",
    "conjunction",
    "detect_functional_dependencies",
    "distinct",
    "estimate_aggregate_bytes",
    "estimate_group_count",
    "exact_group_count",
    "group_by_aggregate",
    "grouped_distinct_count",
    "hash_join",
    "infer_kinds",
    "is_aggregate",
    "limit",
    "measure",
    "pair_group_by_sets",
    "powerset_group_by_sets",
    "project",
    "read_csv",
    "read_csv_text",
    "validate_for_analysis",
    "related_attributes",
    "select",
    "sort",
    "table_from_arrays",
    "union_all",
    "write_csv",
]
